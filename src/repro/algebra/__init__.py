"""The paper's SQL2 algebra as logical plan trees, plus plan rendering."""

from repro.algebra.display import render_annotated, render_plan
from repro.algebra.notation import to_paper_notation
from repro.algebra.ops import (
    AggregateSpec,
    Apply,
    Group,
    GroupApply,
    Join,
    PlanNode,
    Product,
    Project,
    Relation,
    Select,
    Sort,
    fuse_group_apply,
    walk_plan,
)

__all__ = [
    "AggregateSpec", "Apply", "Group", "GroupApply", "Join", "PlanNode",
    "Product", "Project", "Relation", "Select", "Sort", "fuse_group_apply",
    "walk_plan", "render_annotated", "render_plan", "to_paper_notation",
]
