"""The paper's SQL2 algebra (Section 4.1) as a logical plan tree.

Operators and their defining SQL statements:

* ``G[GA] R``        — :class:`Group`: ``SELECT * FROM R ORDER BY GA``
  (a *grouped table*; ordering is incidental, grouping is the point).
* ``R1 × R2``        — :class:`Product`.
* ``σ[C] R``         — :class:`Select`: ``SELECT * FROM R WHERE C``
  (no duplicate elimination).
* ``π^d[B] R``       — :class:`Project` with ``distinct`` False (``A``) or
  True (``D``): ``SELECT ALL/DISTINCT B FROM R``.
* ``F[AA] R``        — :class:`Apply`: ``SELECT GA, F(AA) FROM R GROUP BY
  GA`` on a grouped table; one output row per group.

Additionally :class:`Relation` (a leaf naming a stored table) and
:class:`Join` (σ[C](R1 × R2), kept explicit so plans read like Figure 1 and
so the executor can pick a join algorithm).  The transformation theory in
:mod:`repro.core.transform` builds E1/E2 out of exactly these nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.expressions.ast import Expression


@dataclass(frozen=True)
class PlanNode:
    """Base class of logical plan operators."""

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def label(self) -> str:
        """Short operator label for plan rendering."""
        return type(self).__name__


@dataclass(frozen=True)
class Relation(PlanNode):
    """A leaf: scan of a stored base table under a correlation name."""

    table_name: str
    alias: str = ""

    @property
    def correlation(self) -> str:
        return self.alias or self.table_name

    def label(self) -> str:
        if self.alias and self.alias != self.table_name:
            return f"{self.table_name} AS {self.alias}"
        return self.table_name


@dataclass(frozen=True)
class Select(PlanNode):
    """σ[C]: keep rows whose condition is TRUE (no duplicate elimination)."""

    child: PlanNode
    condition: Expression

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"σ[{self.condition}]"


@dataclass(frozen=True)
class Project(PlanNode):
    """π^A / π^D: project on columns, optionally eliminating duplicates."""

    child: PlanNode
    columns: Tuple[str, ...]
    distinct: bool = False

    def __init__(self, child: PlanNode, columns: Sequence[str], distinct: bool = False) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "distinct", distinct)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        kind = "D" if self.distinct else "A"
        return f"π^{kind}[{', '.join(self.columns)}]"


@dataclass(frozen=True)
class Product(PlanNode):
    """Cartesian product of two inputs."""

    left: PlanNode
    right: PlanNode

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "×"


@dataclass(frozen=True)
class Join(PlanNode):
    """σ[C](left × right), kept as one node so the executor may choose a
    hash / sort-merge / nested-loop implementation."""

    left: PlanNode
    right: PlanNode
    condition: Optional[Expression]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        if self.condition is None:
            return "Join[true]"
        return f"Join[{self.condition}]"


@dataclass(frozen=True)
class Group(PlanNode):
    """G[GA]: group the input on the grouping columns (a grouped table)."""

    child: PlanNode
    grouping_columns: Tuple[str, ...]

    def __init__(self, child: PlanNode, grouping_columns: Sequence[str]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "grouping_columns", tuple(grouping_columns))

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"G[{', '.join(self.grouping_columns)}]"


@dataclass(frozen=True)
class AggregateSpec:
    """One output of ``F[AA]``: a name and an aggregation expression.

    ``expression`` may be a bare aggregate (``COUNT(E.EmpID)``) or an
    arithmetic combination (``COUNT(A1) + SUM(A2 + A3)``), matching the
    paper's definition of the ``fᵢ``.
    """

    name: str
    expression: Expression

    def __str__(self) -> str:
        return f"{self.expression} AS {self.name}"


@dataclass(frozen=True)
class Apply(PlanNode):
    """F[AA] on a grouped table: one row per group.

    The child must be a :class:`Group` (or something producing a grouped
    table).  Output columns are the grouping columns followed by the
    aggregate names.  When ``F`` is empty this still collapses each group to
    one row — SQL2 semantics the paper leans on ("F(AA) transfers a group of
    rows into one single row, even when F(AA) is empty").
    """

    child: PlanNode
    aggregates: Tuple[AggregateSpec, ...]

    def __init__(self, child: PlanNode, aggregates: Sequence[AggregateSpec]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "aggregates", tuple(aggregates))

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        if not self.aggregates:
            return "F[]"
        return f"F[{', '.join(str(a) for a in self.aggregates)}]"


@dataclass(frozen=True)
class GroupApply(PlanNode):
    """Fused ``F[AA] G[GA]``: hash or sort aggregation in one operator.

    This is what the executor actually runs; :func:`fuse_group_apply`
    rewrites adjacent Group/Apply pairs into it.  Keeping the fused form as
    a *logical* node also lets plans display the way Figure 1 draws them
    ("Group By / COUNT" as one box).
    """

    child: PlanNode
    grouping_columns: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]

    def __init__(
        self,
        child: PlanNode,
        grouping_columns: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "grouping_columns", tuple(grouping_columns))
        object.__setattr__(self, "aggregates", tuple(aggregates))

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        aggregates = ", ".join(str(a) for a in self.aggregates)
        return f"F[{aggregates}] G[{', '.join(self.grouping_columns)}]"


@dataclass(frozen=True)
class Sort(PlanNode):
    """ORDER BY: sort rows on columns; NULLS FIRST, per-key direction.

    Not part of the paper's algebra (G[GA]'s defining SQL orders as a side
    effect), but needed to execute ORDER BY queries and to exploit
    interesting orders.
    """

    child: PlanNode
    columns: Tuple[str, ...]
    descending: Tuple[bool, ...] = ()

    def __init__(
        self,
        child: PlanNode,
        columns: Sequence[str],
        descending: Sequence[bool] = (),
    ) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "columns", tuple(columns))
        flags = tuple(descending) if descending else tuple(False for __ in columns)
        if len(flags) != len(self.columns):
            raise ValueError("descending flags must match the sort columns")
        object.__setattr__(self, "descending", flags)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(
            f"{column}{' DESC' if desc else ''}"
            for column, desc in zip(self.columns, self.descending)
        )
        return f"Sort[{keys}]"


@dataclass(frozen=True)
class Exchange(PlanNode):
    """Shard boundary: run the child per partition and merge the streams.

    Not part of the paper's algebra — this is Section 7's distributed
    argument made executable.  The child subtree executes once per shard
    against that shard's partition of its base table; the parent sees one
    merged stream, byte-metered through the spill codec (the "wire").

    ``mode`` prices the wire in the cost model and the stats:

    * ``"gather"``    — every shard ships its rows to the coordinator once.
    * ``"shuffle"``   — rows are re-partitioned between shards before the
      merge (metered as two transfers of the shipped rows).
    * ``"broadcast"`` — every shard's rows go to every other shard
      (metered as shards × shipped rows).

    All three modes produce the same merged result; they differ only in
    shipped bytes.  With ``merge=True`` the child's terminal
    :class:`GroupApply` is treated as a *local partial* aggregation and the
    Exchange re-aggregates the partials globally (the paper's group-by
    pushed below the wire); with ``merge=False`` shard outputs are
    concatenated back into base-scan order.  ``keys`` names the
    partitioning column (empty = partition the base table by rowid).
    """

    child: PlanNode
    mode: str = "gather"
    shards: int = 2
    partitioning: str = "hash"
    keys: Tuple[str, ...] = ()
    merge: bool = False

    def __init__(
        self,
        child: PlanNode,
        mode: str = "gather",
        shards: int = 2,
        partitioning: str = "hash",
        keys: Sequence[str] = (),
        merge: bool = False,
    ) -> None:
        if mode not in ("gather", "shuffle", "broadcast"):
            raise ValueError(f"unknown exchange mode {mode!r}")
        if partitioning not in ("hash", "range"):
            raise ValueError(f"unknown partitioning method {partitioning!r}")
        if shards < 1:
            raise ValueError("an Exchange needs at least one shard")
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "mode", mode)
        object.__setattr__(self, "shards", shards)
        object.__setattr__(self, "partitioning", partitioning)
        object.__setattr__(self, "keys", tuple(keys))
        object.__setattr__(self, "merge", merge)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        key = f" on {', '.join(self.keys)}" if self.keys else ""
        merge = " merge" if self.merge else ""
        return (
            f"Exchange[{self.mode} {self.partitioning}x{self.shards}{key}{merge}]"
        )


def fuse_group_apply(plan: PlanNode) -> PlanNode:
    """Rewrite every ``Apply(Group(child))`` pair into :class:`GroupApply`.

    A bare ``Group`` with no ``Apply`` above it is left alone (it only
    orders/groups; the executor treats it as a sort).
    """
    if isinstance(plan, Apply) and isinstance(plan.child, Group):
        inner = fuse_group_apply(plan.child.child)
        return GroupApply(inner, plan.child.grouping_columns, plan.aggregates)
    rebuilt_children = tuple(fuse_group_apply(child) for child in plan.children())
    if rebuilt_children == plan.children():
        return plan
    return _with_children(plan, rebuilt_children)


def _with_children(plan: PlanNode, children: Tuple[PlanNode, ...]) -> PlanNode:
    if isinstance(plan, Select):
        return Select(children[0], plan.condition)
    if isinstance(plan, Project):
        return Project(children[0], plan.columns, plan.distinct)
    if isinstance(plan, Product):
        return Product(children[0], children[1])
    if isinstance(plan, Join):
        return Join(children[0], children[1], plan.condition)
    if isinstance(plan, Group):
        return Group(children[0], plan.grouping_columns)
    if isinstance(plan, Apply):
        return Apply(children[0], plan.aggregates)
    if isinstance(plan, GroupApply):
        return GroupApply(children[0], plan.grouping_columns, plan.aggregates)
    if isinstance(plan, Sort):
        return Sort(children[0], plan.columns, plan.descending)
    if isinstance(plan, Exchange):
        return Exchange(
            children[0],
            plan.mode,
            plan.shards,
            plan.partitioning,
            plan.keys,
            plan.merge,
        )
    raise TypeError(f"cannot rebuild {type(plan).__name__}")


def walk_plan(plan: PlanNode):
    """Yield ``plan`` and all descendants, pre-order."""
    yield plan
    for child in plan.children():
        yield from walk_plan(child)
