"""Rendering plans in the paper's linear algebra notation.

The paper writes E1 and E2 as operator strings, e.g.::

    F[AA] π^A[SGA1, SGA2, AA] G[GA1, GA2] σ[C1 ∧ C0 ∧ C2] (R1 × R2)

:func:`to_paper_notation` renders any logical plan tree that way, making
plans directly comparable against the paper's formulas in docs, tests and
``explain`` output.
"""

from __future__ import annotations

from repro.algebra.ops import (
    Apply,
    Group,
    GroupApply,
    Join,
    PlanNode,
    Product,
    Project,
    Relation,
    Select,
    Sort,
)


def to_paper_notation(plan: PlanNode) -> str:
    """One-line rendering in the paper's Section 4.1 notation."""
    if isinstance(plan, Relation):
        if plan.alias and plan.alias != plan.table_name:
            return f"{plan.table_name}@{plan.alias}"
        return plan.table_name
    if isinstance(plan, Select):
        return f"σ[{plan.condition}] {_operand(plan.child)}"
    if isinstance(plan, Project):
        kind = "D" if plan.distinct else "A"
        return f"π^{kind}[{', '.join(plan.columns)}] {_operand(plan.child)}"
    if isinstance(plan, Product):
        return f"({to_paper_notation(plan.left)} × {to_paper_notation(plan.right)})"
    if isinstance(plan, Join):
        if plan.condition is None:
            return (
                f"({to_paper_notation(plan.left)} × "
                f"{to_paper_notation(plan.right)})"
            )
        return (
            f"σ[{plan.condition}] ({to_paper_notation(plan.left)} × "
            f"{to_paper_notation(plan.right)})"
        )
    if isinstance(plan, Group):
        return f"G[{', '.join(plan.grouping_columns)}] {_operand(plan.child)}"
    if isinstance(plan, Apply):
        specs = ", ".join(str(s.expression) for s in plan.aggregates)
        return f"F[{specs}] {_operand(plan.child)}"
    if isinstance(plan, GroupApply):
        specs = ", ".join(str(s.expression) for s in plan.aggregates)
        return (
            f"F[{specs}] G[{', '.join(plan.grouping_columns)}] "
            f"{_operand(plan.child)}"
        )
    if isinstance(plan, Sort):
        keys = ", ".join(
            f"{c}{' desc' if d else ''}"
            for c, d in zip(plan.columns, plan.descending)
        )
        return f"sort[{keys}] {_operand(plan.child)}"
    raise TypeError(f"cannot render {type(plan).__name__}")


def _operand(plan: PlanNode) -> str:
    """Parenthesize leaf-or-binary operands; unary chains read linearly."""
    text = to_paper_notation(plan)
    if isinstance(plan, (Relation, Product, Join)):
        return text if text.startswith("(") or " " not in text else f"({text})"
    return f"({text})" if isinstance(plan, Sort) else text
