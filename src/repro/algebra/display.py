"""Plan rendering: indented trees and Figure-1-style cardinality annotations.

:func:`render_plan` prints a logical plan as an indented tree.
:func:`render_annotated` additionally shows, per operator, the observed
input/output cardinalities collected during execution — this is how the
benchmark harness regenerates the numbers drawn on Figure 1 and Figure 8
(e.g. "Join 10000 x 100 -> 10000" vs "Join 100 x 100 -> 100").
"""

from __future__ import annotations

from typing import Dict, List

from repro.algebra.ops import Join, PlanNode, Product


def render_plan(plan: PlanNode, indent: str = "  ") -> str:
    """Multi-line indented rendering of a plan tree (root first)."""
    lines: List[str] = []

    def recurse(node: PlanNode, depth: int) -> None:
        lines.append(f"{indent * depth}{node.label()}")
        for child in node.children():
            recurse(child, depth + 1)

    recurse(plan, 0)
    return "\n".join(lines)


def render_annotated(
    plan: PlanNode,
    cardinalities: Dict[int, "tuple[tuple[int, ...], int]"],
    indent: str = "  ",
) -> str:
    """Render with per-node observed cardinalities.

    ``cardinalities`` maps ``id(node)`` to ``(input_cardinalities,
    output_cardinality)`` as recorded by the executor.  Binary nodes show
    ``a x b -> out`` the way the paper annotates its plan figures.
    """
    lines: List[str] = []

    def recurse(node: PlanNode, depth: int) -> None:
        annotation = ""
        record = cardinalities.get(id(node))
        if record is not None:
            inputs, output = record
            if isinstance(node, (Join, Product)) and len(inputs) == 2:
                annotation = f"  [{inputs[0]} x {inputs[1]} -> {output}]"
            elif inputs:
                annotation = f"  [{inputs[0]} -> {output}]"
            else:
                annotation = f"  [-> {output}]"
        lines.append(f"{indent * depth}{node.label()}{annotation}")
        for child in node.children():
            recurse(child, depth + 1)

    recurse(plan, 0)
    return "\n".join(lines)
