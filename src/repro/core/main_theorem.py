"""Instance-level verification of the Main Theorem (Section 5).

The theorem: E1 ≡ E2 **iff** both functional dependencies hold in the join
result ``σ[C1 ∧ C0 ∧ C2](R1 × R2)``:

* ``FD1: (GA1, GA2) → GA1+``
* ``FD2: (GA1+, GA2) → RowID(R2)``

This module checks all three facts — FD1, FD2, and E1 ≡ E2 — against a
*concrete database instance* by actually executing the plans.  It is the
empirical backbone of the test suite: property-based tests generate random
instances and confirm that equivalence and (FD1 ∧ FD2) always coincide for
the Main-Theorem query form, exactly as proved.

Note the quantifier: TestFD reasons over *all valid instances*; this module
observes *one* instance.  FD1 ∧ FD2 on an instance implies E1(r1,r2) =
E2(r1,r2) on that instance (the sufficiency direction, Lemma 6, is
instance-wise); the necessity direction is over all instances, so a single
instance can satisfy E1 = E2 while violating an FD only in ways that some
*other* instance would expose — the theorem's proof constructs those
instances, and our tests exercise both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.algebra.ops import Select
from repro.catalog.catalog import Database
from repro.core.planbuild import build_join_tree
from repro.core.query_class import GroupByJoinQuery
from repro.core.transform import build_eager_plan, build_standard_plan
from repro.engine.dataset import DataSet
from repro.engine.executor import Executor, ExecutorConfig, rowid_column
from repro.fd.dependency import fd_holds_in


def join_result(
    database: Database, query: GroupByJoinQuery, expose_rowids: bool = True
) -> DataSet:
    """Materialize ``σ[C1 ∧ C0 ∧ C2](R1 × R2)`` (with hidden RowIDs)."""
    plan = build_join_tree(query.all_bindings, query.where)
    executor = Executor(
        database, ExecutorConfig(expose_rowids=expose_rowids)
    )
    result, _ = executor.run(plan)
    return result


def fd1_holds(database: Database, query: GroupByJoinQuery) -> bool:
    """FD1: (GA1, GA2) → GA1+ in the join result of this instance."""
    joined = join_result(database, query, expose_rowids=False)
    return fd_holds_in(joined, query.grouping_columns, query.ga1_plus)


def fd2_holds(database: Database, query: GroupByJoinQuery) -> bool:
    """FD2: (GA1+, GA2) → RowID(R2) in the join result of this instance.

    RowID(R2) of a multi-table group is the tuple of member RowIDs — it
    identifies one row of the group's Cartesian product.
    """
    joined = join_result(database, query, expose_rowids=True)
    lhs = tuple(query.ga1_plus) + tuple(query.ga2)
    rhs = tuple(rowid_column(binding.alias) for binding in query.r2)
    if not rhs:
        return True
    return fd_holds_in(joined, lhs, rhs)


@dataclass
class TheoremVerdict:
    """Everything the Main Theorem talks about, observed on one instance."""

    fd1: bool
    fd2: bool
    equivalent: bool
    e1_result: DataSet
    e2_result: DataSet

    @property
    def fds_hold(self) -> bool:
        return self.fd1 and self.fd2


def evaluate_both(
    database: Database,
    query: GroupByJoinQuery,
    config: ExecutorConfig = ExecutorConfig(),
) -> Tuple[DataSet, DataSet]:
    """Execute E1 and E2 and return both results."""
    executor = Executor(database, config)
    e1, _ = executor.run(build_standard_plan(query))
    e2, _ = executor.run(build_eager_plan(query))
    return e1, e2


def check_equivalence(database: Database, query: GroupByJoinQuery) -> bool:
    """Does E1 = E2 (as multisets under ``=ⁿ``) on this instance?"""
    e1, e2 = evaluate_both(database, query)
    return e1.equals_multiset(e2)


def verdict(database: Database, query: GroupByJoinQuery) -> TheoremVerdict:
    """Observe FD1, FD2, and E1 ≡ E2 on the current instance."""
    e1, e2 = evaluate_both(database, query)
    return TheoremVerdict(
        fd1=fd1_holds(database, query),
        fd2=fd2_holds(database, query),
        equivalent=e1.equals_multiset(e2),
        e1_result=e1,
        e2_result=e2,
    )
