"""Partitioning FROM-clause tables into the R1/R2 groups of Section 3.

R1 must contain every table referenced by an aggregation column; R2 is the
rest.  A query where *every* table carries aggregation columns admits no
partition and is untransformable (concluding remarks, case (a)).

:class:`FlatQuery` is the pre-partition form — what the SQL binder produces
— and :func:`to_group_by_join_query` turns it into the normalized
:class:`~repro.core.query_class.GroupByJoinQuery`.
:func:`enumerate_partitions` lists every admissible R1 choice (any superset
of the aggregation tables), which the column-substitution search of
Section 9 walks through.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterator, Optional, Sequence, Tuple

from repro.algebra.ops import AggregateSpec
from repro.core.query_class import GroupByJoinQuery
from repro.errors import TransformationError
from repro.expressions.ast import (
    Expression,
    aggregates as collect_aggregates,
    column_refs,
)
from repro.fd.derivation import TableBinding


@dataclass(frozen=True)
class FlatQuery:
    """A bound query before R1/R2 partitioning.

    All column names are qualified.  ``select_group_columns`` are the
    non-aggregate SELECT items (SQL2 requires them to be a subset of
    ``group_by``).
    """

    bindings: Tuple[TableBinding, ...]
    where: Optional[Expression]
    group_by: Tuple[str, ...]
    select_group_columns: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]
    distinct: bool = False
    having: Optional[Expression] = None

    def __init__(
        self,
        bindings: Sequence[TableBinding],
        where: Optional[Expression],
        group_by: Sequence[str],
        select_group_columns: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        distinct: bool = False,
        having: Optional[Expression] = None,
    ) -> None:
        object.__setattr__(self, "bindings", tuple(bindings))
        object.__setattr__(self, "where", where)
        object.__setattr__(self, "group_by", tuple(group_by))
        object.__setattr__(self, "select_group_columns", tuple(select_group_columns))
        object.__setattr__(self, "aggregates", tuple(aggregates))
        object.__setattr__(self, "distinct", distinct)
        object.__setattr__(self, "having", having)


def aggregation_aliases(aggregates: Sequence[AggregateSpec]) -> FrozenSet[str]:
    """Correlation names referenced inside aggregate arguments (AA's homes)."""
    aliases = set()
    for spec in aggregates:
        for aggregate in collect_aggregates(spec.expression):
            if aggregate.argument is None:
                continue
            for ref in column_refs(aggregate.argument):
                aliases.add(ref.table)
    return frozenset(aliases)


def default_partition(
    flat: FlatQuery,
) -> Tuple[Tuple[TableBinding, ...], Tuple[TableBinding, ...]]:
    """The paper's canonical partition: R1 = aggregation tables, R2 = rest.

    With no aggregation columns at all (e.g. a bare COUNT(*) query), R1
    defaults to the tables that contribute no grouping column — pushing the
    count below the join then counts R1-group rows per group, which FD2
    makes correct; if every table contributes grouping columns, the first
    table is used.
    """
    agg_aliases = aggregation_aliases(flat.aggregates)
    if agg_aliases:
        r1 = tuple(b for b in flat.bindings if b.alias in agg_aliases)
        r2 = tuple(b for b in flat.bindings if b.alias not in agg_aliases)
        if not r2:
            raise TransformationError(
                "every FROM table carries aggregation columns; no R1/R2 "
                "partition exists (concluding remarks, case (a))"
            )
        return r1, r2
    grouping_aliases = {column.rsplit(".", 1)[0] for column in flat.group_by}
    non_grouping = tuple(
        b for b in flat.bindings if b.alias not in grouping_aliases
    )
    if non_grouping and len(non_grouping) < len(flat.bindings):
        r1 = non_grouping
        r2 = tuple(b for b in flat.bindings if b.alias in grouping_aliases)
        return r1, r2
    if len(flat.bindings) < 2:
        raise TransformationError("need at least two tables to partition")
    return (flat.bindings[0],), tuple(flat.bindings[1:])


def enumerate_partitions(
    flat: FlatQuery,
) -> Iterator[Tuple[Tuple[TableBinding, ...], Tuple[TableBinding, ...]]]:
    """Every admissible (R1, R2): R1 ⊇ aggregation tables, R2 nonempty.

    Yielded smallest-R1 first, since a smaller R1 usually means a cheaper
    eager aggregate.  The count is exponential in the number of *free*
    tables, which is small in practice; callers cap the search.
    """
    agg_aliases = aggregation_aliases(flat.aggregates)
    required = tuple(b for b in flat.bindings if b.alias in agg_aliases)
    free = tuple(b for b in flat.bindings if b.alias not in agg_aliases)
    # R2 must stay nonempty, so at most len(free) - 1 free tables join R1;
    # R1 must be nonempty, so with no required tables the empty extra is
    # skipped.
    for size in range(0, len(free)):
        for extra in combinations(free, size):
            r1 = required + extra
            if not r1:
                continue
            r2 = tuple(b for b in free if b not in extra)
            yield r1, r2


def to_group_by_join_query(
    flat: FlatQuery,
    r1: Optional[Sequence[TableBinding]] = None,
) -> GroupByJoinQuery:
    """Normalize a flat query into the Section 3 form.

    ``r1`` overrides the default partition (used by the substitution
    search); it must cover all aggregation tables.
    """
    if r1 is None:
        r1_group, r2_group = default_partition(flat)
    else:
        r1_aliases = {b.alias for b in r1}
        agg_aliases = aggregation_aliases(flat.aggregates)
        if not agg_aliases <= r1_aliases:
            raise TransformationError(
                f"R1 {sorted(r1_aliases)} does not cover aggregation tables "
                f"{sorted(agg_aliases)}"
            )
        r1_group = tuple(r1)
        r2_group = tuple(b for b in flat.bindings if b.alias not in r1_aliases)
        if not r2_group:
            raise TransformationError("R2 group would be empty")

    r1_aliases = {b.alias for b in r1_group}
    ga1 = tuple(c for c in flat.group_by if c.rsplit(".", 1)[0] in r1_aliases)
    ga2 = tuple(c for c in flat.group_by if c.rsplit(".", 1)[0] not in r1_aliases)
    sga1 = tuple(
        c for c in flat.select_group_columns if c.rsplit(".", 1)[0] in r1_aliases
    )
    sga2 = tuple(
        c for c in flat.select_group_columns if c.rsplit(".", 1)[0] not in r1_aliases
    )
    return GroupByJoinQuery(
        r1_group,
        r2_group,
        flat.where,
        ga1,
        ga2,
        flat.aggregates,
        sga1,
        sga2,
        flat.distinct,
        flat.having,
    )
