"""The paper's contribution: query class, theorems, TestFD, transformation."""

from repro.core.having import grouped_plan_with_having, rewrite_having
from repro.core.main_theorem import (
    TheoremVerdict,
    check_equivalence,
    evaluate_both,
    fd1_holds,
    fd2_holds,
    join_result,
    verdict,
)
from repro.core.partition import (
    FlatQuery,
    default_partition,
    enumerate_partitions,
    to_group_by_join_query,
)
from repro.core.pipelining import dayal_condition, pipelined_standard_plan
from repro.core.planbuild import build_join_tree
from repro.core.query_class import GroupByJoinQuery
from repro.core.sqlgen import eager_sql, render_expression, standard_sql
from repro.core.substitution import equivalent_queries, find_transformable
from repro.core.testfd import ComponentTrace, TestFDResult, test_fd
from repro.core.viewmerge import merge_aggregated_view
from repro.core.transform import (
    TransformationDecision,
    build_eager_plan,
    build_standard_plan,
    check_transformable,
    expand_predicates,
    reverse,
    transform,
)

__all__ = [
    "TheoremVerdict", "check_equivalence", "evaluate_both", "fd1_holds",
    "fd2_holds", "join_result", "verdict",
    "FlatQuery", "default_partition", "enumerate_partitions",
    "to_group_by_join_query", "build_join_tree", "GroupByJoinQuery",
    "equivalent_queries", "find_transformable",
    "ComponentTrace", "TestFDResult", "test_fd",
    "TransformationDecision", "build_eager_plan", "build_standard_plan",
    "check_transformable", "expand_predicates", "reverse", "transform",
    "grouped_plan_with_having", "rewrite_having",
    "dayal_condition", "pipelined_standard_plan",
    "eager_sql", "render_expression", "standard_sql",
    "merge_aggregated_view",
]
