"""The class of queries the paper considers (Section 3).

A :class:`GroupByJoinQuery` is the normalized form::

    SELECT [ALL|DISTINCT] SGA1, SGA2, F(AA)
    FROM   R1, R2
    WHERE  C1 ∧ C0 ∧ C2
    GROUP BY GA1, GA2

where R1 is the group of FROM-clause tables carrying aggregation columns
and R2 the group carrying none (each group is conceptually the Cartesian
product of its members).  All column names are fully qualified by
correlation name.  The derived quantities of Section 3 are exposed as
properties:

* :attr:`ga1_plus` — ``GA1 ∪ (α(C0) ∩ R1)``: R1's join-and-grouping columns;
* :attr:`ga2_plus` — ``GA2 ∪ (α(C0) ∩ R2)``;
* :meth:`split` — the ``C1 / C0 / C2`` decomposition of the WHERE clause.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.algebra.ops import AggregateSpec
from repro.catalog.catalog import Database
from repro.errors import TransformationError
from repro.expressions.analysis import PredicateSplit, split_predicate
from repro.expressions.ast import (
    Expression,
    aggregates as collect_aggregates,
    column_refs,
)
from repro.expressions.normalize import split_conjuncts
from repro.fd.derivation import TableBinding


@dataclass(frozen=True)
class GroupByJoinQuery:
    """A normalized group-by/join query (the paper's Section 3 form)."""

    r1: Tuple[TableBinding, ...]
    r2: Tuple[TableBinding, ...]
    where: Optional[Expression]
    ga1: Tuple[str, ...]
    ga2: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]
    sga1: Tuple[str, ...] = ()
    sga2: Tuple[str, ...] = ()
    distinct: bool = False
    having: Optional[Expression] = None

    def __init__(
        self,
        r1: Sequence[TableBinding],
        r2: Sequence[TableBinding],
        where: Optional[Expression],
        ga1: Sequence[str],
        ga2: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        sga1: Optional[Sequence[str]] = None,
        sga2: Optional[Sequence[str]] = None,
        distinct: bool = False,
        having: Optional[Expression] = None,
    ) -> None:
        object.__setattr__(self, "r1", tuple(r1))
        object.__setattr__(self, "r2", tuple(r2))
        object.__setattr__(self, "where", where)
        object.__setattr__(self, "ga1", tuple(ga1))
        object.__setattr__(self, "ga2", tuple(ga2))
        object.__setattr__(self, "aggregates", tuple(aggregates))
        # SGA defaults to the full grouping list (the Main Theorem form).
        object.__setattr__(self, "sga1", tuple(sga1) if sga1 is not None else tuple(ga1))
        object.__setattr__(self, "sga2", tuple(sga2) if sga2 is not None else tuple(ga2))
        object.__setattr__(self, "distinct", distinct)
        object.__setattr__(self, "having", having)
        self._check_wellformed()

    # -- structural checks ---------------------------------------------------

    def _check_wellformed(self) -> None:
        if not self.r1:
            raise TransformationError("R1 group is empty")
        r1_aliases = self.r1_aliases
        r2_aliases = self.r2_aliases
        if r1_aliases & r2_aliases:
            raise TransformationError(
                f"aliases in both groups: {sorted(r1_aliases & r2_aliases)}"
            )
        if not self.ga1 and not self.ga2:
            raise TransformationError(
                "GA1 and GA2 cannot both be empty (the query would have no "
                "GROUP BY and is outside the class considered)"
            )
        if not set(self.sga1) <= set(self.ga1):
            raise TransformationError("SGA1 must be a subset of GA1")
        if not set(self.sga2) <= set(self.ga2):
            raise TransformationError("SGA2 must be a subset of GA2")
        for column in self.ga1:
            if self._alias_of(column) not in r1_aliases:
                raise TransformationError(f"GA1 column {column} is not in R1")
        for column in self.ga2:
            if self._alias_of(column) not in r2_aliases:
                raise TransformationError(f"GA2 column {column} is not in R2")
        for spec in self.aggregates:
            for agg in collect_aggregates(spec.expression):
                if agg.argument is None:
                    continue  # COUNT(*) — computed over R1 groups
                for ref in column_refs(agg.argument):
                    if ref.table not in r1_aliases:
                        raise TransformationError(
                            f"aggregation column {ref.qualified} is outside R1"
                        )

    @staticmethod
    def _alias_of(qualified_column: str) -> str:
        if "." not in qualified_column:
            raise TransformationError(
                f"grouping column {qualified_column!r} must be qualified"
            )
        return qualified_column.rsplit(".", 1)[0]

    # -- derived quantities ------------------------------------------------

    @property
    def r1_aliases(self) -> FrozenSet[str]:
        return frozenset(binding.alias for binding in self.r1)

    @property
    def r2_aliases(self) -> FrozenSet[str]:
        return frozenset(binding.alias for binding in self.r2)

    @property
    def all_bindings(self) -> Tuple[TableBinding, ...]:
        return self.r1 + self.r2

    def split(self) -> PredicateSplit:
        """The ``C1 ∧ C0 ∧ C2`` decomposition of the WHERE clause."""
        return split_predicate(self.where, self.r1_aliases, self.r2_aliases)

    def c0_columns(self) -> FrozenSet[str]:
        """α(C0): the columns involved in cross-group predicates."""
        c0 = self.split().c0
        if c0 is None:
            return frozenset()
        return frozenset(ref.qualified for ref in column_refs(c0))

    @property
    def ga1_plus(self) -> Tuple[str, ...]:
        """GA1 ∪ (α(C0) ∩ R1) — deterministic order: GA1 first."""
        r1_aliases = self.r1_aliases
        extra = sorted(
            column
            for column in self.c0_columns()
            if self._alias_of(column) in r1_aliases and column not in self.ga1
        )
        return self.ga1 + tuple(extra)

    @property
    def ga2_plus(self) -> Tuple[str, ...]:
        """GA2 ∪ (α(C0) ∩ R2) — deterministic order: GA2 first."""
        r2_aliases = self.r2_aliases
        extra = sorted(
            column
            for column in self.c0_columns()
            if self._alias_of(column) in r2_aliases and column not in self.ga2
        )
        return self.ga2 + tuple(extra)

    @property
    def grouping_columns(self) -> Tuple[str, ...]:
        return self.ga1 + self.ga2

    @property
    def select_columns(self) -> Tuple[str, ...]:
        """Output columns in SELECT order: SGA1, SGA2, then aggregate names."""
        return self.sga1 + self.sga2 + tuple(spec.name for spec in self.aggregates)

    def aggregate_names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.aggregates)

    # -- validation against a database ----------------------------------------

    def validate(self, database: Database) -> None:
        """Check table and column references against the catalog."""
        for binding in self.all_bindings:
            table = database.table(binding.table_name)  # raises if missing
            del table
        for column in self.ga1 + self.ga2:
            alias = self._alias_of(column)
            bare = column.rsplit(".", 1)[1]
            binding = next(
                b for b in self.all_bindings if b.alias == alias
            )
            schema = database.table(binding.table_name).schema
            if not schema.has_column(bare):
                raise TransformationError(
                    f"grouping column {column} not in {binding.table_name}"
                )

    def describe(self) -> str:
        """A human-readable summary in the paper's notation."""
        split = self.split()
        lines = [
            f"R1: {', '.join(f'{b.table_name} AS {b.alias}' for b in self.r1)}",
            f"R2: {', '.join(f'{b.table_name} AS {b.alias}' for b in self.r2) or '(empty)'}",
            f"C1: {split.c1}",
            f"C0: {split.c0}",
            f"C2: {split.c2}",
            f"GA1: {', '.join(self.ga1) or '(empty)'}",
            f"GA2: {', '.join(self.ga2) or '(empty)'}",
            f"GA1+: {', '.join(self.ga1_plus) or '(empty)'}",
            f"GA2+: {', '.join(self.ga2_plus) or '(empty)'}",
            f"F(AA): {', '.join(str(s) for s in self.aggregates) or '(empty)'}",
        ]
        return "\n".join(lines)
