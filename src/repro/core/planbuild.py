"""Building join trees from table groups and conjunctive predicates.

The paper treats each table group as a Cartesian product filtered by the
group's conjuncts.  For execution we build the equivalent left-deep join
tree with each conjunct placed at the earliest operator where all its
correlation names are in scope — single-table conjuncts become selections
on the leaves, cross-table conjuncts become join conditions.  Predicate
placement for top-level conjuncts preserves SQL2 WHERE semantics exactly
(a row survives iff every conjunct is TRUE, in any placement).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algebra.ops import Join, PlanNode, Relation, Select
from repro.expressions.analysis import referenced_tables
from repro.expressions.ast import Expression
from repro.expressions.normalize import conjoin, split_conjuncts
from repro.fd.derivation import TableBinding


def build_join_tree(
    bindings: Sequence[TableBinding],
    condition: Optional[Expression],
) -> PlanNode:
    """Left-deep join tree over ``bindings`` filtered by ``condition``.

    Join order is chosen greedily to follow join predicates (avoiding
    accidental Cartesian products when a connecting conjunct exists); the
    first binding anchors the tree.  Conjuncts whose correlations are all in
    scope at a join become that join's condition; conjuncts referencing a
    single correlation become leaf selections; conjuncts referencing no
    correlation at all (constant/host-variable tests) are applied once at
    the top.
    """
    if not bindings:
        raise ValueError("cannot build a join tree over zero tables")

    conjuncts = list(split_conjuncts(condition))
    leaf_filters: Dict[str, List[Expression]] = {b.alias: [] for b in bindings}
    cross: List[Tuple[frozenset, Expression]] = []
    floating: List[Expression] = []
    alias_set = {b.alias for b in bindings}
    for conjunct in conjuncts:
        tables = referenced_tables(conjunct) & alias_set
        if len(tables) == 1:
            (alias,) = tables
            leaf_filters[alias].append(conjunct)
        elif len(tables) == 0:
            floating.append(conjunct)
        else:
            cross.append((frozenset(tables), conjunct))

    def leaf(binding: TableBinding) -> PlanNode:
        node: PlanNode = Relation(binding.table_name, binding.alias)
        filters = conjoin(leaf_filters[binding.alias])
        if filters is not None:
            node = Select(node, filters)
        return node

    remaining = list(bindings)
    first = remaining.pop(0)
    tree = leaf(first)
    in_scope: Set[str] = {first.alias}
    pending_cross = list(cross)

    while remaining:
        # Prefer a table connected to the current scope by some conjunct.
        pick_index = 0
        for i, binding in enumerate(remaining):
            connected = any(
                binding.alias in tables and tables <= in_scope | {binding.alias}
                for tables, _ in pending_cross
            )
            if connected:
                pick_index = i
                break
        binding = remaining.pop(pick_index)
        in_scope.add(binding.alias)
        applicable = [
            conjunct
            for tables, conjunct in pending_cross
            if tables <= in_scope and binding.alias in tables
        ]
        pending_cross = [
            (tables, conjunct)
            for tables, conjunct in pending_cross
            if not (tables <= in_scope and binding.alias in tables)
        ]
        tree = Join(tree, leaf(binding), conjoin(applicable))

    # Conjuncts spanning tables that only became jointly available late
    # (e.g. A.x = B.y + C.z style three-way conditions) plus floating ones.
    leftovers = [conjunct for _, conjunct in pending_cross] + floating
    top = conjoin(leftovers)
    if top is not None:
        tree = Select(tree, top)
    return tree
