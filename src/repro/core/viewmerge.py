"""Merging an aggregated view into its consuming query (Section 8).

An *aggregated view* is a view defined by grouping and aggregation.  A query
that joins such a view with other tables is naturally evaluated eagerly:
materialize the view (group-by first), then join — the E2 shape.  Section 8
observes that the paper's machinery also licenses the *reverse* order: merge
the view into the outer query, producing one grouped join (the E1 shape),
and let the optimizer pick.

:func:`merge_aggregated_view` performs the merge::

    CREATE VIEW UserInfo(UserId, Machine, TotUsage, ...) AS
      SELECT A.UserId, A.Machine, SUM(A.Usage), ... FROM PrinterAuth A, Printer P
      WHERE A.PNo = P.PNo GROUP BY A.UserId, A.Machine

    SELECT U.UserId, U.UserName, I.TotUsage, ...
    FROM UserInfo I, UserAccount U
    WHERE I.UserId = U.UserId AND I.Machine = U.Machine AND U.Machine = 'dragon'

becomes the Example 3 query (R1 = {A, P}, R2 = {U}), whose E2 plan *is* the
view evaluation.  The merge is valid exactly when the view's grouping
columns coincide with the merged query's GA1+ — i.e. every view grouping
column is either selected or equated to an outer column, so the paper's
FD machinery applies; otherwise :class:`TransformationError` is raised.
"""

from __future__ import annotations

from typing import Dict, List

from repro.algebra.ops import AggregateSpec
from repro.catalog.catalog import Database
from repro.core.query_class import GroupByJoinQuery
from repro.errors import BindingError, TransformationError
from repro.expressions.ast import (
    Aggregate,
    ColumnRef,
    Expression,
    contains_aggregate,
)
from repro.expressions.normalize import conjoin, split_conjuncts
from repro.fd.derivation import TableBinding
from repro.parser.ast_nodes import (
    CreateViewStatement,
    SelectStatement,
)
from repro.parser.binder import NameResolver, bind_select


def view_output_map(
    database: Database, view: CreateViewStatement
) -> Dict[str, Expression]:
    """Map view column names to their defining (qualified) expressions."""
    resolver = NameResolver(database, view.select.from_tables)
    mapping: Dict[str, Expression] = {}
    for i, item in enumerate(view.select.items):
        expression = resolver.qualify_expression(item.expression)
        if view.column_names:
            if i >= len(view.column_names):
                raise BindingError(
                    f"view {view.name}: more SELECT items than column names"
                )
            name = view.column_names[i]
        elif item.alias:
            name = item.alias
        elif isinstance(expression, ColumnRef):
            name = expression.column
        else:
            raise BindingError(
                f"view {view.name}: item {i} needs a column name or alias"
            )
        if name in mapping:
            raise BindingError(f"view {view.name}: duplicate column {name}")
        mapping[name] = expression
    return mapping


def merge_aggregated_view(
    database: Database, outer: SelectStatement
) -> GroupByJoinQuery:
    """Merge the (single) aggregated view in ``outer``'s FROM clause.

    Returns the unified :class:`GroupByJoinQuery` whose E2 plan reproduces
    the naive view materialization and whose E1 plan is the Section 8
    reverse evaluation.
    """
    view_refs = [t for t in outer.from_tables if t.name in database.views]
    base_refs = [t for t in outer.from_tables if t.name not in database.views]
    if len(view_refs) != 1:
        raise TransformationError(
            f"expected exactly one view in the FROM clause, found {len(view_refs)}"
        )
    view_ref = view_refs[0]
    view = database.view_definition(view_ref.name)
    if not isinstance(view, CreateViewStatement):
        raise TransformationError(f"{view_ref.name} has no parsed view definition")
    if not view.select.group_by:
        raise TransformationError(
            f"{view_ref.name} is not an aggregated view (no GROUP BY)"
        )
    if view.select.having is not None or view.select.distinct:
        raise TransformationError(
            "views with HAVING or DISTINCT are outside the class considered"
        )

    inner = bind_select(database, view.select)
    outputs = view_output_map(database, view)
    view_correlation = view_ref.correlation

    inner_aliases = {binding.alias for binding in inner.bindings}
    outer_aliases = {t.correlation for t in base_refs}
    clash = inner_aliases & outer_aliases
    if clash:
        raise TransformationError(
            f"correlation names used both inside the view and outside: {sorted(clash)}"
        )

    base_resolver = NameResolver(database, tuple(base_refs)) if base_refs else None

    def rewrite(expression: Expression, allow_aggregates: bool) -> Expression:
        """Replace view-column references by their definitions; qualify the
        rest against the outer base tables."""
        from repro.expressions.ast import transform_expression

        def visit(node: Expression):
            if isinstance(node, ColumnRef):
                if node.table == view_correlation:
                    if node.column not in outputs:
                        raise BindingError(
                            f"view {view_ref.name} has no column {node.column}"
                        )
                    replacement = outputs[node.column]
                    if contains_aggregate(replacement) and not allow_aggregates:
                        raise TransformationError(
                            f"view aggregate column {node.qualified} used in "
                            "a WHERE/GROUP BY position (would need HAVING)"
                        )
                    return replacement
                if base_resolver is None:
                    raise BindingError(f"unknown column {node.qualified}")
                return base_resolver.qualify(node)
            if isinstance(node, Aggregate):
                raise TransformationError(
                    "aggregates over view columns are not supported by the merge"
                )
            return None

        return transform_expression(expression, visit)

    # WHERE: view-group-column references become inner columns.
    merged_where_parts: List[Expression] = list(split_conjuncts(inner.where))
    for conjunct in split_conjuncts(outer.where):
        merged_where_parts.append(rewrite(conjunct, allow_aggregates=False))
    merged_where = conjoin(merged_where_parts)

    # SELECT: split into grouping columns and the view's aggregates.
    select_group: List[str] = []
    ga1: List[str] = []
    ga2: List[str] = []
    specs: List[AggregateSpec] = []
    for item in outer.items:
        expression = rewrite(item.expression, allow_aggregates=True)
        if contains_aggregate(expression):
            name = item.alias or (
                item.expression.column
                if isinstance(item.expression, ColumnRef)
                else str(expression)
            )
            specs.append(AggregateSpec(name, expression))
            continue
        if not isinstance(expression, ColumnRef):
            raise TransformationError(
                f"unsupported outer SELECT expression: {item.expression}"
            )
        qualified = expression.qualified
        select_group.append(qualified)
        if expression.table in inner_aliases:
            ga1.append(qualified)
        else:
            ga2.append(qualified)

    if outer.group_by:
        raise TransformationError(
            "outer queries with their own GROUP BY are not handled by the merge"
        )

    r1 = inner.bindings
    r2 = tuple(TableBinding(t.correlation, t.name) for t in base_refs)
    if not r2:
        raise TransformationError(
            "the outer query joins the view with no base table; nothing to merge"
        )
    merged = GroupByJoinQuery(
        r1, r2, merged_where, tuple(ga1), tuple(ga2), tuple(specs),
        distinct=outer.distinct,
    )

    # Validity of the merge itself: the view grouped on exactly GA1+ of the
    # merged query, otherwise E2-of-merged is not the view evaluation.
    if set(merged.ga1_plus) != set(inner.group_by):
        raise TransformationError(
            f"view grouping columns {sorted(inner.group_by)} do not match the "
            f"merged query's GA1+ {sorted(merged.ga1_plus)}; the view cannot "
            "be merged"
        )
    return merged
