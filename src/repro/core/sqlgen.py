"""Rendering queries back to SQL text.

The paper presents its rewrites *as SQL* (the two-block form at the end of
Example 3: the main query over R1′ and R2′, plus the SELECTs defining
them).  This module reproduces that presentation:

* :func:`render_expression` — SQL text for any predicate/scalar expression;
* :func:`standard_sql` — the E1 form as one executable SELECT (round-trips
  through our parser);
* :func:`eager_sql` — the E2 form in the paper's presentation: a main
  query over the derived tables ``R1'`` and ``R2'`` followed by their
  definitions (display text; SQL2 has no WITH clause).
"""

from __future__ import annotations

from typing import List

from repro.core.query_class import GroupByJoinQuery
from repro.expressions.ast import (
    Aggregate,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    HostVariable,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
)
from repro.sqltypes.values import is_null


def _render_literal(value: object) -> str:
    if is_null(value):
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def render_expression(expression: Expression) -> str:
    """SQL text for an expression (parenthesized to be re-parse-safe)."""
    if isinstance(expression, Literal):
        return _render_literal(expression.value)
    if isinstance(expression, ColumnRef):
        return expression.qualified
    if isinstance(expression, HostVariable):
        return f":{expression.name}"
    if isinstance(expression, Comparison):
        return (
            f"{render_expression(expression.left)} {expression.op} "
            f"{render_expression(expression.right)}"
        )
    if isinstance(expression, And):
        return (
            f"({render_expression(expression.left)} AND "
            f"{render_expression(expression.right)})"
        )
    if isinstance(expression, Or):
        return (
            f"({render_expression(expression.left)} OR "
            f"{render_expression(expression.right)})"
        )
    if isinstance(expression, Not):
        return f"NOT ({render_expression(expression.operand)})"
    if isinstance(expression, IsNull):
        suffix = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"{render_expression(expression.operand)} {suffix}"
    if isinstance(expression, InList):
        keyword = "NOT IN" if expression.negated else "IN"
        items = ", ".join(render_expression(item) for item in expression.items)
        return f"{render_expression(expression.operand)} {keyword} ({items})"
    if isinstance(expression, InSubquery):
        keyword = "NOT IN" if expression.negated else "IN"
        return f"{render_expression(expression.operand)} {keyword} (SELECT ...)"
    if isinstance(expression, Between):
        keyword = "NOT BETWEEN" if expression.negated else "BETWEEN"
        return (
            f"{render_expression(expression.operand)} {keyword} "
            f"{render_expression(expression.low)} AND "
            f"{render_expression(expression.high)}"
        )
    if isinstance(expression, Like):
        keyword = "NOT LIKE" if expression.negated else "LIKE"
        return (
            f"{render_expression(expression.operand)} {keyword} "
            f"{_render_literal(expression.pattern)}"
        )
    if isinstance(expression, Arithmetic):
        return (
            f"({render_expression(expression.left)} {expression.op} "
            f"{render_expression(expression.right)})"
        )
    if isinstance(expression, Negate):
        return f"(-{render_expression(expression.operand)})"
    if isinstance(expression, Aggregate):
        inner = (
            "*" if expression.argument is None
            else render_expression(expression.argument)
        )
        prefix = "DISTINCT " if expression.distinct else ""
        return f"{expression.function}({prefix}{inner})"
    raise TypeError(f"cannot render {type(expression).__name__}")


def _from_clause(bindings) -> str:
    return ", ".join(
        f"{b.table_name} {b.alias}" if b.alias != b.table_name else b.table_name
        for b in bindings
    )


def standard_sql(query: GroupByJoinQuery) -> str:
    """The E1 form as one executable SELECT statement."""
    parts: List[str] = []
    head = "SELECT DISTINCT" if query.distinct else "SELECT"
    select_list = list(query.sga1 + query.sga2)
    select_list += [
        f"{render_expression(spec.expression)} AS {spec.name}"
        for spec in query.aggregates
    ]
    parts.append(f"{head} {', '.join(select_list)}")
    parts.append(f"FROM {_from_clause(query.all_bindings)}")
    if query.where is not None:
        parts.append(f"WHERE {render_expression(query.where)}")
    if query.grouping_columns:
        parts.append(f"GROUP BY {', '.join(query.grouping_columns)}")
    if query.having is not None:
        parts.append(f"HAVING {render_expression(query.having)}")
    return "\n".join(parts)


def eager_sql(query: GroupByJoinQuery) -> str:
    """The E2 form in the paper's two-block presentation (Example 3's
    rewritten query): the main query over R1' and R2', then their
    definitions."""
    split = query.split()
    agg_names = [spec.name for spec in query.aggregates]

    def strip_alias(column: str) -> str:
        return column.rsplit(".", 1)[-1]

    # The derived tables expose bare column names.
    r1_columns = [strip_alias(c) for c in query.ga1_plus] + agg_names
    r2_columns = [strip_alias(c) for c in query.ga2_plus]

    main_select = (
        ("SELECT DISTINCT " if query.distinct else "SELECT ")
        + ", ".join(
            [f"R1'.{strip_alias(c)}" for c in query.sga1]
            + [f"R2'.{strip_alias(c)}" for c in query.sga2]
            + [f"R1'.{name}" for name in agg_names]
        )
    )
    c0 = split.c0
    main_where = ""
    if c0 is not None:
        rendered = render_expression(c0)
        for column in query.ga1_plus:
            rendered = rendered.replace(column, f"R1'.{strip_alias(column)}")
        for column in query.ga2_plus:
            rendered = rendered.replace(column, f"R2'.{strip_alias(column)}")
        main_where = f"\nWHERE {rendered}"
    main = f"{main_select}\nFROM R1', R2'{main_where}"

    r1_body_select = ", ".join(
        list(query.ga1_plus)
        + [
            f"{render_expression(spec.expression)} AS {spec.name}"
            for spec in query.aggregates
        ]
    )
    r1_lines = [
        f"R1' ({', '.join(r1_columns)}) ==",
        f"  SELECT {r1_body_select}",
        f"  FROM {_from_clause(query.r1)}",
    ]
    if split.c1 is not None:
        r1_lines.append(f"  WHERE {render_expression(split.c1)}")
    if query.ga1_plus:
        r1_lines.append(f"  GROUP BY {', '.join(query.ga1_plus)}")

    r2_lines = [
        f"R2' ({', '.join(r2_columns)}) ==",
        f"  SELECT {', '.join(query.ga2_plus)}",
        f"  FROM {_from_clause(query.r2)}",
    ]
    if split.c2 is not None:
        r2_lines.append(f"  WHERE {render_expression(split.c2)}")

    return "\n".join([main, "", "where", ""] + r1_lines + [""] + r2_lines)
