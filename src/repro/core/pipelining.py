"""Detecting when explicit grouping after a join is unnecessary (§2).

The paper's related-work section recounts two observations:

* Klug [9]: in some cases the join result is *already grouped* correctly,
  so grouping can be pipelined with aggregation — nested-loop and
  sort-merge joins both produce outer-ordered output;
* Dayal [3] (stated without proof there): the condition for this is that
  **the group-by columns contain a key of the outer table of the join**.

:func:`dayal_condition` tests Dayal's criterion for a
:class:`~repro.core.query_class.GroupByJoinQuery` evaluated with R2 as the
outer input; when it holds, :func:`pipelined_standard_plan` builds an E1
plan whose grouping is a pipelined scan over a sort-merge join (the
executor's interesting-order machinery makes the sort free), and the tests
verify the work saving and the correctness.

Why the criterion works, in this setting: sort-merge join on the C0 keys
emits rows clustered by the outer's join key; if the grouping columns
functionally determine (indeed contain) a key of the outer table and the
outer's key determines the grouping columns' outer part, rows of one group
are contiguous in the join output.  We require the *syntactic* containment
Dayal states — grouping columns ⊇ some candidate key of the outer — plus
that all grouping columns come from the outer table.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.algebra.ops import AggregateSpec, Apply, Group, PlanNode, Project
from repro.catalog.catalog import Database
from repro.core.planbuild import build_join_tree
from repro.core.query_class import GroupByJoinQuery
from repro.expressions.builder import min_


def _pipelining_key(
    database: Database, query: GroupByJoinQuery
) -> Optional[Tuple[str, ...]]:
    """A NOT-NULL candidate key of the single outer (R2) table contained
    in the grouping columns, or None.

    NULL-admitting UNIQUE keys are rejected: two NULL-keyed rows would be
    merged by key-grouping while genuinely belonging to different ``=ⁿ``
    groups of the full grouping list — the same soundness point as in
    :mod:`repro.fd.derivation`.
    """
    if len(query.r2) != 1 or query.ga1:
        return None
    (binding,) = query.r2
    schema = database.table(binding.table_name).schema
    grouping = set(query.ga2)
    for key in schema.candidate_keys():
        if any(schema.column(column).nullable for column in key):
            continue
        qualified = tuple(f"{binding.alias}.{column}" for column in key)
        if set(qualified) <= grouping:
            return qualified
    return None


def dayal_condition(database: Database, query: GroupByJoinQuery) -> bool:
    """Dayal's criterion: GROUP BY columns contain a (non-null) key of the
    outer (R2) table, and reference only the outer side.

    Only the single-table-R2 case is considered (Dayal's statement is
    about one outer table); multi-table R2 groups return False
    conservatively.
    """
    return _pipelining_key(database, query) is not None


def pipelined_standard_plan(
    database: Database, query: GroupByJoinQuery
) -> Optional[PlanNode]:
    """An E1 plan whose group-by pipelines over the join's output order.

    Returns ``None`` when :func:`dayal_condition` fails.  Construction:

    * the outer (R2) table drives a sort-merge join, so the join output is
      clustered on the outer's key;
    * grouping runs on the *key columns only* — since the key determines
      every other grouping column, the groups are identical; the remaining
      grouping columns are recovered as ``MIN(col)`` pseudo-aggregates
      (constant within each group);
    * run with ``ExecutorConfig(join_algorithm="sort_merge",
      aggregation="sort", exploit_orders=True)`` the grouping degenerates
      to one pipelined scan: no explicit sort, exactly Klug's observation.
    """
    key = _pipelining_key(database, query)
    if key is None:
        return None
    # Outer first: the merge output is ordered by its key columns.
    bindings = query.r2 + query.r1
    tree = build_join_tree(bindings, query.where)
    carried: List[AggregateSpec] = [
        AggregateSpec(column, min_(column))
        for column in query.grouping_columns
        if column not in key
    ]
    aggregated = Apply(Group(tree, key), tuple(carried) + query.aggregates)
    return Project(aggregated, query.select_columns, query.distinct)
