"""The transformation itself: building E1 and E2 plans and deciding validity.

* :func:`build_standard_plan` — E1, "group by after join" (Plan 1 of
  Figure 1).
* :func:`build_eager_plan` — E2, "group by before join" (Plan 2 of
  Figure 1): aggregate the R1 group on GA1+ under C1, project the R2 group
  to GA2+ under C2 (Lemma 1 says the projection is harmless), join on C0,
  and project the final SELECT list.
* :func:`check_transformable` / :func:`transform` — gate the rewrite behind
  TestFD (Theorem 4: YES ⇒ valid).
* :func:`expand_predicates` — the *predicate expansion* noted at the end of
  Example 3: propagate constant bindings across C0 equalities so the eager
  R1 block filters early (e.g. add ``A.Machine = 'dragon'``).
* :func:`reverse` — Section 8: given a query naturally phrased as an
  aggregated view joined to other tables (the E2 shape), the same
  conditions license evaluating it as E1 ("performing join before
  group-by").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.algebra.ops import (
    Apply,
    Group,
    Join,
    PlanNode,
    Project,
)
from repro.catalog.catalog import Database
from repro.core.planbuild import build_join_tree
from repro.core.query_class import GroupByJoinQuery
from repro.core.testfd import TestFDResult, test_fd
from repro.errors import TransformationError
from repro.expressions.analysis import classify_atomic, Type1Condition, Type2Condition
from repro.expressions.ast import ColumnRef, Comparison, Expression
from repro.expressions.normalize import conjoin, split_conjuncts


def build_standard_plan(query: GroupByJoinQuery) -> PlanNode:
    """E1: join everything under the full WHERE, group, aggregate, project.

    A HAVING clause (which blocks the *transformation* but not execution)
    is applied as a filter over the grouped rows, with any aggregates it
    mentions computed alongside and projected away afterwards.
    """
    from repro.core.having import grouped_plan_with_having

    tree = build_join_tree(query.all_bindings, query.where)
    return grouped_plan_with_having(
        tree,
        query.grouping_columns,
        query.aggregates,
        query.having,
        query.select_columns,
        query.distinct,
    )


def build_eager_plan(query: GroupByJoinQuery, project_r2: bool = True) -> PlanNode:
    """E2: group-by pushed below the join.

    ``project_r2=True`` builds the practical form (π^A[GA2+] on the R2 side,
    per Lemma 1); ``False`` builds E2′, which carries all R2 columns through
    the join — the two are proved equivalent by Lemma 1 and tests verify it.
    """
    split = query.split()
    r1_tree = build_join_tree(query.r1, split.c1)
    r1_aggregated: PlanNode = Apply(
        Group(r1_tree, query.ga1_plus), query.aggregates
    )
    if not query.r2:
        return Project(r1_aggregated, query.select_columns, query.distinct)
    r2_tree: PlanNode = build_join_tree(query.r2, split.c2)
    if project_r2 and query.ga2_plus:
        r2_tree = Project(r2_tree, query.ga2_plus)
    joined = Join(r1_aggregated, r2_tree, split.c0)
    return Project(joined, query.select_columns, query.distinct)


@dataclass
class TransformationDecision:
    """Outcome of the validity test for one query."""

    valid: bool
    reason: str
    testfd: Optional[TestFDResult] = None

    def __bool__(self) -> bool:
        return self.valid


def check_transformable(
    database: Database,
    query: GroupByJoinQuery,
    assume_unique_keys: bool = False,
    paper_strict: bool = False,
) -> TransformationDecision:
    """Is pushing the group-by below the join guaranteed valid?

    Wraps TestFD; a YES is sound (Theorem 4), a NO is inconclusive —
    :func:`repro.core.main_theorem.check_equivalence` can still confirm
    equivalence on a *specific* instance, but not for all instances.
    """
    result = test_fd(
        database,
        query,
        assume_unique_keys=assume_unique_keys,
        paper_strict=paper_strict,
    )
    return TransformationDecision(result.decision, result.reason, result)


def transform(
    database: Database,
    query: GroupByJoinQuery,
    assume_unique_keys: bool = False,
    paper_strict: bool = False,
) -> PlanNode:
    """Return the eager (E2) plan, or raise if validity cannot be shown.

    The returned plan carries a
    :class:`~repro.analysis.certificates.RewriteCertificate` recording the
    keys, equality classes and closures that establish FD1/FD2.  The
    certificate is independently re-validated and the plan statically
    verified before being returned — a defect in either (which would mean a
    bug in TestFD or the plan builders) raises :class:`TransformationError`
    rather than handing out an unsound plan.
    """
    # Lazy imports: repro.analysis imports the plan builders from here.
    from repro.analysis.certificates import (
        attach_certificate,
        audit_certificate,
        issue_certificate,
    )
    from repro.analysis.diagnostics import Severity, render_diagnostics
    from repro.analysis.verifier import analyze_plan

    decision = check_transformable(
        database, query,
        assume_unique_keys=assume_unique_keys,
        paper_strict=paper_strict,
    )
    if not decision.valid:
        raise TransformationError(decision.reason)
    plan = build_eager_plan(query)
    assert decision.testfd is not None
    certificate = issue_certificate(
        database, query, decision.testfd, assume_unique_keys=assume_unique_keys
    )
    problems = list(audit_certificate(database, query, certificate))
    problems.extend(
        analyze_plan(
            plan, database,
            certificate=certificate,
            min_severity=Severity.ERROR,
        )
    )
    if problems:
        raise TransformationError(
            "rewrite failed self-verification:\n" + render_diagnostics(problems)
        )
    return attach_certificate(plan, certificate)


def reverse(
    database: Database,
    query: GroupByJoinQuery,
    assume_unique_keys: bool = False,
) -> PlanNode:
    """Section 8: evaluate an aggregated-view join as one grouped join (E1).

    ``query`` describes the aggregated view (its R1 group, C1, GA1+ produce
    the view) joined with the R2 group — i.e. its *natural* evaluation is
    the E2 plan.  When FD1/FD2 hold the optimizer may instead run the E1
    plan, which wins when the join is selective (few rows reach the
    group-by).  Validity is the same TestFD condition.
    """
    decision = check_transformable(
        database, query, assume_unique_keys=assume_unique_keys
    )
    if not decision.valid:
        raise TransformationError(
            f"cannot reverse the view evaluation order: {decision.reason}"
        )
    return build_standard_plan(query)


def normalize_having(query: GroupByJoinQuery) -> GroupByJoinQuery:
    """Fold an aggregate-free HAVING into the WHERE clause (§9 relaxation).

    A HAVING condition that references only grouping columns evaluates
    identically on every row of a group, so filtering groups after
    aggregation equals filtering rows before it — the clause can move into
    WHERE, and the query re-enters the transformable class.  HAVING
    conditions touching aggregates are left alone (they genuinely need the
    post-aggregation filter).
    """
    from repro.expressions.ast import contains_aggregate

    if query.having is None or contains_aggregate(query.having):
        return query
    new_where = conjoin(
        list(split_conjuncts(query.where)) + list(split_conjuncts(query.having))
    )
    return GroupByJoinQuery(
        query.r1,
        query.r2,
        new_where,
        query.ga1,
        query.ga2,
        query.aggregates,
        query.sga1,
        query.sga2,
        query.distinct,
        having=None,
    )


def expand_predicates(query: GroupByJoinQuery) -> GroupByJoinQuery:
    """Predicate expansion (Example 3's closing remark).

    For every constant binding ``v = c`` among the WHERE conjuncts, add
    ``v' = c`` for each column ``v'`` in the same equality class as ``v``
    (classes induced by the Type-2 conjuncts).  On qualifying rows the added
    conjuncts are implied, so the query result is unchanged — but the eager
    plan's R1 block can now filter before grouping (e.g. group only the
    'dragon' rows of PrinterAuth).
    """
    conjuncts = list(split_conjuncts(query.where))
    # Union-find over columns via Type-2 equalities.
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: str, y: str) -> None:
        parent[find(x)] = find(y)

    for conjunct in conjuncts:
        classified = classify_atomic(conjunct)
        if isinstance(classified, Type2Condition):
            union(classified.left.qualified, classified.right.qualified)

    members: Dict[str, List[str]] = {}
    for column in list(parent):
        members.setdefault(find(column), []).append(column)

    existing = {str(c) for c in conjuncts}
    added: List[Expression] = []
    for conjunct in conjuncts:
        classified = classify_atomic(conjunct)
        if not isinstance(classified, Type1Condition):
            continue
        column = classified.column.qualified
        if column not in parent:
            continue
        for peer in members.get(find(column), []):
            if peer == column:
                continue
            table, bare = peer.rsplit(".", 1)
            candidate = Comparison(
                "=", ColumnRef(table, bare), classified.constant
            )
            if str(candidate) not in existing:
                added.append(candidate)
                existing.add(str(candidate))

    if not added:
        return query
    return GroupByJoinQuery(
        query.r1,
        query.r2,
        conjoin(conjuncts + added),
        query.ga1,
        query.ga2,
        query.aggregates,
        query.sga1,
        query.sga2,
        query.distinct,
        query.having,
    )
