"""Column substitution (concluding remarks, Section 9).

A query may fail TestFD under one syntactic form yet pass under an
equivalent one: equality conjuncts in the WHERE clause make columns
interchangeable on qualifying rows, so aggregation columns (and thereby the
R1/R2 partition) can be rewritten.  The paper proposes generating the set
of equivalent queries by column substitution, trying all partitions of
each, and testing every resulting query.

:func:`equivalent_queries` generates the variants (bounded);
:func:`find_transformable` walks variants × partitions until TestFD says
YES, returning the winning normalized query.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set

from repro.algebra.ops import AggregateSpec
from repro.catalog.catalog import Database
from repro.core.partition import (
    FlatQuery,
    enumerate_partitions,
    to_group_by_join_query,
)
from repro.core.query_class import GroupByJoinQuery
from repro.core.testfd import test_fd
from repro.errors import TransformationError
from repro.expressions.analysis import Type2Condition, classify_atomic
from repro.expressions.ast import (
    Aggregate,
    ColumnRef,
    Expression,
)
from repro.expressions.normalize import split_conjuncts


def _equality_classes(where: Optional[Expression]) -> Dict[str, Set[str]]:
    """Column equivalence classes induced by Type-2 WHERE conjuncts."""
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for conjunct in split_conjuncts(where):
        classified = classify_atomic(conjunct)
        if isinstance(classified, Type2Condition):
            left = classified.left.qualified
            right = classified.right.qualified
            parent[find(left)] = find(right)

    classes: Dict[str, Set[str]] = {}
    for column in list(parent):
        classes.setdefault(find(column), set()).add(column)
    return {
        column: classes[find(column)]
        for column in parent
    }


def _substitute_in_expression(
    expression: Expression, mapping: Dict[str, str]
) -> Expression:
    """Rewrite column references per ``mapping`` (qualified -> qualified)."""
    from repro.expressions.ast import transform_expression

    def visit(node: Expression):
        if isinstance(node, ColumnRef):
            target = mapping.get(node.qualified)
            if target is None:
                return node
            table, bare = target.rsplit(".", 1)
            return ColumnRef(table, bare)
        return None

    return transform_expression(expression, visit)


def equivalent_queries(
    flat: FlatQuery, max_variants: int = 32
) -> Iterator[FlatQuery]:
    """The original query plus substitution variants.

    Each variant replaces *one* aggregation-column reference with an
    equality-class peer from a different table.  Substituting into
    aggregation arguments is the move that changes which tables carry
    aggregation columns — and hence which partitions exist.  (Deeper
    multi-column substitution compounds combinatorially; one step already
    covers the paper's motivating scenario and callers can iterate.)
    """
    yield flat
    produced = 1
    classes = _equality_classes(flat.where)
    for spec_index, spec in enumerate(flat.aggregates):
        for aggregate in _aggregates_of(spec.expression):
            if aggregate.argument is None:
                continue
            for ref in _column_refs_of(aggregate.argument):
                peers = classes.get(ref.qualified, set())
                for peer in sorted(peers - {ref.qualified}):
                    if produced >= max_variants:
                        return
                    mapping = {ref.qualified: peer}
                    new_specs = list(flat.aggregates)
                    new_specs[spec_index] = AggregateSpec(
                        spec.name,
                        _substitute_in_expression(spec.expression, mapping),
                    )
                    yield FlatQuery(
                        flat.bindings,
                        flat.where,
                        flat.group_by,
                        flat.select_group_columns,
                        new_specs,
                        flat.distinct,
                        flat.having,
                    )
                    produced += 1


def _aggregates_of(expression: Expression):
    from repro.expressions.ast import aggregates

    return aggregates(expression)


def _column_refs_of(expression: Expression):
    from repro.expressions.ast import column_refs

    return column_refs(expression)


def find_transformable(
    database: Database,
    flat: FlatQuery,
    assume_unique_keys: bool = False,
    max_variants: int = 32,
    max_partitions: int = 16,
) -> Optional[GroupByJoinQuery]:
    """Search substitution variants × partitions for a TestFD YES.

    Returns the first normalized query whose eager rewrite is provably
    valid, or ``None``.  The found query is *equivalent to* the input (same
    results on every instance) by construction.
    """
    for variant in equivalent_queries(flat, max_variants):
        tried = 0
        for r1, _r2 in enumerate_partitions(variant):
            if tried >= max_partitions:
                break
            tried += 1
            try:
                query = to_group_by_join_query(variant, r1)
            except TransformationError:
                continue
            result = test_fd(
                database, query, assume_unique_keys=assume_unique_keys
            )
            if result.decision:
                return query
    return None
