"""TestFD: the fast sufficient test of Section 6.3.

Decides whether the functional dependencies of the Main Theorem,

* ``FD1: (GA1, GA2) → GA1+``
* ``FD2: (GA1+, GA2) → RowID(R2)``

are *guaranteed* to hold in ``σ[C1 ∧ C0 ∧ C2](R1 × R2)`` using only key
constraints and equality conditions.  YES means the transformation is valid
(Theorem 4); NO means "could not show it", not "invalid".

Algorithm (paper steps in brackets):

1. Build ``C = C1 ∧ C0 ∧ C2 ∧ T1 ∧ T2`` and convert to CNF.          [1]
2. Delete every clause containing an atom that is not Type 1
   (``v = constant/host var``) or Type 2 (``v1 = v2``).              [2]
3. Convert the remainder to DNF: ``E1 ∨ … ∨ En``.                    [3]
4. For each conjunctive component ``Ei``: seed ``S = GA1 ∪ GA2``,
   add constant-bound columns, close transitively over the component's
   equalities and the candidate keys, then demand (d) a key of every
   R2-group table in ``S`` and (h) ``GA1+ ⊆ S``.                     [4]
5. All components pass ⇒ YES.                                         [5]

We fold the paper's steps (e)–(g) into (a)–(c): they recompute the very
same closure (the second seeding differs only by a typo in the paper), so
one closure serves both checks (d) and (h).

Divergence from the paper, controlled by ``paper_strict``: when step 2
leaves *no* clause, the paper returns NO immediately (step 3).  Key
constraints alone can still establish FD1/FD2 (e.g. GA2 already contains a
key of R2), so by default we run step 4 once on an empty component; pass
``paper_strict=True`` for the literal behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence, Tuple

from repro.catalog.catalog import Database
from repro.core.query_class import GroupByJoinQuery
from repro.errors import TransformationError
from repro.expressions.analysis import (
    Type1Condition,
    Type2Condition,
    classify_atomic,
)
from repro.expressions.ast import Expression
from repro.expressions.normalize import conjoin, to_cnf, to_dnf
from repro.fd.derivation import TableBinding


@dataclass
class ComponentTrace:
    """The step-by-step record of one DNF component's closure (Example 3
    prints these as steps a–h).

    ``constants`` and ``equalities`` are the component's Type-1/Type-2
    atoms in structured form (qualified column names), so the rewrite
    auditor (:mod:`repro.analysis.certificates`) can re-derive the closure
    independently instead of trusting the rendered ``atoms`` strings.
    """

    atoms: Tuple[str, ...]
    seed: FrozenSet[str]
    after_constants: FrozenSet[str]
    closure: FrozenSet[str]
    r2_keys_found: bool
    ga1_plus_covered: bool
    constants: Tuple[str, ...] = ()
    equalities: Tuple[Tuple[str, str], ...] = ()


@dataclass
class TestFDResult:
    """The verdict plus enough trace to explain it."""

    decision: bool
    reason: str
    components: List[ComponentTrace] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.decision


def _gather_constraints(
    database: Database, bindings: Sequence[TableBinding]
) -> List[Expression]:
    """T1/T2: CHECK, domain and single-table assertion conditions of the
    bound tables, qualified by alias (Theorem 3)."""
    conditions: List[Expression] = []
    for binding in bindings:
        conditions.extend(
            database.table_condition(binding.table_name, binding.alias)
        )
    return conditions


def _candidate_keys(
    database: Database,
    bindings: Sequence[TableBinding],
    assume_unique_keys: bool,
) -> dict:
    """alias -> tuple of candidate keys (frozensets of qualified columns).

    UNIQUE keys with nullable columns are excluded unless
    ``assume_unique_keys`` — see :mod:`repro.fd.derivation` for why.
    """
    keys: dict = {}
    for binding in bindings:
        schema = database.table(binding.table_name).schema
        primary = schema.primary_key()
        qualified: List[FrozenSet[str]] = []
        for key in schema.candidate_keys():
            if key != primary and not assume_unique_keys:
                if any(schema.column(c).nullable for c in key):
                    continue
            qualified.append(frozenset(f"{binding.alias}.{c}" for c in key))
        keys[binding.alias] = tuple(qualified)
    return keys


def _columns_by_alias(database: Database, bindings: Sequence[TableBinding]) -> dict:
    return {
        binding.alias: frozenset(
            f"{binding.alias}.{c}"
            for c in database.table(binding.table_name).schema.column_names()
        )
        for binding in bindings
    }


def _closure_over_component(
    seed: FrozenSet[str],
    type1: Sequence[Type1Condition],
    type2: Sequence[Type2Condition],
    keys_by_alias: dict,
    columns_by_alias: dict,
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """Steps (a)–(c): seed, add constant columns, close transitively.

    Returns ``(after_constants, closure)``.
    """
    working = set(seed)
    for condition in type1:
        working.add(condition.column.qualified)
    after_constants = frozenset(working)

    changed = True
    while changed:
        changed = False
        for condition in type2:
            left = condition.left.qualified
            right = condition.right.qualified
            if left in working and right not in working:
                working.add(right)
                changed = True
            if right in working and left not in working:
                working.add(left)
                changed = True
        for alias, keys in keys_by_alias.items():
            all_columns = columns_by_alias[alias]
            if all_columns <= working:
                continue
            for key in keys:
                if key <= working:
                    working |= all_columns
                    changed = True
                    break
    return after_constants, frozenset(working)


def test_fd(
    database: Database,
    query: GroupByJoinQuery,
    assume_unique_keys: bool = False,
    paper_strict: bool = False,
    max_dnf_terms: int = 4096,
) -> TestFDResult:
    """Run TestFD for ``query``; YES means the eager rewrite is valid.

    Inputs per the paper: the predicates C1, C0, C2 (recovered from the
    query), the constraint conditions T1, T2 (from the catalog), and the key
    constraints of every table in R1 and R2.
    """
    if query.having is not None:
        return TestFDResult(
            False, "queries with a HAVING clause are outside the class considered"
        )
    if not query.r2:
        return TestFDResult(
            False,
            "no R2 group: every FROM table carries aggregation columns, so "
            "there is no join to push the group-by past",
        )

    constraint_conditions = _gather_constraints(database, query.all_bindings)
    combined = conjoin(
        list(query.split().conjuncts()) + constraint_conditions
    )

    keys_by_alias = _candidate_keys(database, query.all_bindings, assume_unique_keys)
    columns_by_alias = _columns_by_alias(database, query.all_bindings)
    r2_aliases = sorted(query.r2_aliases)

    # Steps 1-2: CNF, drop clauses containing non-Type-1/2 atoms.
    if combined is None:
        clauses: Tuple[Tuple[Expression, ...], ...] = ()
    else:
        try:
            clauses = to_cnf(combined, max_terms=max_dnf_terms)
        except TransformationError as exc:
            return TestFDResult(False, f"normalization too large: {exc}")
    kept_clauses = [
        clause
        for clause in clauses
        if all(classify_atomic(atom) is not None for atom in clause)
    ]

    # Step 3.
    if not kept_clauses:
        if paper_strict:
            return TestFDResult(
                False,
                "no usable equality conditions remain after filtering "
                "(paper-strict step 3 returns NO)",
            )
        components: Tuple[Tuple[Expression, ...], ...] = ((),)
    else:
        kept_expression = conjoin(
            [_disjoin_clause(clause) for clause in kept_clauses]
        )
        assert kept_expression is not None
        try:
            components = to_dnf(kept_expression, max_terms=max_dnf_terms)
        except TransformationError as exc:
            return TestFDResult(False, f"DNF expansion too large: {exc}")

    # Step 4: every conjunctive component must establish FD1 and FD2.
    seed = frozenset(query.ga1) | frozenset(query.ga2)
    ga1_plus = frozenset(query.ga1_plus)
    traces: List[ComponentTrace] = []
    for component in components:
        type1: List[Type1Condition] = []
        type2: List[Type2Condition] = []
        for atom in component:
            classified = classify_atomic(atom)
            if isinstance(classified, Type1Condition):
                type1.append(classified)
            elif isinstance(classified, Type2Condition):
                type2.append(classified)
            # Non-equality atoms inside a kept component cannot appear:
            # step 2 removed the clauses that could produce them.
        after_constants, closure = _closure_over_component(
            seed, type1, type2,
            keys_by_alias, columns_by_alias,
        )
        # Step (d): a candidate key of every R2-group member must be in S —
        # jointly they identify RowID(R2), the product of the members.
        r2_ok = all(
            any(key <= closure for key in keys_by_alias[alias])
            for alias in r2_aliases
        )
        # Step (h): GA1+ ⊆ S establishes FD1.
        ga1_ok = ga1_plus <= closure
        traces.append(
            ComponentTrace(
                tuple(str(a) for a in component),
                seed, after_constants, closure, r2_ok, ga1_ok,
                constants=tuple(c.column.qualified for c in type1),
                equalities=tuple(
                    (c.left.qualified, c.right.qualified) for c in type2
                ),
            )
        )
        if not r2_ok:
            return TestFDResult(
                False,
                "FD2 not established: no candidate key of the R2 group is "
                "reachable from (GA1, GA2) in some DNF component",
                traces,
            )
        if not ga1_ok:
            missing = sorted(ga1_plus - closure)
            return TestFDResult(
                False,
                f"FD1 not established: GA1+ columns {missing} are not "
                "reachable from (GA1, GA2) in some DNF component",
                traces,
            )

    return TestFDResult(True, "FD1 and FD2 guaranteed by keys and equalities", traces)


# Keep pytest from collecting the algorithm as a test when imported into
# test modules (its name intentionally matches the paper's "TestFD").
test_fd.__test__ = False  # type: ignore[attr-defined]


def _disjoin_clause(clause: Sequence[Expression]) -> Expression:
    from repro.expressions.normalize import disjoin

    result = disjoin(list(clause))
    assert result is not None
    return result
