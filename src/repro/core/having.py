"""HAVING-clause support for standard (group-after-join) plans.

The paper excludes HAVING from the *transformation* ("All queries
considered in this paper were assumed not to contain a HAVING clause" —
§9 lists relaxing this as further work), but a real system must still
*execute* such queries.  We evaluate HAVING the standard way: aggregate,
then filter the per-group rows.

Mechanically, every aggregate appearing in the HAVING condition must be
computed by the grouping operator.  :func:`rewrite_having` replaces each
aggregate subtree with a reference to an output column — reusing a SELECT
aggregate when one computes the same expression, otherwise synthesizing a
hidden spec (``#having0``, ``#having1``, …) that the final projection
drops.  :func:`grouped_plan_with_having` assembles the full plan fragment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.algebra.ops import (
    AggregateSpec,
    Apply,
    Group,
    PlanNode,
    Project,
    Select,
)
from repro.expressions.ast import (
    Aggregate,
    ColumnRef,
    Expression,
)

HIDDEN_PREFIX = "#having"


def rewrite_having(
    having: Expression,
    specs: Sequence[AggregateSpec],
) -> Tuple[Expression, Tuple[AggregateSpec, ...]]:
    """Replace aggregate subtrees in ``having`` with output-column refs.

    Returns the rewritten condition and any *hidden* specs that the
    grouping operator must additionally compute.
    """
    by_expression = {spec.expression: spec.name for spec in specs}
    hidden: List[AggregateSpec] = []

    def name_for(aggregate: Aggregate) -> str:
        existing = by_expression.get(aggregate)
        if existing is not None:
            return existing
        name = f"{HIDDEN_PREFIX}{len(hidden)}"
        hidden.append(AggregateSpec(name, aggregate))
        by_expression[aggregate] = name
        return name

    from repro.expressions.ast import transform_expression

    def visit(node: Expression):
        if isinstance(node, Aggregate):
            return ColumnRef("", name_for(node))
        return None

    rewritten = transform_expression(having, visit)
    return rewritten, tuple(hidden)


def grouped_plan_with_having(
    tree: PlanNode,
    grouping_columns: Sequence[str],
    specs: Sequence[AggregateSpec],
    having: Optional[Expression],
    select_columns: Sequence[str],
    distinct: bool,
) -> PlanNode:
    """Group → (HAVING filter) → final projection.

    With no HAVING this degenerates to the plain ``π(F(G(tree)))`` shape;
    with one, hidden aggregates are computed alongside and projected away.
    """
    all_specs = tuple(specs)
    condition: Optional[Expression] = None
    if having is not None:
        condition, hidden = rewrite_having(having, all_specs)
        all_specs = all_specs + hidden
    plan: PlanNode = Apply(Group(tree, tuple(grouping_columns)), all_specs)
    if condition is not None:
        plan = Select(plan, condition)
    return Project(plan, tuple(select_columns), distinct)
