"""Plan cost model: CPU work, and optionally two-site communication.

Section 7 of the paper lists the trade-offs of eager grouping — the join
input can only shrink, the group-by input may grow or shrink with join
selectivity, and in a distributed database the transformation can slash
communication because only one row per group crosses the wire.  This module
turns those observations into numbers:

* :class:`CostModel` — per-operator CPU costs driven by the cardinality
  estimator (hash join ≈ |L|+|R|+|out|, hash group ≈ n+groups, etc.);
* :class:`DistributedCostModel` — adds a transfer charge for shipping the
  R1 side to the R2 site (or vice versa), the §7 communication argument.

Costs are abstract units, not seconds: the reproduction targets the
*shape* of the paper's comparisons (who wins, where the crossover falls).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.algebra.ops import (
    Apply,
    Exchange,
    Group,
    GroupApply,
    Join,
    PlanNode,
    Product,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.optimizer.cardinality import CardinalityEstimator, EstimateContext


@dataclass(frozen=True)
class CostWeights:
    """Unit charges for the primitive operations."""

    tuple_cpu: float = 1.0          # touching one tuple
    hash_build: float = 1.5         # inserting into a hash table
    hash_probe: float = 1.0         # probing a hash table
    comparison: float = 1.0         # one sort comparison
    output_tuple: float = 0.2       # emitting a result tuple


#: Per-backend CPU scale factors.  The vector backend does the *same*
#: abstract work (its ExecutionStats are identical by contract) but each
#: unit is cheaper — columnar batches amortize interpretation overhead and
#: the numeric fast paths run at C speed.  The factor is deliberately
#: uniform across operators so plan comparisons (who wins, where the
#: crossover falls) are backend-independent: switching engines rescales
#: every candidate's cost by the same constant and never flips a choice.
ENGINE_CPU_FACTORS: Dict[str, float] = {"row": 1.0, "vector": 0.3}


@dataclass
class PlanCost:
    """A cost total plus the per-node breakdown for explainability."""

    total: float
    by_node: Dict[int, float]
    rows_out: float


@dataclass(frozen=True)
class NetworkWeights:
    """Two-site communication charges (per row shipped).

    ``per_site_latency`` prices one round trip to one shard site in CPU
    units (the socket transport's measured heartbeat RTT is converted by
    the distributor; 0 for the in-memory wire).  Every Exchange candidate
    over the same shard count pays ``shards x per_site_latency`` equally —
    the term shifts distributed totals against the single-site baseline
    without ever flipping the choice *between* distributed candidates.
    """

    per_row: float = 50.0  # a shipped row costs this many CPU-units
    per_query_setup: float = 100.0
    per_site_latency: float = 0.0


#: How each Exchange mode multiplies the shipped-row charge: gather ships
#: every row once, shuffle re-partitions (two hops), broadcast fans every
#: row out to all shards.
EXCHANGE_MODE_FACTORS: Dict[str, float] = {"gather": 1.0, "shuffle": 2.0}


def exchange_mode_factor(mode: str, shards: int) -> float:
    if mode == "broadcast":
        return float(max(1, shards))
    return EXCHANGE_MODE_FACTORS[mode]


class CostModel:
    """Estimates the CPU cost of a logical plan.

    Plans containing :class:`~repro.algebra.ops.Exchange` nodes are priced
    with the §7 communication term folded in: the subtree below an
    Exchange runs shard-parallel (its CPU cost divides by the shard
    count), and every row the child produces is charged ``network.per_row``
    times the mode factor on its way through the wire.  This is what makes
    the planner push partial aggregation below the Exchange exactly when
    groups ≪ rows — the same comparison
    :class:`DistributedCostModel.cost_with_transfer` makes abstractly.
    """

    def __init__(
        self,
        estimator: CardinalityEstimator,
        weights: CostWeights = CostWeights(),
        join_algorithm: str = "hash",
        engine: str = "row",
        workers: int = 1,
        network: "NetworkWeights | None" = None,
    ) -> None:
        if join_algorithm not in ("hash", "nested_loop", "sort_merge"):
            raise ValueError(f"bad join_algorithm: {join_algorithm}")
        if engine not in ENGINE_CPU_FACTORS:
            raise ValueError(f"bad engine: {engine}")
        if workers < 1:
            raise ValueError(f"bad workers: {workers}")
        self.estimator = estimator
        self.weights = weights
        self.join_algorithm = join_algorithm
        self.engine = engine
        self.workers = workers
        self.network = network if network is not None else NetworkWeights()
        # Like the engine factor, the per-core speedup divides every
        # candidate's cost uniformly (morsel parallelism applies to whole
        # pipelines, not select operators), so plan choices never flip.
        self.cpu_factor = ENGINE_CPU_FACTORS[engine] / max(1, workers)

    def cost(self, plan: PlanNode) -> PlanCost:
        by_node: Dict[int, float] = {}
        total, context = self._cost(plan, by_node)
        factor = self.cpu_factor
        if factor != 1.0:
            total *= factor
            by_node = {node: value * factor for node, value in by_node.items()}
        return PlanCost(total, by_node, context.rows)

    # -- recursion -----------------------------------------------------------

    def _cost(self, plan: PlanNode, by_node: Dict[int, float]) -> Tuple[float, EstimateContext]:
        w = self.weights
        if isinstance(plan, Relation):
            context = self.estimator.estimate(plan)
            node_cost = context.rows * w.tuple_cpu
            by_node[id(plan)] = node_cost
            return node_cost, context

        if isinstance(plan, Select):
            child_cost, child = self._cost(plan.child, by_node)
            context = self.estimator.estimate(plan)
            node_cost = child.rows * w.tuple_cpu
            by_node[id(plan)] = node_cost
            return child_cost + node_cost, context

        if isinstance(plan, Project):
            child_cost, child = self._cost(plan.child, by_node)
            context = self.estimator.estimate(plan)
            node_cost = child.rows * w.tuple_cpu
            if plan.distinct:
                node_cost += child.rows * w.hash_build
            by_node[id(plan)] = node_cost
            return child_cost + node_cost, context

        if isinstance(plan, (Join, Product)):
            left_cost, left = self._cost(plan.left, by_node)
            right_cost, right = self._cost(plan.right, by_node)
            context = self.estimator.estimate(plan)
            node_cost = self._join_cost(plan, left, right, context)
            by_node[id(plan)] = node_cost
            return left_cost + right_cost + node_cost, context

        if isinstance(plan, GroupApply):
            child_cost, child = self._cost(plan.child, by_node)
            context = self.estimator.estimate(plan)
            node_cost = (
                child.rows * w.hash_build + context.rows * w.output_tuple
            )
            by_node[id(plan)] = node_cost
            return child_cost + node_cost, context

        if isinstance(plan, Apply) and isinstance(plan.child, Group):
            # Cost the fused form: Group+Apply is one aggregation operator.
            child_cost, child = self._cost(plan.child.child, by_node)
            context = self.estimator.estimate(plan)
            node_cost = child.rows * w.hash_build + context.rows * w.output_tuple
            by_node[id(plan)] = node_cost
            return child_cost + node_cost, context

        if isinstance(plan, (Group, Sort)):
            child_cost, child = self._cost(plan.child, by_node)
            context = self.estimator.estimate(plan)
            node_cost = _nlogn(child.rows) * w.comparison
            by_node[id(plan)] = node_cost
            return child_cost + node_cost, context

        if isinstance(plan, Exchange):
            child_cost, child = self._cost(plan.child, by_node)
            # The child's estimate is the shipped stream (for merge=True the
            # terminal GroupApply already shrank it to one row per group).
            shipped = child.rows
            factor = exchange_mode_factor(plan.mode, plan.shards)
            merge_weight = (
                self.weights.hash_build if plan.merge else self.weights.tuple_cpu
            )
            node_cost = (
                self.network.per_query_setup
                + plan.shards * self.network.per_site_latency
                + shipped * self.network.per_row * factor
                + shipped * merge_weight  # coordinator-side merge pass
            )
            by_node[id(plan)] = node_cost
            # The subtree below the wire runs once per shard in parallel,
            # so its CPU cost divides by the shard count.  (The per-node
            # breakdown keeps the undivided child entries: it explains the
            # work, the total explains the wall clock.)
            return child_cost / max(1, plan.shards) + node_cost, child

        raise TypeError(f"cannot cost {type(plan).__name__}")

    def estimated_transfer_rows(self, plan: PlanNode) -> float:
        """Estimated rows crossing the wire, summed over Exchange nodes."""
        from repro.algebra.ops import walk_plan

        total = 0.0
        for node in walk_plan(plan):
            if isinstance(node, Exchange):
                total += self.estimator.rows(node.child) * exchange_mode_factor(
                    node.mode, node.shards
                )
        return total

    def _join_cost(
        self,
        plan: "Join | Product",
        left: EstimateContext,
        right: EstimateContext,
        output: EstimateContext,
    ) -> float:
        w = self.weights
        if isinstance(plan, Product) or (isinstance(plan, Join) and plan.condition is None):
            return left.rows * right.rows * w.tuple_cpu
        if self.join_algorithm == "nested_loop":
            return left.rows * right.rows * w.tuple_cpu + output.rows * w.output_tuple
        if self.join_algorithm == "sort_merge":
            return (
                (_nlogn(left.rows) + _nlogn(right.rows)) * w.comparison
                + (left.rows + right.rows) * w.tuple_cpu
                + output.rows * w.output_tuple
            )
        # hash join: build on the smaller input
        build, probe = (right, left) if right.rows <= left.rows else (left, right)
        return (
            build.rows * w.hash_build
            + probe.rows * w.hash_probe
            + output.rows * w.output_tuple
        )


class DistributedCostModel:
    """CPU cost plus the §7 communication term for a two-site layout.

    The R1-group tables live on site 1, the R2-group tables on site 2, and
    the join executes at site 2: whatever the plan produces on the R1 side
    (the raw filtered rows for E1, one row per group for E2) must cross the
    network.  ``transfer_rows(plan_r1_side_rows)`` is charged at
    ``per_row``.
    """

    def __init__(
        self,
        cost_model: CostModel,
        network: NetworkWeights = NetworkWeights(),
    ) -> None:
        self.cost_model = cost_model
        self.network = network

    def cost_with_transfer(self, plan: PlanNode, shipped_subplan: PlanNode) -> float:
        """Total cost of ``plan`` when ``shipped_subplan``'s output crosses
        the network."""
        base = self.cost_model.cost(plan).total
        shipped_rows = self.cost_model.estimator.rows(shipped_subplan)
        return base + self.network.per_query_setup + shipped_rows * self.network.per_row


def _nlogn(n: float) -> float:
    if n <= 1.0:
        return n
    return n * math.log2(n)
