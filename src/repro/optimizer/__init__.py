"""Cost-based planning: cardinality estimation, cost models, plan choice."""

from repro.optimizer.cardinality import (
    CardinalityEstimator,
    ColumnStats,
    EstimateContext,
    Statistics,
    TableStats,
    collect_statistics,
)
from repro.optimizer.cost import (
    CostModel,
    CostWeights,
    DistributedCostModel,
    NetworkWeights,
    PlanCost,
)
from repro.optimizer.histogram import Histogram
from repro.optimizer.planner import POLICIES, PlanChoice, Planner
from repro.optimizer.rewrites import (
    REWRITE_RULES,
    RewriteOutcome,
    RuleCertificate,
    apply_rewrites,
    normalize_rewrites,
    rewrites_applied,
)

__all__ = [
    "CardinalityEstimator", "ColumnStats", "EstimateContext", "Statistics",
    "TableStats", "collect_statistics",
    "CostModel", "CostWeights", "DistributedCostModel", "NetworkWeights",
    "PlanCost", "Histogram",
    "POLICIES", "PlanChoice", "Planner",
    "REWRITE_RULES", "RewriteOutcome", "RuleCertificate",
    "apply_rewrites", "normalize_rewrites", "rewrites_applied",
]
