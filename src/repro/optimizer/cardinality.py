"""Cardinality estimation for logical plans.

A deliberately classic (System-R-flavoured) estimator: per-column distinct
counts drive equality selectivities, joins divide by the larger key NDV,
grouping caps the group count by the product of grouping-column NDVs.  The
paper's Section 7 says the eager/standard choice "is determined by the
estimated cost of the two plans" without giving a model — this estimator
plus :mod:`repro.optimizer.cost` is our concrete instantiation, and the
benchmarks show it reproduces the paper's qualitative calls (Figure 1:
eager wins; Figure 8: standard wins).

Statistics are collected from the actual stored tables
(:func:`collect_statistics`) or supplied synthetically for what-if studies
(:class:`ColumnStats` / :class:`TableStats` are plain data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.algebra.ops import (
    Apply,
    Exchange,
    Group,
    GroupApply,
    Join,
    PlanNode,
    Product,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.catalog.catalog import Database
from repro.expressions.analysis import classify_atomic, Type1Condition, Type2Condition
from repro.expressions.ast import Comparison, Expression, IsNull
from repro.expressions.normalize import split_conjuncts
from repro.sqltypes.values import group_key

#: Selectivity guesses for predicates we cannot analyse (System R defaults).
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_SELECTIVITY = 0.25


@dataclass
class ColumnStats:
    """Distinct-value count (and optional histogram) for one column."""

    distinct: int = 1
    histogram: "Histogram | None" = None


@dataclass
class TableStats:
    """Row count and per-column NDVs for one stored table."""

    row_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)


@dataclass
class Statistics:
    """Statistics for every table in a database, keyed by table name."""

    tables: Dict[str, TableStats] = field(default_factory=dict)

    def table(self, name: str) -> TableStats:
        return self.tables.get(name, TableStats())


def collect_statistics(
    database: Database, histogram_buckets: int = 0
) -> Statistics:
    """Exact statistics scanned from the stored tables.

    With ``histogram_buckets > 0``, equi-depth histograms are built for
    numeric columns and used for range-predicate selectivities.
    """
    from repro.optimizer.histogram import Histogram

    stats = Statistics()
    for name, table in database.tables.items():
        table_stats = TableStats(row_count=len(table))
        for i, column in enumerate(table.schema.column_names()):
            values = {group_key((row.values[i],)) for row in table}
            histogram = None
            if histogram_buckets > 0:
                histogram = Histogram.build(
                    [row.values[i] for row in table], histogram_buckets
                )
            table_stats.columns[column] = ColumnStats(
                distinct=max(1, len(values)), histogram=histogram
            )
        stats.tables[name] = table_stats
    return stats


@dataclass
class EstimateContext:
    """Row count, column NDVs, and histograms flowing up the plan.

    Histograms are source-level approximations: they are propagated
    unscaled through joins and selections (a documented simplification).
    """

    rows: float
    ndv: Dict[str, float]
    histograms: Dict[str, object] = field(default_factory=dict)

    def histogram_for(self, column: str):
        exact = self.histograms.get(column)
        if exact is not None:
            return exact
        bare = column.rsplit(".", 1)[-1]
        matches = [
            v for k, v in self.histograms.items() if k.rsplit(".", 1)[-1] == bare
        ]
        return matches[0] if len(matches) == 1 else None

    def column_ndv(self, column: str) -> float:
        exact = self.ndv.get(column)
        if exact is not None:
            return max(1.0, min(exact, self.rows)) if self.rows else 1.0
        # Bare-name fallback.
        bare = column.rsplit(".", 1)[-1]
        matches = [v for k, v in self.ndv.items() if k.rsplit(".", 1)[-1] == bare]
        if len(matches) == 1:
            return max(1.0, min(matches[0], self.rows)) if self.rows else 1.0
        return max(1.0, self.rows * DEFAULT_EQ_SELECTIVITY)


class CardinalityEstimator:
    """Estimates output cardinalities for every node of a logical plan."""

    def __init__(self, database: Database, statistics: Optional[Statistics] = None) -> None:
        self.database = database
        self.statistics = statistics or collect_statistics(database)

    # -- public API -----------------------------------------------------------

    def estimate(self, plan: PlanNode) -> EstimateContext:
        """Estimated (rows, column NDVs) of the plan's output."""
        if isinstance(plan, Relation):
            return self._relation(plan)
        if isinstance(plan, Select):
            return self._select(plan)
        if isinstance(plan, Project):
            return self._project(plan)
        if isinstance(plan, (Join, Product)):
            return self._join(plan)
        if isinstance(plan, GroupApply):
            return self._group(plan.child, plan.grouping_columns, len(plan.aggregates))
        if isinstance(plan, Apply):
            if isinstance(plan.child, Group):
                return self._group(
                    plan.child.child, plan.child.grouping_columns, len(plan.aggregates)
                )
            return self.estimate(plan.child)
        if isinstance(plan, (Group, Sort)):
            return self.estimate(plan.child)
        if isinstance(plan, Exchange):
            # The merged stream has the child's cardinality: merge=False
            # concatenates shard outputs, merge=True re-aggregates partials
            # back to one row per global group.
            return self.estimate(plan.child)
        raise TypeError(f"cannot estimate {type(plan).__name__}")

    def rows(self, plan: PlanNode) -> float:
        return self.estimate(plan).rows

    # -- node estimators ---------------------------------------------------

    def _relation(self, plan: Relation) -> EstimateContext:
        table_stats = self.statistics.table(plan.table_name)
        correlation = plan.correlation
        ndv = {
            f"{correlation}.{column}": float(stats.distinct)
            for column, stats in table_stats.columns.items()
        }
        histograms = {
            f"{correlation}.{column}": stats.histogram
            for column, stats in table_stats.columns.items()
            if stats.histogram is not None
        }
        return EstimateContext(float(table_stats.row_count), ndv, histograms)

    def _select(self, plan: Select) -> EstimateContext:
        child = self.estimate(plan.child)
        selectivity = self._condition_selectivity(plan.condition, child, child)
        rows = child.rows * selectivity
        ndv = {k: min(v, max(rows, 1.0)) for k, v in child.ndv.items()}
        return EstimateContext(rows, ndv, child.histograms)

    def _project(self, plan: Project) -> EstimateContext:
        child = self.estimate(plan.child)
        kept = {
            k: v
            for k, v in child.ndv.items()
            if k in plan.columns or k.rsplit(".", 1)[-1] in plan.columns
        }
        if not plan.distinct:
            return EstimateContext(child.rows, kept, child.histograms)
        distinct_rows = _group_count(child, plan.columns)
        ndv = {k: min(v, max(distinct_rows, 1.0)) for k, v in kept.items()}
        return EstimateContext(distinct_rows, ndv, child.histograms)

    def _join(self, plan: "Join | Product") -> EstimateContext:
        left = self.estimate(plan.left)
        right = self.estimate(plan.right)
        ndv = dict(left.ndv)
        ndv.update(right.ndv)
        rows = left.rows * right.rows
        if isinstance(plan, Join) and plan.condition is not None:
            rows *= self._condition_selectivity(plan.condition, left, right)
        capped = {k: min(v, max(rows, 1.0)) for k, v in ndv.items()}
        histograms = dict(left.histograms)
        histograms.update(right.histograms)
        return EstimateContext(rows, capped, histograms)

    def _group(
        self, child_plan: PlanNode, grouping_columns: Tuple[str, ...], n_aggregates: int
    ) -> EstimateContext:
        child = self.estimate(child_plan)
        groups = _group_count(child, grouping_columns)
        ndv = {
            k: min(v, max(groups, 1.0))
            for k, v in child.ndv.items()
            if k in grouping_columns or k.rsplit(".", 1)[-1] in grouping_columns
        }
        return EstimateContext(groups, ndv, child.histograms)

    # -- selectivity ------------------------------------------------------------

    def _condition_selectivity(
        self,
        condition: Expression,
        left: EstimateContext,
        right: EstimateContext,
    ) -> float:
        combined = EstimateContext(
            max(left.rows, right.rows),
            {**left.ndv, **right.ndv},
            {**left.histograms, **right.histograms},
        )
        selectivity = 1.0
        for conjunct in split_conjuncts(condition):
            selectivity *= self._conjunct_selectivity(conjunct, left, right, combined)
        return min(1.0, selectivity)

    def _conjunct_selectivity(
        self,
        conjunct: Expression,
        left: EstimateContext,
        right: EstimateContext,
        combined: EstimateContext,
    ) -> float:
        classified = classify_atomic(conjunct)
        if isinstance(classified, Type1Condition):
            return 1.0 / combined.column_ndv(classified.column.qualified)
        if isinstance(classified, Type2Condition):
            left_ndv = combined.column_ndv(classified.left.qualified)
            right_ndv = combined.column_ndv(classified.right.qualified)
            return 1.0 / max(left_ndv, right_ndv, 1.0)
        if isinstance(conjunct, Comparison) and conjunct.op in ("<", "<=", ">", ">="):
            histogram_selectivity = _histogram_range_selectivity(conjunct, combined)
            if histogram_selectivity is not None:
                return histogram_selectivity
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(conjunct, Comparison) and conjunct.op == "<>":
            return 1.0 - DEFAULT_EQ_SELECTIVITY
        if isinstance(conjunct, IsNull):
            return DEFAULT_EQ_SELECTIVITY
        from repro.expressions.ast import Between, ColumnRef, InList, Like

        if isinstance(conjunct, InList) and isinstance(conjunct.operand, ColumnRef):
            per_item = 1.0 / combined.column_ndv(conjunct.operand.qualified)
            selectivity = min(1.0, len(conjunct.items) * per_item)
            return 1.0 - selectivity if conjunct.negated else selectivity
        if isinstance(conjunct, Between):
            selectivity = None
            if isinstance(conjunct.operand, ColumnRef):
                histogram = combined.histogram_for(conjunct.operand.qualified)
                low = _constant_value(conjunct.low)
                high = _constant_value(conjunct.high)
                if histogram is not None and low is not None and high is not None:
                    selectivity = histogram.selectivity_between(low, high)
            if selectivity is None:
                # Two range bounds: the square of the single-bound default.
                selectivity = DEFAULT_RANGE_SELECTIVITY * DEFAULT_RANGE_SELECTIVITY * 2
            return 1.0 - selectivity if conjunct.negated else selectivity
        if isinstance(conjunct, Like):
            selectivity = DEFAULT_EQ_SELECTIVITY
            return 1.0 - selectivity if conjunct.negated else selectivity
        return DEFAULT_SELECTIVITY


def _constant_value(expression: Expression) -> "float | None":
    """The numeric value of a literal expression, else None."""
    from repro.expressions.ast import Literal
    from repro.sqltypes.values import is_null

    if isinstance(expression, Literal):
        value = expression.value
        if not is_null(value) and isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    return None


def _histogram_range_selectivity(
    conjunct: Comparison, combined: EstimateContext
) -> "float | None":
    """Histogram-based selectivity for ``col op constant`` (either order)."""
    from repro.expressions.ast import ColumnRef

    left, right = conjunct.left, conjunct.right
    op = conjunct.op
    if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
        # constant op col  ≡  col (flipped op) constant
        left, right = right, left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
    if not isinstance(left, ColumnRef) or isinstance(right, ColumnRef):
        return None
    value = _constant_value(right)
    if value is None:
        return None
    histogram = combined.histogram_for(left.qualified)
    if histogram is None:
        return None
    if op == "<":
        return histogram.selectivity_lt(value)
    if op == "<=":
        return histogram.selectivity_le(value)
    if op == ">":
        return histogram.selectivity_gt(value)
    return histogram.selectivity_ge(value)


def _group_count(child: EstimateContext, grouping_columns: Tuple[str, ...]) -> float:
    """Estimated distinct groups: capped product of grouping-column NDVs."""
    if not grouping_columns:
        return min(child.rows, 1.0)
    product = 1.0
    for column in grouping_columns:
        product *= child.column_ndv(column)
        if product >= child.rows:
            return max(child.rows, 0.0)
    return min(product, child.rows)
