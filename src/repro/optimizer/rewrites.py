"""Certified rewrite library: pushdown, pruning, and join reordering.

Three semantics-preserving rewrites over the SQL2 algebra, each emitting a
machine-checkable :class:`RuleCertificate`:

``predicate_pushdown``
    Moves conjuncts of a filter above ``F[AA] G[GA]`` below the group-by
    when every column they reference resolves to a *grouping key* (never an
    aggregate output — the alias guard) and the conjunct contains no
    aggregate (the count guard).  Sound because all rows of a group carry
    ``=ⁿ``-equal key values: the predicate evaluates identically on the
    group row and on each contributing row, including the NULL-key group
    (3VL verdicts are recorded as premises and re-derived by the checker).

``projection_pruning``
    Computes per-operator live-column sets top-down and inserts (or
    narrows) non-distinct projections below joins, products, and
    aggregations so dead columns are not carried through wide operators.

``join_reordering``
    Greedy cost-based reordering of maximal join/product regions whose
    output order is insulated by a ``π``/``F G`` ancestor, placing each
    conjunct at the earliest scope that binds all its tables; applied only
    when the cost model prices the new region strictly cheaper.

Each application captures full before/after plans in its certificate.  The
pass self-audits by default: :func:`apply_rewrites` hands every certificate
to the independent checker in :mod:`repro.analysis.equivalence` and raises
:class:`~repro.errors.TransformationError` if any premise fails to
re-verify — the rewriter is never trusted on its own output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.algebra.ops import (
    Apply,
    Group,
    GroupApply,
    Join,
    PlanNode,
    Product,
    Project,
    Relation,
    Select,
    Sort,
    _with_children,
    fuse_group_apply,
    walk_plan,
)
from repro.analysis.certificates import attach_certificate, get_certificate
from repro.analysis.nullability import rejects_null
from repro.analysis.schema import (
    AmbiguousColumn,
    PlanSchema,
    _node_path,
    infer_schema,
    infer_schemas,
)
from repro.catalog.catalog import Database
from repro.errors import TransformationError
from repro.expressions.analysis import referenced_tables
from repro.expressions.ast import (
    ColumnRef,
    Expression,
    column_refs,
    contains_aggregate,
    transform_expression,
)
from repro.expressions.normalize import conjoin, split_conjuncts

#: The rewrite rules, in the order the pass applies them.
REWRITE_RULES: Tuple[str, ...] = (
    "predicate_pushdown",
    "join_reordering",
    "projection_pruning",
)

#: Attribute set on a rewritten plan root so the executor never re-applies.
_APPLIED_ATTR = "_certified_rewrites"


def normalize_rewrites(value: object) -> Tuple[str, ...]:
    """Canonicalize a user-facing rewrite spec to a tuple of rule names.

    Accepts ``None``/``""``/``"none"``/``"off"`` (disabled), ``"all"``, a
    comma-separated string, or an iterable of rule names.  Unknown names
    raise ``ValueError`` listing the valid rules.
    """
    if value is None:
        return ()
    if isinstance(value, str):
        text = value.strip()
        if text in ("", "none", "off"):
            return ()
        names: Tuple[str, ...] = tuple(
            part.strip() for part in text.split(",") if part.strip()
        )
    else:
        names = tuple(value)
    if "all" in names:
        return REWRITE_RULES
    seen: List[str] = []
    for name in names:
        if name not in REWRITE_RULES:
            raise ValueError(
                f"unknown rewrite rule {name!r}; valid rules: "
                + ", ".join(REWRITE_RULES)
                + ", all"
            )
        if name not in seen:
            seen.append(name)
    # Preserve the canonical application order regardless of spelling order.
    return tuple(rule for rule in REWRITE_RULES if rule in seen)


@dataclass(frozen=True)
class RuleCertificate:
    """Evidence for one application of one rewrite rule.

    ``before`` and ``after`` are the *full* plans around the application
    (so the checker can audit context, not just the rewritten site);
    ``path`` is the operator breadcrumb of the rewritten site using the
    same ``$.i:label`` notation as the schema analyzer; ``premises`` are
    (name, value) facts the rewriter claims and the checker re-derives.
    """

    rule: str
    path: str
    before: PlanNode
    after: PlanNode
    premises: Tuple[Tuple[str, str], ...]

    def premise_values(self, name: str) -> Tuple[str, ...]:
        return tuple(value for key, value in self.premises if key == name)

    def to_dict(self) -> dict:
        from repro.algebra.display import render_plan

        return {
            "rule": self.rule,
            "path": self.path,
            "before": render_plan(self.before),
            "after": render_plan(self.after),
            "premises": [
                {"name": name, "value": value} for name, value in self.premises
            ],
        }

    def render(self) -> str:
        lines = [f"rewrite {self.rule} at {self.path}"]
        for name, value in self.premises:
            lines.append(f"  {name}: {value}")
        return "\n".join(lines)


@dataclass(frozen=True)
class RewriteOutcome:
    """A rewritten plan plus the certificates for every rule application."""

    plan: PlanNode
    certificates: Tuple[RuleCertificate, ...] = ()

    @property
    def changed(self) -> bool:
        return bool(self.certificates)


def rewrites_applied(plan: PlanNode) -> Optional[Tuple[str, ...]]:
    """The rewrite set already applied to ``plan``'s root, if any."""
    return getattr(plan, _APPLIED_ATTR, None)


# ---------------------------------------------------------------------------
# predicate pushdown through group-by
# ---------------------------------------------------------------------------


def _ref_from_name(name: str) -> ColumnRef:
    if "." in name:
        table, column = name.rsplit(".", 1)
        return ColumnRef(table, column)
    return ColumnRef("", name)


def _requalify_pushable(
    conjunct: Expression,
    grouping_columns: Tuple[str, ...],
    out_schema: PlanSchema,
    child_schema: PlanSchema,
) -> Optional[Expression]:
    """Rewrite ``conjunct`` against the group-by *input* if pushable.

    Pushable means: no aggregate anywhere in the conjunct (count guard),
    and every column reference resolves — unambiguously — to a grouping
    key of the ``F G`` output, never an aggregate alias (alias guard).
    Returns the conjunct with each reference requalified to the key's
    resolved name in the child schema, or ``None`` when not pushable.
    """
    if contains_aggregate(conjunct):
        return None
    keys = set(grouping_columns)
    mapping: Dict[ColumnRef, ColumnRef] = {}
    for ref in column_refs(conjunct):
        try:
            info = out_schema.resolve(ref.qualified)
        except AmbiguousColumn:
            return None
        if info is None or info.name not in keys:
            return None
        try:
            below = child_schema.resolve(info.name)
        except AmbiguousColumn:
            return None
        if below is None:
            return None
        mapping[ref] = _ref_from_name(below.name)

    def visit(node: Expression) -> Optional[Expression]:
        if isinstance(node, ColumnRef):
            return mapping.get(node)
        return None

    return transform_expression(conjunct, visit)


def _canonical_keys(
    grouping_columns: Tuple[str, ...], child_schema: PlanSchema
) -> Tuple[str, ...]:
    resolved = []
    for key in grouping_columns:
        try:
            info = child_schema.resolve(key)
        except AmbiguousColumn:
            info = None
        resolved.append(info.name if info is not None else key)
    return tuple(resolved)


def null_rejection_premises(
    pushed: Sequence[Expression], canonical_keys: Sequence[str]
) -> Tuple[Tuple[str, str], ...]:
    """3VL verdicts for each pushed conjunct against each key it touches.

    Shared with the equivalence checker, which re-derives the very same
    facts and compares them against the certificate.
    """
    premises: List[Tuple[str, str]] = []
    key_set = set(canonical_keys)
    for conjunct in pushed:
        touched = sorted(
            {ref.qualified for ref in column_refs(conjunct)} & key_set
        )
        for key in touched:
            verdict = "rejecting" if rejects_null(conjunct, key) else "preserving"
            premises.append(("null-rejection", f"{conjunct} on {key}: {verdict}"))
    return tuple(premises)


@dataclass
class _Step:
    plan: PlanNode
    path: str
    premises: Tuple[Tuple[str, str], ...]


def _peel_projects(node: PlanNode) -> Tuple[List[Project], PlanNode]:
    """Split off the chain of non-distinct projections above a core node."""
    projects: List[Project] = []
    while isinstance(node, Project) and not node.distinct:
        projects.append(node)
        node = node.child
    return projects, node


def _pushdown_site(
    node: Select, database: Database
) -> Optional[Tuple[PlanNode, Tuple[Tuple[str, str], ...]]]:
    projects, core = _peel_projects(node.child)
    if not isinstance(core, GroupApply):
        return None
    group = core
    # Resolution happens against the filter's direct input (the top of the
    # projection chain, if any): π passes resolved names through, so a
    # reference landing on a grouping key above still lands on it below.
    try:
        out_schema = infer_schema(node.child, database)
        child_schema = infer_schema(group.child, database)
    except Exception:
        return None
    pushed: List[Expression] = []
    residual: List[Expression] = []
    for conjunct in split_conjuncts(node.condition):
        requalified = _requalify_pushable(
            conjunct, group.grouping_columns, out_schema, child_schema
        )
        if requalified is None:
            residual.append(conjunct)
        else:
            pushed.append(requalified)
    if not pushed:
        return None
    pushed_condition = conjoin(pushed)
    assert pushed_condition is not None
    rewritten: PlanNode = GroupApply(
        Select(group.child, pushed_condition),
        group.grouping_columns,
        group.aggregates,
    )
    for project in reversed(projects):
        rewritten = Project(rewritten, project.columns, project.distinct)
    residual_condition = conjoin(residual)
    if residual_condition is not None:
        rewritten = Select(rewritten, residual_condition)
    canonical = _canonical_keys(group.grouping_columns, child_schema)
    premises: List[Tuple[str, str]] = [
        ("grouping-keys", ", ".join(group.grouping_columns) or "(none)"),
    ]
    for conjunct in pushed:
        premises.append(("pushed", str(conjunct)))
        premises.append(
            ("keys-only", f"{conjunct}: references only grouping keys")
        )
        premises.append(
            ("aggregate-guard", f"{conjunct}: no aggregate or alias reference")
        )
    for conjunct in residual:
        premises.append(("residual", str(conjunct)))
    premises.extend(null_rejection_premises(pushed, canonical))
    return rewritten, tuple(premises)


def _find_pushdown(plan: PlanNode, database: Database) -> Optional[_Step]:
    """Rewrite the first (pre-order) pushable filter-over-group site."""
    found: List[_Step] = []

    def recurse(node: PlanNode, prefix: str) -> PlanNode:
        if found:
            return node
        if isinstance(node, Select):
            site = _pushdown_site(node, database)
            if site is not None:
                rewritten, premises = site
                found.append(_Step(rewritten, _node_path(prefix, node), premises))
                return rewritten
        children = node.children()
        if not children:
            return node
        rebuilt = tuple(
            recurse(child, f"{prefix}.{index}")
            for index, child in enumerate(children)
        )
        if all(new is old for new, old in zip(rebuilt, children)):
            return node
        return _with_children(node, rebuilt)

    new_plan = recurse(plan, "$")
    if not found:
        return None
    step = found[0]
    return _Step(new_plan, step.path, step.premises)


# ---------------------------------------------------------------------------
# cost-based join reordering
# ---------------------------------------------------------------------------


def collect_join_region(plan: PlanNode) -> Tuple[List[PlanNode], List[Expression]]:
    """Flatten a join/product/filter region into (leaves, conjuncts).

    The same grammar is used by the equivalence checker to prove that a
    reordered region preserves the leaf and conjunct multisets.
    """
    if isinstance(plan, Join):
        left_leaves, left_conjuncts = collect_join_region(plan.left)
        right_leaves, right_conjuncts = collect_join_region(plan.right)
        here = list(split_conjuncts(plan.condition)) if plan.condition else []
        return left_leaves + right_leaves, left_conjuncts + right_conjuncts + here
    if isinstance(plan, Product):
        left_leaves, left_conjuncts = collect_join_region(plan.left)
        right_leaves, right_conjuncts = collect_join_region(plan.right)
        return left_leaves + right_leaves, left_conjuncts + right_conjuncts
    if isinstance(plan, Select):
        leaves, conjuncts = collect_join_region(plan.child)
        return leaves, conjuncts + list(split_conjuncts(plan.condition))
    return [plan], []


def _leaf_aliases(leaf: PlanNode, database: Database) -> Optional[Set[str]]:
    try:
        schema = infer_schema(leaf, database)
    except Exception:
        return None
    aliases = {
        name.rsplit(".", 1)[0]
        for name in (column.name for column in schema.columns)
        if "." in name
    }
    return aliases or None


def _region_costable(leaves: Sequence[PlanNode]) -> bool:
    for leaf in leaves:
        for node in walk_plan(leaf):
            if isinstance(node, Sort):
                return False
            if isinstance(node, Apply) and not isinstance(node.child, Group):
                return False
    return True


@dataclass
class _GreedyResult:
    plan: PlanNode
    order: Tuple[int, ...]


def _greedy_order(
    leaves: Sequence[PlanNode],
    aliases: Sequence[Set[str]],
    conjuncts: Sequence[Expression],
    estimator,
) -> Optional[_GreedyResult]:
    """Greedy smallest-intermediate-result ordering of a join region.

    Starts from the leaf whose filtered scan is smallest, then repeatedly
    adds the leaf minimizing the estimated rows of the growing join,
    placing every conjunct at the earliest scope that binds its tables
    (single-leaf conjuncts as a ``σ`` on the leaf, multi-leaf ones on the
    join that first completes their scope).
    """
    remaining = list(range(len(conjuncts)))

    def leaf_filter(index: int) -> Tuple[PlanNode, List[int]]:
        taken = [
            position
            for position in remaining
            if referenced_tables(conjuncts[position])
            and referenced_tables(conjuncts[position]) <= aliases[index]
        ]
        if not taken:
            return leaves[index], []
        condition = conjoin([conjuncts[position] for position in taken])
        assert condition is not None
        return Select(leaves[index], condition), taken

    try:
        starts = []
        for index in range(len(leaves)):
            candidate, _ = leaf_filter(index)
            starts.append((estimator.rows(candidate), index))
        start = min(starts)[1]
        tree, taken = leaf_filter(start)
        for position in taken:
            remaining.remove(position)
        scope = set(aliases[start])
        order = [start]
        todo = [index for index in range(len(leaves)) if index != start]
        while todo:
            best: Optional[Tuple[float, int, PlanNode, List[int]]] = None
            for index in todo:
                leaf_tree, leaf_taken = leaf_filter(index)
                new_scope = scope | aliases[index]
                join_positions = [
                    position
                    for position in remaining
                    if position not in leaf_taken
                    and referenced_tables(conjuncts[position]) <= new_scope
                ]
                condition = conjoin(
                    [conjuncts[position] for position in join_positions]
                )
                candidate = Join(tree, leaf_tree, condition)
                rows = estimator.rows(candidate)
                if best is None or rows < best[0]:
                    best = (rows, index, candidate, leaf_taken + join_positions)
            assert best is not None
            _, index, tree, consumed = best
            for position in consumed:
                remaining.remove(position)
            scope |= aliases[index]
            order.append(index)
            todo.remove(index)
        leftover = conjoin([conjuncts[position] for position in remaining])
        if leftover is not None:
            tree = Select(tree, leftover)
        return _GreedyResult(tree, tuple(order))
    except Exception:
        return None


def _try_reorder_region(
    region: PlanNode, database: Database, estimator, cost_model
) -> Optional[Tuple[PlanNode, Tuple[Tuple[str, str], ...]]]:
    leaves, conjuncts = collect_join_region(region)
    if len(leaves) < 2:
        return None
    if not _region_costable(leaves):
        return None
    for conjunct in conjuncts:
        if any(not ref.table for ref in column_refs(conjunct)):
            return None  # bare references make scope placement unsafe
    aliases: List[Set[str]] = []
    for leaf in leaves:
        leaf_aliases = _leaf_aliases(leaf, database)
        if leaf_aliases is None:
            return None
        aliases.append(leaf_aliases)
    all_aliases: Set[str] = set().union(*aliases)
    for conjunct in conjuncts:
        if not referenced_tables(conjunct) <= all_aliases:
            return None
    result = _greedy_order(leaves, aliases, conjuncts, estimator)
    if result is None or result.plan == region:
        return None
    try:
        cost_before = cost_model.cost(region).total
        cost_after = cost_model.cost(result.plan).total
    except Exception:
        return None
    if not cost_after < cost_before * (1.0 - 1e-9):
        return None
    premises: List[Tuple[str, str]] = [
        ("leaves-before", " , ".join(leaf.label() for leaf in leaves)),
        (
            "leaves-after",
            " , ".join(leaves[index].label() for index in result.order),
        ),
        ("cost-before", f"{cost_before:.6f}"),
        ("cost-after", f"{cost_after:.6f}"),
        ("join-algorithm", cost_model.join_algorithm),
    ]
    for conjunct in conjuncts:
        premises.append(("conjunct", str(conjunct)))
    premises.append(
        ("order-insulation", "region output order consumed by π/F G ancestor")
    )
    return result.plan, tuple(premises)


def _find_reorder(
    plan: PlanNode, database: Database, estimator, cost_model
) -> Optional[_Step]:
    """Rewrite the first improvable order-insulated join region."""
    found: List[_Step] = []

    def region_rooted(node: PlanNode) -> bool:
        core = node
        while isinstance(core, Select):
            core = core.child
        return isinstance(core, (Join, Product))

    def recurse(node: PlanNode, prefix: str, insulated: bool) -> PlanNode:
        if found:
            return node
        if insulated and region_rooted(node):
            attempt = _try_reorder_region(node, database, estimator, cost_model)
            if attempt is not None:
                rewritten, premises = attempt
                found.append(_Step(rewritten, _node_path(prefix, node), premises))
                return rewritten
        children = node.children()
        if not children:
            return node
        child_insulated = insulated or isinstance(
            node, (Project, GroupApply, Apply)
        )
        rebuilt = tuple(
            recurse(child, f"{prefix}.{index}", child_insulated)
            for index, child in enumerate(children)
        )
        if all(new is old for new, old in zip(rebuilt, children)):
            return node
        return _with_children(node, rebuilt)

    new_plan = recurse(plan, "$", False)
    if not found:
        return None
    step = found[0]
    return _Step(new_plan, step.path, step.premises)


# ---------------------------------------------------------------------------
# projection pruning
# ---------------------------------------------------------------------------


def _resolve_names(
    names: Iterable[str], schema: PlanSchema
) -> Optional[Set[str]]:
    """Resolve each name against ``schema``; ``None`` when any fails."""
    resolved: Set[str] = set()
    for name in names:
        try:
            info = schema.resolve(name)
        except AmbiguousColumn:
            return None
        if info is None:
            return None
        resolved.add(info.name)
    return resolved


def _expression_names(expression: Optional[Expression]) -> List[str]:
    if expression is None:
        return []
    return [ref.qualified for ref in column_refs(expression)]


@dataclass
class _PruneState:
    schemas: Dict[int, PlanSchema]
    notes: List[Tuple[str, str]] = field(default_factory=list)


def _prune_plan(plan: PlanNode, database: Database) -> Optional[_Step]:
    """One pruning pass over the whole plan; ``None`` when nothing changed."""
    try:
        schemas = infer_schemas(plan, database)
    except Exception:
        return None
    state = _PruneState(schemas)

    def names_of(node: PlanNode) -> Tuple[str, ...]:
        return tuple(column.name for column in state.schemas[id(node)].columns)

    def schema_of(node: PlanNode) -> PlanSchema:
        return state.schemas[id(node)]

    def widen(live: Optional[Set[str]], extra: Optional[Set[str]]) -> Optional[Set[str]]:
        if live is None or extra is None:
            return None
        return live | extra

    def guard(pruned: PlanNode, original: PlanNode, live: Optional[Set[str]], prefix: str) -> PlanNode:
        """Insert a narrowing ``π`` below a wide operator when live ⊊ schema."""
        if live is None:
            return pruned
        if isinstance(original, Project) and not original.distinct:
            return pruned  # recurse() already narrowed the projection itself
        names = names_of(original)
        kept = tuple(name for name in names if name in live)
        if not kept or len(kept) == len(names):
            return pruned
        dropped = tuple(name for name in names if name not in live)
        state.notes.append(
            (
                "pruned",
                f"{_node_path(prefix, original)}: kept [{', '.join(kept)}];"
                f" dropped [{', '.join(dropped)}]",
            )
        )
        return Project(pruned, kept)

    def recurse(node: PlanNode, live: Optional[Set[str]], prefix: str) -> PlanNode:
        if isinstance(node, Relation):
            return node
        if isinstance(node, Select):
            need = widen(live, _resolve_names(_expression_names(node.condition), schema_of(node.child)))
            child = recurse(node.child, need, f"{prefix}.0")
            return node if child is node.child else Select(child, node.condition)
        if isinstance(node, Sort):
            need = widen(live, _resolve_names(node.columns, schema_of(node.child)))
            child = recurse(node.child, need, f"{prefix}.0")
            return (
                node
                if child is node.child
                else Sort(child, node.columns, node.descending)
            )
        if isinstance(node, Project):
            columns = node.columns
            if live is not None and not node.distinct:
                names = names_of(node)
                narrowed = tuple(
                    column
                    for column, name in zip(node.columns, names)
                    if name in live
                )
                if narrowed and len(narrowed) < len(columns):
                    columns = narrowed
                    state.notes.append(
                        (
                            "narrowed",
                            f"{_node_path(prefix, node)}: kept"
                            f" [{', '.join(columns)}]",
                        )
                    )
            need = _resolve_names(columns, schema_of(node.child))
            child = recurse(node.child, need, f"{prefix}.0")
            if child is node.child and columns == node.columns:
                return node
            return Project(child, columns, node.distinct)
        if isinstance(node, (Join, Product)):
            needed: Optional[Set[str]]
            if live is None:
                needed = None
            else:
                needed = set(live)
                if isinstance(node, Join) and node.condition is not None:
                    needed = widen(
                        needed,
                        _resolve_names(
                            _expression_names(node.condition), schema_of(node)
                        ),
                    )
            left_names = names_of(node.left)
            right_names = names_of(node.right)
            combined = list(left_names) + list(right_names)
            if needed is not None and len(set(combined)) != len(combined):
                needed = None  # duplicate output names: side split is unsafe
            left_live = (
                None if needed is None else {n for n in left_names if n in needed}
            )
            right_live = (
                None if needed is None else {n for n in right_names if n in needed}
            )
            left = guard(
                recurse(node.left, left_live, f"{prefix}.0"),
                node.left,
                left_live,
                f"{prefix}.0",
            )
            right = guard(
                recurse(node.right, right_live, f"{prefix}.1"),
                node.right,
                right_live,
                f"{prefix}.1",
            )
            if left is node.left and right is node.right:
                return node
            if isinstance(node, Join):
                return Join(left, right, node.condition)
            return Product(left, right)
        if isinstance(node, GroupApply):
            needs = list(node.grouping_columns)
            for spec in node.aggregates:
                needs.extend(_expression_names(spec.expression))
            child_live = _resolve_names(needs, schema_of(node.child))
            child = guard(
                recurse(node.child, child_live, f"{prefix}.0"),
                node.child,
                child_live,
                f"{prefix}.0",
            )
            if child is node.child:
                return node
            return GroupApply(child, node.grouping_columns, node.aggregates)
        if isinstance(node, Group):
            need = widen(
                live, _resolve_names(node.grouping_columns, schema_of(node.child))
            )
            child = recurse(node.child, need, f"{prefix}.0")
            return node if child is node.child else Group(child, node.grouping_columns)
        if isinstance(node, Apply):
            child = recurse(node.child, None, f"{prefix}.0")
            return node if child is node.child else Apply(child, node.aggregates)
        return node

    new_plan = recurse(plan, None, "$")
    if new_plan == plan:
        return None
    premises = tuple(state.notes) or (("pruned", "(no columns dropped)"),)
    return _Step(new_plan, _node_path("$", plan), premises)


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------


def apply_rewrites(
    plan: PlanNode,
    database: Database,
    rewrites: object = REWRITE_RULES,
    *,
    statistics=None,
    join_algorithm: str = "hash",
    verify: bool = True,
    max_steps: int = 16,
) -> RewriteOutcome:
    """Apply the enabled certified rewrites to ``plan``.

    The plan is fused first (``Apply ∘ Group`` → ``F G``) so the rules see
    the canonical shape.  Rules run in :data:`REWRITE_RULES` order; each
    site rewritten yields one :class:`RuleCertificate` carrying full
    before/after plans.  With ``verify=True`` (the default) every
    certificate is re-checked by the independent equivalence checker and a
    failure raises :class:`~repro.errors.TransformationError` — a bug in
    the rewriter can never silently alter query results.
    """
    enabled = normalize_rewrites(rewrites)
    original = plan
    current = fuse_group_apply(plan)
    certificates: List[RuleCertificate] = []

    def record(rule: str, step: _Step, before: PlanNode) -> None:
        certificates.append(
            RuleCertificate(rule, step.path, before, step.plan, step.premises)
        )

    if "predicate_pushdown" in enabled:
        for _ in range(max_steps):
            step = _find_pushdown(current, database)
            if step is None:
                break
            record("predicate_pushdown", step, current)
            current = step.plan

    if "join_reordering" in enabled:
        from repro.optimizer.cardinality import CardinalityEstimator
        from repro.optimizer.cost import CostModel

        try:
            estimator = CardinalityEstimator(database, statistics)
            cost_model = CostModel(estimator, join_algorithm=join_algorithm)
        except Exception:
            estimator = cost_model = None
        if estimator is not None:
            for _ in range(max_steps):
                step = _find_reorder(current, database, estimator, cost_model)
                if step is None:
                    break
                record("join_reordering", step, current)
                current = step.plan

    if "projection_pruning" in enabled:
        step = _prune_plan(current, database)
        if step is not None:
            record("projection_pruning", step, current)
            current = step.plan

    if verify and certificates:
        from repro.analysis.diagnostics import Severity, render_diagnostics
        from repro.analysis.equivalence import verify_rewrite

        problems = [
            diagnostic
            for certificate in certificates
            for diagnostic in verify_rewrite(database, certificate)
            if diagnostic.severity >= Severity.ERROR
        ]
        if problems:
            raise TransformationError(
                "certified rewrite failed its own audit:\n"
                + render_diagnostics(problems)
            )

    if current is not original:
        eager = get_certificate(original)
        if eager is not None and get_certificate(current) is None:
            attach_certificate(current, eager)
    object.__setattr__(current, _APPLIED_ATTR, enabled)
    return RewriteOutcome(current, tuple(certificates))
