"""Equi-depth histograms for range-selectivity estimation.

The classic System-R constants (1/3 for a range predicate) are blind to
skew; an equi-depth histogram splits a column's sorted values into buckets
of (nearly) equal row count and interpolates inside the boundary bucket.
The estimator consults histograms for ``col op constant`` range predicates
and BETWEEN; everything else keeps the default constants.

This is an *extension* beyond the paper (Section 7 presupposes "estimated
cost" without a model); the ablation bench quantifies what it buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sqltypes.values import is_null


@dataclass(frozen=True)
class Histogram:
    """An equi-depth histogram over one numeric (or orderable) column.

    ``boundaries`` has one more entry than there are buckets; bucket ``i``
    covers ``[boundaries[i], boundaries[i+1]]`` and holds ``counts[i]``
    rows.  ``null_count`` rows hold NULL and fall in no bucket.
    """

    boundaries: Tuple[float, ...]
    counts: Tuple[int, ...]
    null_count: int

    @property
    def total(self) -> int:
        return sum(self.counts) + self.null_count

    @classmethod
    def build(cls, values: Sequence[object], buckets: int = 10) -> Optional["Histogram"]:
        """Build from raw column values; None when nothing is orderable."""
        numeric: List[float] = []
        nulls = 0
        for value in values:
            if is_null(value):
                nulls += 1
            elif isinstance(value, bool):
                return None  # booleans: histograms add nothing
            elif isinstance(value, (int, float)):
                numeric.append(float(value))
            else:
                return None  # non-numeric column: skip
        if not numeric:
            return None
        numeric.sort()
        n = len(numeric)
        buckets = max(1, min(buckets, n))
        boundaries: List[float] = [numeric[0]]
        counts: List[int] = []
        start = 0
        for i in range(1, buckets + 1):
            end = round(i * n / buckets)
            end = max(end, start + 1)
            end = min(end, n)
            counts.append(end - start)
            boundaries.append(numeric[end - 1])
            start = end
            if start >= n:
                break
        return cls(tuple(boundaries), tuple(counts), nulls)

    # -- selectivities (fractions of the *total* rows, NULLs never match) --

    def _non_null_fraction_le(self, value: float) -> float:
        """Fraction of non-NULL rows with column <= value."""
        if value < self.boundaries[0]:
            return 0.0
        if value >= self.boundaries[-1]:
            return 1.0
        non_null = sum(self.counts)
        covered = 0.0
        for i, count in enumerate(self.counts):
            low = self.boundaries[i]
            high = self.boundaries[i + 1]
            if value >= high:
                covered += count
                continue
            if value < low:
                break
            width = high - low
            fraction = 1.0 if width == 0 else (value - low) / width
            covered += count * fraction
            break
        return covered / non_null if non_null else 0.0

    def selectivity_le(self, value: float) -> float:
        non_null = sum(self.counts)
        if self.total == 0:
            return 0.0
        return self._non_null_fraction_le(value) * non_null / self.total

    def selectivity_lt(self, value: float) -> float:
        # Continuous approximation: < and <= coincide.
        return self.selectivity_le(value)

    def selectivity_ge(self, value: float) -> float:
        non_null = sum(self.counts)
        if self.total == 0:
            return 0.0
        return (1.0 - self._non_null_fraction_le(value)) * non_null / self.total

    def selectivity_gt(self, value: float) -> float:
        return self.selectivity_ge(value)

    def selectivity_between(self, low: float, high: float) -> float:
        if high < low:
            return 0.0
        non_null = sum(self.counts)
        if self.total == 0:
            return 0.0
        span = self._non_null_fraction_le(high) - self._non_null_fraction_le(low)
        return max(0.0, span) * non_null / self.total

    def __repr__(self) -> str:
        return (
            f"Histogram({len(self.counts)} buckets, "
            f"range [{self.boundaries[0]}, {self.boundaries[-1]}], "
            f"{self.total} rows, {self.null_count} NULL)"
        )
