"""Distribution planning: where to put the Exchange, and what to ship.

Section 7's argument, as a planning decision: on a partitioned table, a
group-by that sits directly on the scan side can run *below* the wire, so
each shard ships one row per (local) group instead of its whole partition.
:func:`distribute_plan` makes that choice with the communication-aware
cost model — it prices the **two-phase** plan (partial aggregation below
the Exchange, global merge above it) against the **ship-all** plan (the
bare scan region crosses the wire, the aggregate runs at the coordinator)
and keeps whichever the :class:`~repro.optimizer.cost.NetworkWeights`
term says is cheaper.  Eager plans are exactly where two-phase shines:
their below-join GroupApply already sits on a single-table region, so the
planner's eager/standard choice composes with the shard choice the way
the paper's distributed remark predicts.

Every wrap emits a ``shard_exchange`` :class:`RuleCertificate` (rule R704)
and self-audits through the independent equivalence checker before the
plan is allowed to run: the checker re-derives the shard-union premise
(linear single-table region below the wire) and, for two-phase, the
exact-decomposability of the aggregates (integer SUM/AVG only — float
partial sums would reassociate).  A failed audit raises rather than
executing an unproven plan.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.algebra.ops import (
    Exchange,
    GroupApply,
    PlanNode,
    Relation,
    Select,
    _with_children,
)
from repro.catalog.catalog import Database
from repro.errors import TransformationError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel, NetworkWeights, exchange_mode_factor
from repro.storage.partition import PartitionSpec

#: Attribute carrying the shard_exchange certificate on a distributed root.
_CERT_ATTR = "_distribution_certificate"


def distribution_certificate(plan: PlanNode):
    """The R704 certificate attached to a distributed plan root, if any."""
    return getattr(plan, _CERT_ATTR, None)


def _chain_relation(plan: PlanNode) -> Optional[Relation]:
    cursor = plan
    while isinstance(cursor, Select):
        cursor = cursor.child
    return cursor if isinstance(cursor, Relation) else None


class _Site:
    """One distributable region: a scan chain, maybe under a GroupApply."""

    __slots__ = ("group", "chain", "relation")

    def __init__(
        self, group: Optional[GroupApply], chain: PlanNode, relation: Relation
    ):
        self.group = group
        self.chain = chain
        self.relation = relation


def _find_sites(plan: PlanNode) -> List[_Site]:
    """All maximal Relation/Select* regions, tagged with a direct GroupApply
    parent when one exists (the two-phase opportunity)."""
    sites: List[_Site] = []

    def recurse(node: PlanNode, parent: Optional[PlanNode]) -> None:
        if isinstance(node, GroupApply):
            relation = _chain_relation(node.child)
            if relation is not None:
                sites.append(_Site(node, node.child, relation))
                return
        if not isinstance(parent, (Select, GroupApply)):
            relation = _chain_relation(node)
            if relation is not None:
                sites.append(_Site(None, node, relation))
                return
        for child in node.children():
            recurse(child, node)

    recurse(plan, None)
    return sites


def _replace(plan: PlanNode, target: PlanNode, replacement: PlanNode) -> PlanNode:
    if plan is target:
        return replacement
    children = plan.children()
    if not children:
        return plan
    rebuilt = tuple(_replace(child, target, replacement) for child in children)
    if all(new is old for new, old in zip(rebuilt, children)):
        return plan
    return _with_children(plan, rebuilt)


def _exchange_keys(
    relation: Relation, method: str, database: Database
) -> Tuple[str, ...]:
    """Partition on the catalog-declared column when it fits the method."""
    declared = database.partitioning.get(relation.table_name)
    if isinstance(declared, PartitionSpec) and declared.column is not None:
        if declared.method == method:
            return (f"{relation.correlation}.{declared.column}",)
    return ()


def distribute_plan(plan: PlanNode, database: Database, config) -> PlanNode:
    """Wrap the best scan region of ``plan`` in an Exchange, cost-based.

    Picks the region over the largest estimated base table (preferring
    tables with a declared partitioning), builds the two-phase candidate
    when the region's GroupApply decomposes exactly, prices both candidates
    with the network-aware cost model, certifies the winner (R704), and
    returns the rewritten plan.  Returns ``plan`` unchanged when nothing is
    distributable.
    """
    sites = _find_sites(plan)
    if not sites:
        return plan
    estimator = CardinalityEstimator(database)
    declared = [
        site for site in sites
        if database.partitioning.get(site.relation.table_name) is not None
    ]
    pool = declared or sites
    site = max(pool, key=lambda s: estimator.rows(s.relation))

    mode = config.exchange if config.exchange in (
        "gather", "shuffle", "broadcast"
    ) else "gather"
    method = config.partitioning
    shards = config.shards
    keys = _exchange_keys(site.relation, method, database)

    # On the socket transport the communication term gains a per-site
    # latency charge from the pool's measured heartbeat RTTs (one RTT is
    # one tuple_cpu-second's worth of CPU units, scaled coarsely; 0 when
    # no pool has run yet or the wire is in-memory).  The charge is
    # ``shards x latency`` for *every* Exchange candidate, so it shifts
    # distributed totals against single-site without flipping the
    # ship-all vs two-phase choice.
    latency_weight = 0.0
    if getattr(config, "transport", "memory") == "socket":
        from repro.engine.shardrpc import active_pool

        live = active_pool()
        if live is not None:
            latency_weight = live.measured_latency() * 1_000_000.0

    model = CostModel(
        estimator,
        join_algorithm=(
            "hash" if config.join_algorithm == "auto" else config.join_algorithm
        ),
        engine=config.engine,
        network=NetworkWeights(per_site_latency=latency_weight),
    )

    candidates: List[Tuple[float, PlanNode, PlanNode, Exchange, str]] = []
    ship_all = Exchange(site.chain, mode, shards, method, keys, False)
    ship_all_plan = _replace(plan, site.chain, ship_all)
    candidates.append(
        (model.cost(ship_all_plan).total, ship_all_plan, site.chain, ship_all,
         "ship-all")
    )
    if site.group is not None:
        from repro.analysis.equivalence import exact_decomposition_reason

        if exact_decomposition_reason(site.group, database) is None:
            two_phase = Exchange(site.group, mode, shards, method, keys, True)
            two_phase_plan = _replace(plan, site.group, two_phase)
            candidates.append(
                (model.cost(two_phase_plan).total, two_phase_plan, site.group,
                 two_phase, "two-phase")
            )

    cost, chosen_plan, replaced, exchange, strategy = min(
        candidates, key=lambda item: item[0]
    )
    estimated_shipped = estimator.rows(exchange.child) * exchange_mode_factor(
        exchange.mode, exchange.shards
    )

    from repro.optimizer.rewrites import RuleCertificate

    premises: List[Tuple[str, str]] = [
        ("strategy", strategy),
        ("shards", str(exchange.shards)),
        ("mode", exchange.mode),
        ("partitioning", exchange.partitioning),
        ("keys", ", ".join(exchange.keys) or "(rowid)"),
        ("estimated-shipped-rows", f"{estimated_shipped:.6f}"),
        ("cost", f"{cost:.6f}"),
        ("transport", getattr(config, "transport", "memory")),
        ("per-site-latency", f"{latency_weight:.6f}"),
    ]
    if strategy == "two-phase":
        premises.append(
            (
                "partial-merge",
                "aggregates decompose exactly; merge restores one-phase "
                "values and order via the MIN(RowID) ordinal",
            )
        )
    certificate = RuleCertificate(
        "shard_exchange", "$", plan, chosen_plan, tuple(premises)
    )

    from repro.analysis.diagnostics import Severity, render_diagnostics
    from repro.analysis.equivalence import verify_rewrite

    problems = [
        diagnostic
        for diagnostic in verify_rewrite(database, certificate)
        if diagnostic.severity >= Severity.ERROR
    ]
    if problems:
        raise TransformationError(
            "shard exchange failed its R704 audit:\n"
            + render_diagnostics(problems)
        )

    if chosen_plan is not plan:
        # Carry root-attached evidence (eager certificate, rewrite marker)
        # over to the rebuilt root, as apply_rewrites does.
        from repro.analysis.certificates import attach_certificate, get_certificate
        from repro.optimizer.rewrites import _APPLIED_ATTR, rewrites_applied

        eager = get_certificate(plan)
        if eager is not None and get_certificate(chosen_plan) is None:
            attach_certificate(chosen_plan, eager)
        applied = rewrites_applied(plan)
        if applied is not None:
            object.__setattr__(chosen_plan, _APPLIED_ATTR, applied)
    object.__setattr__(chosen_plan, _CERT_ATTR, certificate)
    return chosen_plan
