"""The planner: choose between the standard (E1) and eager (E2) plans.

Section 7: "Ultimately, the choice is determined by the estimated cost of
the two plans."  The planner

1. checks validity with TestFD (invalid ⇒ standard plan, no choice);
2. builds both plans, costs them with the cardinality-driven model;
3. returns the cheaper one, with the full decision record.

Policies ``always_eager`` / ``never_eager`` exist for the ablation bench
(what would a heuristic-only optimizer lose?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algebra.ops import PlanNode
from repro.catalog.catalog import Database
from repro.core.query_class import GroupByJoinQuery
from repro.core.transform import (
    TransformationDecision,
    build_eager_plan,
    build_standard_plan,
    check_transformable,
)
from repro.errors import PlanningError
from repro.optimizer.cardinality import CardinalityEstimator, Statistics
from repro.optimizer.cost import CostModel, CostWeights

POLICIES = ("cost", "always_eager", "never_eager")


@dataclass
class PlanChoice:
    """The planner's verdict for one query."""

    plan: PlanNode
    strategy: str  # "eager" or "standard"
    standard_cost: float
    eager_cost: Optional[float]  # None when the transformation is invalid
    decision: TransformationDecision

    @property
    def speedup(self) -> Optional[float]:
        """Estimated standard/eager cost ratio (>1 means eager wins)."""
        if self.eager_cost is None or self.eager_cost == 0:
            return None
        return self.standard_cost / self.eager_cost


class Planner:
    """Cost-based eager/standard plan selection."""

    def __init__(
        self,
        database: Database,
        statistics: Optional[Statistics] = None,
        weights: CostWeights = CostWeights(),
        join_algorithm: str = "hash",
        policy: str = "cost",
        assume_unique_keys: bool = False,
        engine: str = "row",
        workers: int = 1,
    ) -> None:
        if policy not in POLICIES:
            raise PlanningError(f"unknown policy {policy!r}; pick one of {POLICIES}")
        from repro.engine.vector.parallel import resolve_workers

        self.database = database
        self.estimator = CardinalityEstimator(database, statistics)
        # workers=0 is the auto sentinel: cost plans with the autotuned
        # effective count, the same number the morsel driver will use.
        self.cost_model = CostModel(
            self.estimator, weights, join_algorithm, engine,
            resolve_workers(workers),
        )
        self.policy = policy
        self.assume_unique_keys = assume_unique_keys

    def choose(self, query: GroupByJoinQuery) -> PlanChoice:
        """Pick a plan for ``query`` under the configured policy.

        An aggregate-free HAVING is first folded into WHERE
        (:func:`repro.core.transform.normalize_having`), which can re-admit
        the query to the transformable class.
        """
        from repro.core.transform import normalize_having

        query = normalize_having(query)
        standard = build_standard_plan(query)
        standard_cost = self.cost_model.cost(standard).total
        decision = check_transformable(
            self.database, query, assume_unique_keys=self.assume_unique_keys
        )
        if not decision.valid:
            return PlanChoice(standard, "standard", standard_cost, None, decision)

        eager = build_eager_plan(query)
        eager_cost = self.cost_model.cost(eager).total
        self._certify(eager, query, decision)

        if self.policy == "always_eager":
            return PlanChoice(eager, "eager", standard_cost, eager_cost, decision)
        if self.policy == "never_eager":
            return PlanChoice(standard, "standard", standard_cost, eager_cost, decision)
        if eager_cost < standard_cost:
            return PlanChoice(eager, "eager", standard_cost, eager_cost, decision)
        return PlanChoice(standard, "standard", standard_cost, eager_cost, decision)

    def _certify(
        self,
        eager: PlanNode,
        query: GroupByJoinQuery,
        decision: TransformationDecision,
    ) -> None:
        """Attach the FD1/FD2 rewrite certificate to a valid eager plan.

        The certificate is what licenses the plan's below-join aggregation
        to the static verifier (rule G103) and what ``explain --certify``
        renders.  Lazy import: :mod:`repro.analysis` imports the plan
        builders from :mod:`repro.core.transform`.
        """
        from repro.analysis.certificates import attach_certificate, issue_certificate

        if decision.testfd is not None:
            attach_certificate(
                eager,
                issue_certificate(
                    self.database, query, decision.testfd,
                    assume_unique_keys=self.assume_unique_keys,
                ),
            )
