"""Statement-level AST produced by the parser.

Expression-level nodes reuse :mod:`repro.expressions.ast` directly; only
statements need their own shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.expressions.ast import ColumnRef, Expression
from repro.sqltypes.values import SqlValue


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list entry: an expression and its optional alias."""

    expression: Expression
    alias: str = ""


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause entry: table (or view) name plus correlation name."""

    name: str
    alias: str = ""

    @property
    def correlation(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: a column (or SELECT alias) and a direction."""

    column: ColumnRef
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    distinct: bool
    items: Tuple[SelectItem, ...]
    from_tables: Tuple[TableRef, ...]
    where: Optional[Expression]
    group_by: Tuple[ColumnRef, ...]
    having: Optional[Expression]
    order_by: Tuple[OrderItem, ...]

    def __init__(
        self,
        distinct: bool,
        items: Sequence[SelectItem],
        from_tables: Sequence[TableRef],
        where: Optional[Expression],
        group_by: Sequence[ColumnRef] = (),
        having: Optional[Expression] = None,
        order_by: Sequence[OrderItem] = (),
    ) -> None:
        object.__setattr__(self, "distinct", distinct)
        object.__setattr__(self, "items", tuple(items))
        object.__setattr__(self, "from_tables", tuple(from_tables))
        object.__setattr__(self, "where", where)
        object.__setattr__(self, "group_by", tuple(group_by))
        object.__setattr__(self, "having", having)
        object.__setattr__(self, "order_by", tuple(order_by))


@dataclass(frozen=True)
class SetOperationStatement:
    """``left UNION/EXCEPT/INTERSECT [ALL] right``, left-associative.

    ``left``/``right`` are :class:`SelectStatement` or nested
    :class:`SetOperationStatement`.  A trailing ORDER BY applies to the
    whole chain.
    """

    left: object
    operator: str  # "union" | "except" | "intersect"
    all_rows: bool
    right: object
    order_by: Tuple[OrderItem, ...] = ()


@dataclass(frozen=True)
class ColumnDefinition:
    name: str
    type_name: str
    type_params: Tuple[int, ...] = ()
    not_null: bool = False
    unique: bool = False
    primary_key: bool = False
    check: Optional[Expression] = None
    references: Optional[Tuple[str, Tuple[str, ...]]] = None  # (table, cols)


@dataclass(frozen=True)
class TableConstraintDef:
    """A table-level constraint clause."""

    kind: str  # "primary_key" | "unique" | "check" | "foreign_key"
    columns: Tuple[str, ...] = ()
    check: Optional[Expression] = None
    references: Optional[Tuple[str, Tuple[str, ...]]] = None


@dataclass(frozen=True)
class CreateTableStatement:
    name: str
    columns: Tuple[ColumnDefinition, ...]
    constraints: Tuple[TableConstraintDef, ...]


@dataclass(frozen=True)
class CreateDomainStatement:
    name: str
    type_name: str
    type_params: Tuple[int, ...] = ()
    check: Optional[Expression] = None


@dataclass(frozen=True)
class CreateViewStatement:
    name: str
    column_names: Tuple[str, ...]
    select: SelectStatement


@dataclass(frozen=True)
class CreateAssertionStatement:
    name: str
    check: Expression


@dataclass(frozen=True)
class DeleteStatement:
    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class UpdateStatement:
    table: str
    assignments: Tuple[Tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class InsertStatement:
    table: str
    columns: Tuple[str, ...]  # empty = positional
    rows: Tuple[Tuple[SqlValue, ...], ...]


Statement = object  # union of the dataclasses above
