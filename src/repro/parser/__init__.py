"""SQL parsing: lexer, statement AST, recursive-descent parser, binder."""

from repro.parser.ast_nodes import (
    ColumnDefinition,
    CreateAssertionStatement,
    CreateDomainStatement,
    CreateTableStatement,
    CreateViewStatement,
    InsertStatement,
    SelectItem,
    SelectStatement,
    TableConstraintDef,
    TableRef,
)
from repro.parser.binder import NameResolver, bind_select, execute_statement
from repro.parser.lexer import tokenize
from repro.parser.parser import Parser, parse_script, parse_statement

__all__ = [
    "ColumnDefinition", "CreateAssertionStatement", "CreateDomainStatement",
    "CreateTableStatement", "CreateViewStatement", "InsertStatement",
    "SelectItem", "SelectStatement", "TableConstraintDef", "TableRef",
    "NameResolver", "bind_select", "execute_statement",
    "tokenize", "Parser", "parse_script", "parse_statement",
]
