"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class TokenType(enum.Enum):
    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"     # = <> < <= > >= + - * /
    PUNCTUATION = "punct"     # ( ) , . ;
    HOST_VARIABLE = "hostvar" # :name
    EOF = "eof"


#: Reserved words recognized by the parser (SQL2 subset used in the paper).
KEYWORDS = frozenset(
    {
        "ALL", "AND", "AS", "ASC", "ASSERTION", "AVG", "BETWEEN", "BOOLEAN",
        "BY", "CHAR", "CHARACTER", "CHECK", "COUNT", "CREATE", "DATE",
        "DECIMAL", "DELETE", "DESC", "DISTINCT", "DOMAIN", "DROP", "FALSE", "FLOAT",
        "EXCEPT", "FOREIGN", "FROM", "GROUP", "HAVING", "IN", "INSERT", "INT",
        "INTEGER", "INTERSECT", "INTO", "IS", "KEY", "LIKE", "MAX", "MIN", "NOT", "NULL",
        "NUMERIC", "ON", "OR", "ORDER", "PRIMARY", "REAL", "REFERENCES",
        "SELECT", "SET", "SMALLINT", "SUM", "TABLE", "TRUE", "UNION", "UNIQUE", "UPDATE", "VALUE",
        "VALUES", "VARCHAR", "VIEW", "WHERE",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    text: str
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in words

    def __str__(self) -> str:
        return f"{self.type.value}:{self.text!r}@{self.line}:{self.column}"
