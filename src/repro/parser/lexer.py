"""Hand-written SQL lexer.

Produces a stream of :class:`~repro.parser.tokens.Token`.  Identifiers are
case-preserved; keyword recognition is case-insensitive (the token text is
upper-cased for keywords).  Strings use SQL single quotes with ``''``
escaping.  ``--`` starts a line comment.
"""

from __future__ import annotations

from typing import List

from repro.errors import ParseError
from repro.parser.tokens import KEYWORDS, Token, TokenType

_TWO_CHAR_OPERATORS = ("<>", "<=", ">=")
_ONE_CHAR_OPERATORS = "=<>+-*/"
_PUNCTUATION = "(),.;"


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens (terminated by an EOF token)."""
    tokens: List[Token] = []
    i = 0
    line = 1
    column = 1
    n = len(text)

    def advance(count: int = 1) -> None:
        nonlocal i, line, column
        for __ in range(count):
            if i < n and text[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance()
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                advance()
            continue

        start_line, start_column = line, column

        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start_line, start_column))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start_line, start_column))
            advance(j - i)
            continue

        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            is_float = False
            if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
            token_type = TokenType.FLOAT if is_float else TokenType.INTEGER
            tokens.append(Token(token_type, text[i:j], start_line, start_column))
            advance(j - i)
            continue

        if ch == "'":
            j = i + 1
            pieces: List[str] = []
            while True:
                if j >= n:
                    raise ParseError("unterminated string literal", start_line, start_column)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        pieces.append("'")
                        j += 2
                        continue
                    break
                pieces.append(text[j])
                j += 1
            tokens.append(
                Token(TokenType.STRING, "".join(pieces), start_line, start_column)
            )
            advance(j + 1 - i)
            continue

        if ch == ":":
            j = i + 1
            if j >= n or not (text[j].isalpha() or text[j] == "_"):
                raise ParseError("expected name after ':'", start_line, start_column)
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(
                Token(TokenType.HOST_VARIABLE, text[i + 1 : j], start_line, start_column)
            )
            advance(j - i)
            continue

        two = text[i : i + 2]
        if two in _TWO_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, two, start_line, start_column))
            advance(2)
            continue
        if ch in _ONE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, ch, start_line, start_column))
            advance()
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, start_line, start_column))
            advance()
            continue

        raise ParseError(f"unexpected character {ch!r}", start_line, start_column)

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
