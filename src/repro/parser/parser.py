"""Recursive-descent SQL parser for the paper's query class plus DDL.

Grammar (informal)::

    statement      := select | create_table | create_domain | create_view
                    | create_assertion | insert
    select         := SELECT [ALL|DISTINCT] item ("," item)*
                      FROM table_ref ("," table_ref)*
                      [WHERE expr] [GROUP BY column ("," column)*]
                      [HAVING expr]
    item           := expr [[AS] name] | "*"
    expr           := or_expr
    or_expr        := and_expr (OR and_expr)*
    and_expr       := not_expr (AND not_expr)*
    not_expr       := NOT not_expr | predicate
    predicate      := additive [compop additive | IS [NOT] NULL]
    additive       := term (("+"|"-") term)*
    term           := factor (("*"|"/") factor)*
    factor         := "-" factor | primary
    primary        := literal | hostvar | aggregate | column | "(" expr ")"

``CHECK`` accepts both parenthesized and bare conditions — the paper's
Figure 5 writes ``CHECK VALUE > 0 AND VALUE < 100`` without parentheses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.expressions.ast import (
    Aggregate,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    HostVariable,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
)
from repro.parser.ast_nodes import (
    ColumnDefinition,
    CreateAssertionStatement,
    CreateDomainStatement,
    CreateTableStatement,
    CreateViewStatement,
    DeleteStatement,
    InsertStatement,
    OrderItem,
    SelectItem,
    SelectStatement,
    SetOperationStatement,
    TableConstraintDef,
    TableRef,
    UpdateStatement,
)
from repro.parser.lexer import tokenize
from repro.parser.tokens import Token, TokenType
from repro.sqltypes.values import NULL

_TYPE_KEYWORDS = (
    "INTEGER", "INT", "SMALLINT", "FLOAT", "REAL", "BOOLEAN", "DATE",
    "CHAR", "CHARACTER", "VARCHAR", "DECIMAL", "NUMERIC",
)
_AGGREGATE_KEYWORDS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


class Parser:
    """One-statement-at-a-time recursive descent parser."""

    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._position = 0

    # -- token plumbing ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.type is not TokenType.EOF:
            self._position += 1
        return token

    def _expect_keyword(self, *words: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*words):
            raise ParseError(
                f"expected {' or '.join(words)}, got {token.text!r}",
                token.line, token.column,
            )
        return self._advance()

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._peek().is_keyword(*words):
            return self._advance()
        return None

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if token.type is not TokenType.PUNCTUATION or token.text != text:
            raise ParseError(
                f"expected {text!r}, got {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _accept_punct(self, text: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCTUATION and token.text == text:
            self._advance()
            return True
        return False

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            return self._advance().text
        # SQL allows many keywords as identifiers in practice (e.g. a column
        # named "Usage"); accept non-structural keywords here.
        if token.type is TokenType.KEYWORD and token.text in ("VALUE", "KEY", "DATE"):
            return self._advance().text
        raise ParseError(
            f"expected identifier, got {token.text!r}", token.line, token.column
        )

    # -- entry points ------------------------------------------------------

    def parse_statement(self):
        """Parse one statement; trailing ';' is consumed."""
        token = self._peek()
        if token.is_keyword("SELECT"):
            statement = self.parse_query()
        elif token.is_keyword("CREATE"):
            statement = self._parse_create()
        elif token.is_keyword("INSERT"):
            statement = self._parse_insert()
        elif token.is_keyword("DELETE"):
            statement = self._parse_delete()
        elif token.is_keyword("UPDATE"):
            statement = self._parse_update()
        else:
            raise ParseError(
                f"expected a statement, got {token.text!r}", token.line, token.column
            )
        self._accept_punct(";")
        return statement

    def parse_script(self) -> List[object]:
        """Parse statements until EOF."""
        statements: List[object] = []
        while self._peek().type is not TokenType.EOF:
            statements.append(self.parse_statement())
        return statements

    # -- SELECT -------------------------------------------------------------

    def parse_query(self):
        """A SELECT, possibly chained with UNION/EXCEPT/INTERSECT [ALL].

        Chains are left-associative.  An ORDER BY written after the last
        SELECT of a chain is hoisted to the whole set operation.
        """
        statement = self.parse_select()
        while self._peek().is_keyword("UNION", "EXCEPT", "INTERSECT"):
            operator = self._advance().text.lower()
            all_rows = bool(self._accept_keyword("ALL"))
            right = self.parse_select()
            order_by = ()
            if isinstance(right, SelectStatement) and right.order_by:
                order_by = right.order_by
                right = SelectStatement(
                    right.distinct, right.items, right.from_tables,
                    right.where, right.group_by, right.having, (),
                )
            statement = SetOperationStatement(
                statement, operator, all_rows, right, order_by
            )
        return statement

    def parse_select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")

        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())

        self._expect_keyword("FROM")
        from_tables = [self._parse_table_ref()]
        while self._accept_punct(","):
            from_tables.append(self._parse_table_ref())

        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()

        group_by: List[ColumnRef] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_column_ref())
            while self._accept_punct(","):
                group_by.append(self._parse_column_ref())

        having = None
        if self._accept_keyword("HAVING"):
            having = self.parse_expression()

        order_by: List[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())

        return SelectStatement(
            distinct, items, from_tables, where, group_by, having, order_by
        )

    def _parse_order_item(self) -> "OrderItem":
        column = self._parse_column_ref()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(column, descending)

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "*":
            self._advance()
            return SelectItem(ColumnRef("", "*"))
        expression = self.parse_expression()
        alias = ""
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().text
        return SelectItem(expression, alias)

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_identifier()
        alias = ""
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().text
        return TableRef(name, alias)

    def _parse_column_ref(self) -> ColumnRef:
        first = self._expect_identifier()
        if self._accept_punct("."):
            second = self._expect_identifier()
            return ColumnRef(first, second)
        return ColumnRef("", first)

    # -- expressions -----------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = And(left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text in (
            "=", "<>", "<", "<=", ">", ">=",
        ):
            op = self._advance().text
            right = self._parse_additive()
            return Comparison(op, left, right)
        if self._accept_keyword("IS"):
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return IsNull(left, negated)
        # [NOT] IN / BETWEEN / LIKE — NOT here binds to the predicate form,
        # not the whole expression.
        negated = False
        if self._peek().is_keyword("NOT") and self._peek(1).is_keyword(
            "IN", "BETWEEN", "LIKE"
        ):
            self._advance()
            negated = True
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            if self._peek().is_keyword("SELECT"):
                subquery = self.parse_select()
                self._expect_punct(")")
                return InSubquery(left, subquery, negated)
            items = [self.parse_expression()]
            while self._accept_punct(","):
                items.append(self.parse_expression())
            self._expect_punct(")")
            return InList(left, items, negated)
        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return Between(left, low, high, negated)
        if self._accept_keyword("LIKE"):
            pattern = self._peek()
            if pattern.type is not TokenType.STRING:
                raise ParseError(
                    "LIKE requires a string pattern", pattern.line, pattern.column
                )
            self._advance()
            return Like(left, pattern.text, negated)
        if negated:  # unreachable: NOT lookahead guaranteed a form above
            raise ParseError("dangling NOT", token.line, token.column)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_term()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text in ("+", "-"):
                op = self._advance().text
                left = Arithmetic(op, left, self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text in ("*", "/"):
                op = self._advance().text
                left = Arithmetic(op, left, self._parse_factor())
            else:
                return left

    def _parse_factor(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "-":
            self._advance()
            return Negate(self._parse_factor())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.INTEGER:
            self._advance()
            return Literal(int(token.text))
        if token.type is TokenType.FLOAT:
            self._advance()
            return Literal(float(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.text)
        if token.type is TokenType.HOST_VARIABLE:
            self._advance()
            return HostVariable(token.text)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(NULL)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.is_keyword(*_AGGREGATE_KEYWORDS):
            return self._parse_aggregate()
        if token.is_keyword("VALUE"):
            # The pseudo-column of domain CHECK constraints.
            self._advance()
            return ColumnRef("", "VALUE")
        if token.type is TokenType.PUNCTUATION and token.text == "(":
            self._advance()
            inner = self.parse_expression()
            self._expect_punct(")")
            return inner
        if token.type is TokenType.IDENTIFIER or token.is_keyword("KEY", "DATE"):
            return self._parse_column_ref()
        raise ParseError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )

    def _parse_aggregate(self) -> Aggregate:
        function = self._advance().text
        self._expect_punct("(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "*":
            self._advance()
            self._expect_punct(")")
            if function != "COUNT":
                raise ParseError(
                    f"{function}(*) is not valid SQL", token.line, token.column
                )
            return Aggregate("COUNT", None, distinct)
        argument = self.parse_expression()
        self._expect_punct(")")
        return Aggregate(function, argument, distinct)

    # -- DDL ----------------------------------------------------------------

    def _parse_create(self):
        self._expect_keyword("CREATE")
        token = self._peek()
        if token.is_keyword("TABLE"):
            return self._parse_create_table()
        if token.is_keyword("DOMAIN"):
            return self._parse_create_domain()
        if token.is_keyword("VIEW"):
            return self._parse_create_view()
        if token.is_keyword("ASSERTION"):
            return self._parse_create_assertion()
        raise ParseError(
            f"expected TABLE, DOMAIN, VIEW or ASSERTION, got {token.text!r}",
            token.line, token.column,
        )

    def _parse_type(self) -> Tuple[str, Tuple[int, ...]]:
        token = self._peek()
        if token.is_keyword(*_TYPE_KEYWORDS):
            self._advance()
            name = token.text
        elif token.type is TokenType.IDENTIFIER:
            # A domain name.
            self._advance()
            name = token.text
        else:
            raise ParseError(
                f"expected a type, got {token.text!r}", token.line, token.column
            )
        params: List[int] = []
        if self._accept_punct("("):
            while True:
                number = self._peek()
                if number.type is not TokenType.INTEGER:
                    raise ParseError(
                        "expected integer type parameter", number.line, number.column
                    )
                params.append(int(self._advance().text))
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
        return name, tuple(params)

    def _parse_check_condition(self) -> Expression:
        """CHECK (...) or the paper's bare CHECK condition."""
        if self._accept_punct("("):
            condition = self.parse_expression()
            self._expect_punct(")")
            return condition
        return self.parse_expression()

    def _parse_column_list(self) -> Tuple[str, ...]:
        self._expect_punct("(")
        columns = [self._expect_identifier()]
        while self._accept_punct(","):
            columns.append(self._expect_identifier())
        self._expect_punct(")")
        return tuple(columns)

    def _parse_create_table(self) -> CreateTableStatement:
        self._expect_keyword("TABLE")
        name = self._expect_identifier()
        self._expect_punct("(")
        columns: List[ColumnDefinition] = []
        constraints: List[TableConstraintDef] = []
        while True:
            token = self._peek()
            if token.is_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                constraints.append(
                    TableConstraintDef("primary_key", self._parse_column_list())
                )
            elif token.is_keyword("UNIQUE"):
                self._advance()
                constraints.append(
                    TableConstraintDef("unique", self._parse_column_list())
                )
            elif token.is_keyword("FOREIGN"):
                self._advance()
                self._expect_keyword("KEY")
                fk_columns = self._parse_column_list()
                self._expect_keyword("REFERENCES")
                ref_table = self._expect_identifier()
                ref_columns: Tuple[str, ...] = ()
                if self._peek().type is TokenType.PUNCTUATION and self._peek().text == "(":
                    ref_columns = self._parse_column_list()
                constraints.append(
                    TableConstraintDef(
                        "foreign_key", fk_columns, references=(ref_table, ref_columns)
                    )
                )
            elif token.is_keyword("CHECK"):
                self._advance()
                constraints.append(
                    TableConstraintDef("check", check=self._parse_check_condition())
                )
            else:
                columns.append(self._parse_column_definition())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return CreateTableStatement(name, tuple(columns), tuple(constraints))

    def _parse_column_definition(self) -> ColumnDefinition:
        name = self._expect_identifier()
        type_name, type_params = self._parse_type()
        not_null = unique = primary_key = False
        check: Optional[Expression] = None
        references: Optional[Tuple[str, Tuple[str, ...]]] = None
        while True:
            token = self._peek()
            if token.is_keyword("NOT"):
                self._advance()
                self._expect_keyword("NULL")
                not_null = True
            elif token.is_keyword("UNIQUE"):
                self._advance()
                unique = True
            elif token.is_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                primary_key = True
            elif token.is_keyword("CHECK"):
                self._advance()
                check = self._parse_check_condition()
            elif token.is_keyword("REFERENCES"):
                self._advance()
                ref_table = self._expect_identifier()
                ref_columns: Tuple[str, ...] = ()
                if self._peek().type is TokenType.PUNCTUATION and self._peek().text == "(":
                    ref_columns = self._parse_column_list()
                references = (ref_table, ref_columns)
            else:
                break
        return ColumnDefinition(
            name, type_name, type_params, not_null, unique, primary_key, check, references
        )

    def _parse_create_domain(self) -> CreateDomainStatement:
        self._expect_keyword("DOMAIN")
        name = self._expect_identifier()
        type_name, type_params = self._parse_type()
        check: Optional[Expression] = None
        if self._accept_keyword("CHECK"):
            check = self._parse_check_condition()
        return CreateDomainStatement(name, type_name, type_params, check)

    def _parse_create_view(self) -> CreateViewStatement:
        self._expect_keyword("VIEW")
        name = self._expect_identifier()
        column_names: Tuple[str, ...] = ()
        if self._peek().type is TokenType.PUNCTUATION and self._peek().text == "(":
            column_names = self._parse_column_list()
        self._expect_keyword("AS")
        select = self.parse_select()
        return CreateViewStatement(name, column_names, select)

    def _parse_create_assertion(self) -> CreateAssertionStatement:
        self._expect_keyword("ASSERTION")
        name = self._expect_identifier()
        self._expect_keyword("CHECK")
        return CreateAssertionStatement(name, self._parse_check_condition())

    # -- DELETE / UPDATE -----------------------------------------------------

    def _parse_delete(self) -> DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier()
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        return DeleteStatement(table, where)

    def _parse_update(self) -> UpdateStatement:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier()
        self._expect_keyword("SET")
        assignments: List[Tuple[str, Expression]] = []
        while True:
            column = self._expect_identifier()
            token = self._peek()
            if token.type is not TokenType.OPERATOR or token.text != "=":
                raise ParseError(
                    f"expected '=' in SET clause, got {token.text!r}",
                    token.line, token.column,
                )
            self._advance()
            assignments.append((column, self.parse_expression()))
            if not self._accept_punct(","):
                break
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        return UpdateStatement(table, tuple(assignments), where)

    # -- INSERT --------------------------------------------------------------

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier()
        columns: Tuple[str, ...] = ()
        if self._peek().type is TokenType.PUNCTUATION and self._peek().text == "(":
            columns = self._parse_column_list()
        self._expect_keyword("VALUES")
        rows = [self._parse_value_row()]
        while self._accept_punct(","):
            rows.append(self._parse_value_row())
        return InsertStatement(table, columns, tuple(rows))

    def _parse_value_row(self) -> Tuple[object, ...]:
        self._expect_punct("(")
        values: List[object] = [self._parse_literal_value()]
        while self._accept_punct(","):
            values.append(self._parse_literal_value())
        self._expect_punct(")")
        return tuple(values)

    def _parse_literal_value(self) -> object:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "-":
            self._advance()
            inner = self._parse_literal_value()
            return -inner  # type: ignore[operator]
        if token.type is TokenType.INTEGER:
            self._advance()
            return int(token.text)
        if token.type is TokenType.FLOAT:
            self._advance()
            return float(token.text)
        if token.type is TokenType.STRING:
            self._advance()
            return token.text
        if token.is_keyword("NULL"):
            self._advance()
            return NULL
        if token.is_keyword("TRUE"):
            self._advance()
            return True
        if token.is_keyword("FALSE"):
            self._advance()
            return False
        raise ParseError(
            f"expected a literal, got {token.text!r}", token.line, token.column
        )


def parse_statement(text: str):
    """Parse exactly one SQL statement."""
    parser = Parser(text)
    statement = parser.parse_statement()
    trailing = parser._peek()
    if trailing.type is not TokenType.EOF:
        raise ParseError(
            f"unexpected trailing input {trailing.text!r}",
            trailing.line, trailing.column,
        )
    return statement


def parse_script(text: str) -> List[object]:
    """Parse a ';'-separated sequence of statements."""
    return Parser(text).parse_script()
