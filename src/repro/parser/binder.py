"""Name resolution and statement execution against a database.

* :func:`bind_select` — resolve a parsed SELECT into a fully-qualified
  :class:`~repro.core.partition.FlatQuery` (every column reference carries
  its correlation name, SELECT items are split into grouping columns and
  aggregate specs, SQL2's "selection columns ⊆ grouping columns" rule is
  enforced).
* :func:`execute_statement` — apply DDL/INSERT statements to a
  :class:`~repro.catalog.catalog.Database`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algebra.ops import AggregateSpec
from repro.catalog.catalog import Database
from repro.catalog.constraints import (
    CheckConstraint,
    Domain,
    ForeignKeyConstraint,
    PrimaryKeyConstraint,
    UniqueConstraint,
)
from repro.catalog.schema import Column, TableSchema
from repro.core.partition import FlatQuery
from repro.errors import BindingError, CatalogError
from repro.expressions.ast import (
    Aggregate,
    ColumnRef,
    Expression,
    contains_aggregate,
)
from repro.fd.derivation import TableBinding
from repro.parser.ast_nodes import (
    CreateAssertionStatement,
    CreateDomainStatement,
    CreateTableStatement,
    CreateViewStatement,
    InsertStatement,
    SelectStatement,
    TableRef,
)
from repro.sqltypes.datatypes import type_from_name


class NameResolver:
    """Qualifies column references against the FROM-clause tables."""

    def __init__(self, database: Database, tables: Tuple[TableRef, ...]) -> None:
        self.database = database
        self.by_alias: Dict[str, TableRef] = {}
        self.columns_by_alias: Dict[str, Tuple[str, ...]] = {}
        for ref in tables:
            correlation = ref.correlation
            if correlation in self.by_alias:
                raise BindingError(f"duplicate correlation name {correlation}")
            self.by_alias[correlation] = ref
            schema = database.table(ref.name).schema
            self.columns_by_alias[correlation] = schema.column_names()

    def qualify(self, ref: ColumnRef) -> ColumnRef:
        if ref.table:
            if ref.table not in self.by_alias:
                raise BindingError(f"unknown correlation name {ref.table}")
            if ref.column not in self.columns_by_alias[ref.table]:
                raise BindingError(
                    f"table {self.by_alias[ref.table].name} (as {ref.table}) "
                    f"has no column {ref.column}"
                )
            return ref
        owners = [
            alias
            for alias, columns in self.columns_by_alias.items()
            if ref.column in columns
        ]
        if len(owners) == 1:
            return ColumnRef(owners[0], ref.column)
        if not owners:
            raise BindingError(f"unknown column {ref.column}")
        raise BindingError(
            f"ambiguous column {ref.column}: in {sorted(owners)}"
        )

    def qualify_expression(self, expression: Expression) -> Expression:
        from repro.expressions.ast import transform_expression

        def visit(node: Expression):
            if isinstance(node, ColumnRef):
                return self.qualify(node)
            return None

        return transform_expression(expression, visit)


def bind_select(database: Database, statement: SelectStatement) -> FlatQuery:
    """Resolve a grouped SELECT into a :class:`FlatQuery`.

    Views in the FROM clause are not handled here — see
    :mod:`repro.core.viewmerge` for the aggregated-view path (Section 8).
    """
    for ref in statement.from_tables:
        if ref.name in database.views:
            raise BindingError(
                f"{ref.name} is a view; use the view-merge path to bind it"
            )
    resolver = NameResolver(database, statement.from_tables)

    where = (
        resolver.qualify_expression(statement.where)
        if statement.where is not None
        else None
    )
    having = (
        resolver.qualify_expression(statement.having)
        if statement.having is not None
        else None
    )
    group_by = tuple(
        resolver.qualify(column).qualified for column in statement.group_by
    )

    select_group_columns: List[str] = []
    aggregates: List[AggregateSpec] = []
    items = list(statement.items)
    # SELECT *: expand to every column of every FROM entry, in FROM order.
    if any(
        isinstance(item.expression, ColumnRef)
        and not item.expression.table
        and item.expression.column == "*"
        for item in items
    ):
        if len(items) != 1:
            raise BindingError("SELECT * cannot be mixed with other items")
        from repro.parser.ast_nodes import SelectItem

        items = [
            SelectItem(ColumnRef(ref.correlation, column))
            for ref in statement.from_tables
            for column in resolver.columns_by_alias[ref.correlation]
        ]
    for item in items:
        expression = resolver.qualify_expression(item.expression)
        if contains_aggregate(expression):
            name = item.alias or str(expression)
            aggregates.append(AggregateSpec(name, expression))
        elif isinstance(expression, ColumnRef):
            qualified = expression.qualified
            if group_by and qualified not in group_by:
                raise BindingError(
                    f"selection column {qualified} is not a grouping column "
                    "(SQL2 requires SELECT columns ⊆ GROUP BY columns)"
                )
            select_group_columns.append(qualified)
        else:
            raise BindingError(
                f"non-aggregate SELECT expression {expression} is outside "
                "the supported query class (columns and aggregates only)"
            )

    if aggregates and select_group_columns and not group_by:
        raise BindingError(
            "mixing aggregates with bare columns requires a GROUP BY clause"
        )

    bindings = tuple(
        TableBinding(ref.correlation, ref.name) for ref in statement.from_tables
    )
    return FlatQuery(
        bindings,
        where,
        group_by,
        tuple(select_group_columns),
        tuple(aggregates),
        statement.distinct,
        having,
    )


# -- DDL / DML execution ------------------------------------------------------


def execute_statement(database: Database, statement: object) -> None:
    """Apply a DDL or DML (INSERT/UPDATE/DELETE) statement to the database."""
    from repro.parser.ast_nodes import DeleteStatement, UpdateStatement
    from repro.parser.ast_nodes import TableRef as _TableRef

    if isinstance(statement, DeleteStatement):
        resolver = NameResolver(database, (_TableRef(statement.table),))
        where = (
            resolver.qualify_expression(statement.where)
            if statement.where is not None
            else None
        )
        database.delete(statement.table, where)
        return
    if isinstance(statement, UpdateStatement):
        resolver = NameResolver(database, (_TableRef(statement.table),))
        where = (
            resolver.qualify_expression(statement.where)
            if statement.where is not None
            else None
        )
        assignments = {
            column: resolver.qualify_expression(expression)
            for column, expression in statement.assignments
        }
        database.update(statement.table, assignments, where)
        return
    if isinstance(statement, CreateTableStatement):
        _create_table(database, statement)
    elif isinstance(statement, CreateDomainStatement):
        check = statement.check
        database.create_domain(
            Domain(
                statement.name,
                type_from_name(statement.type_name, *statement.type_params),
                check,
            )
        )
    elif isinstance(statement, CreateViewStatement):
        database.create_view(statement.name, statement)
    elif isinstance(statement, CreateAssertionStatement):
        from repro.catalog.constraints import Assertion

        database.create_assertion(Assertion(statement.name, statement.check))
    elif isinstance(statement, InsertStatement):
        for row in statement.rows:
            if statement.columns:
                database.insert(statement.table, dict(zip(statement.columns, row)))
            else:
                database.insert(statement.table, row)
    else:
        raise CatalogError(
            f"cannot execute statement of type {type(statement).__name__}"
        )


def _create_table(database: Database, statement: CreateTableStatement) -> None:
    columns: List[Column] = []
    constraints: List[object] = []
    for definition in statement.columns:
        domain: Optional[Domain] = None
        if definition.type_name in database.domains:
            domain = database.resolve_domain(definition.type_name)
            datatype = domain.datatype
        else:
            datatype = type_from_name(definition.type_name, *definition.type_params)
        columns.append(
            Column(definition.name, datatype, nullable=not definition.not_null)
        )
        if domain is not None:
            domain_check = domain.column_check(statement.name, definition.name)
            if domain_check is not None:
                constraints.append(domain_check)
        if definition.primary_key:
            constraints.append(PrimaryKeyConstraint([definition.name]))
        if definition.unique:
            constraints.append(UniqueConstraint([definition.name]))
        if definition.check is not None:
            constraints.append(
                CheckConstraint(
                    definition.check,
                    name=f"CHECK on {statement.name}.{definition.name}",
                )
            )
        if definition.references is not None:
            ref_table, ref_columns = definition.references
            constraints.append(
                ForeignKeyConstraint([definition.name], ref_table, ref_columns)
            )
    for constraint in statement.constraints:
        if constraint.kind == "primary_key":
            constraints.append(PrimaryKeyConstraint(constraint.columns))
        elif constraint.kind == "unique":
            constraints.append(UniqueConstraint(constraint.columns))
        elif constraint.kind == "check":
            assert constraint.check is not None
            constraints.append(
                CheckConstraint(constraint.check, name=f"CHECK on {statement.name}")
            )
        elif constraint.kind == "foreign_key":
            assert constraint.references is not None
            ref_table, ref_columns = constraint.references
            constraints.append(
                ForeignKeyConstraint(constraint.columns, ref_table, ref_columns)
            )
    database.create_table(TableSchema(statement.name, columns, constraints))
