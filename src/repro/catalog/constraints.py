"""SQL2 integrity constraints — the five classes of Section 6.1.

* **Column constraints**: :class:`NotNullConstraint`, :class:`CheckConstraint`
  (a check attached to one column or the whole table).
* **Domain constraints**: :class:`Domain` — a named data type plus a CHECK on
  ``VALUE``; the paper notes these are equivalent to column constraints, and
  we realize them that way when a column is typed with a domain.
* **Key constraints**: :class:`PrimaryKeyConstraint` (no NULLs, unique) and
  :class:`UniqueConstraint` (candidate key; NULLs allowed, and uniqueness
  uses SQL2's "NULL not equal to NULL" UNIQUE-predicate semantics, as the
  paper points out in Section 4.2).
* **Referential integrity**: :class:`ForeignKeyConstraint`.
* **Assertions**: :class:`Assertion` — database-wide CHECKs.

Each enforcement hook raises :class:`ConstraintViolation` on failure.
Constraints also know how to express themselves as Boolean conditions over
a row scope (:meth:`as_predicate`), which is how T1/T2 of Theorem 3 are fed
to TestFD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ConstraintViolation
from repro.expressions.ast import ColumnRef, Expression
from repro.expressions.eval import RowScope, evaluate_predicate
from repro.sqltypes.datatypes import DataType
from repro.sqltypes.values import is_null


@dataclass(frozen=True)
class NotNullConstraint:
    """Column constraint: the column must not be NULL."""

    column: str
    name: str = ""

    def constraint_name(self, table: str) -> str:
        return self.name or f"{table}.{self.column} NOT NULL"

    def check_row(self, table: str, scope: RowScope) -> None:
        value = scope.lookup(ColumnRef(table, self.column))
        if is_null(value):
            raise ConstraintViolation(
                self.constraint_name(table), f"{self.column} is NULL"
            )


@dataclass(frozen=True)
class CheckConstraint:
    """A CHECK predicate over one row of the table.

    Per SQL2, a CHECK is satisfied when the condition is TRUE *or UNKNOWN*
    (only FALSE violates) — note this differs from WHERE semantics.
    """

    expression: Expression
    name: str = ""

    def constraint_name(self, table: str) -> str:
        return self.name or f"CHECK on {table}"

    def check_row(self, table: str, scope: RowScope) -> None:
        truth = evaluate_predicate(self.expression, scope)
        if truth.is_false():
            raise ConstraintViolation(
                self.constraint_name(table),
                f"row fails CHECK ({self.expression})",
            )


@dataclass(frozen=True)
class PrimaryKeyConstraint:
    """PRIMARY KEY: unique, and no key column may be NULL."""

    columns: Tuple[str, ...]
    name: str = ""

    def __init__(self, columns: Sequence[str], name: str = "") -> None:
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "name", name)

    def constraint_name(self, table: str) -> str:
        return self.name or f"PRIMARY KEY of {table}"


@dataclass(frozen=True)
class UniqueConstraint:
    """UNIQUE (candidate key): may contain NULLs.

    Uniqueness is judged with "NULL not equal to NULL": two rows conflict
    only when all key values are pairwise equal and *none* is NULL (SQL2
    UNIQUE-predicate semantics).  FD reasoning over this key still uses
    ``=ⁿ`` semantics — see :mod:`repro.fd.derivation`.
    """

    columns: Tuple[str, ...]
    name: str = ""

    def __init__(self, columns: Sequence[str], name: str = "") -> None:
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "name", name)

    def constraint_name(self, table: str) -> str:
        return self.name or f"UNIQUE({', '.join(self.columns)}) of {table}"


@dataclass(frozen=True)
class ForeignKeyConstraint:
    """FOREIGN KEY: values are NULL or match a key of the referenced table."""

    columns: Tuple[str, ...]
    referenced_table: str
    referenced_columns: Tuple[str, ...] = ()
    name: str = ""

    def __init__(
        self,
        columns: Sequence[str],
        referenced_table: str,
        referenced_columns: Sequence[str] = (),
        name: str = "",
    ) -> None:
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "referenced_table", referenced_table)
        object.__setattr__(self, "referenced_columns", tuple(referenced_columns))
        object.__setattr__(self, "name", name)

    def constraint_name(self, table: str) -> str:
        return self.name or (
            f"FOREIGN KEY ({', '.join(self.columns)}) of {table} "
            f"REFERENCES {self.referenced_table}"
        )


@dataclass(frozen=True)
class Domain:
    """CREATE DOMAIN: a named base type plus an optional CHECK on VALUE.

    ``check`` uses the pseudo-column ``VALUE`` (an unqualified
    :class:`ColumnRef` named ``VALUE``); :meth:`column_check` rewrites it to
    a CHECK on a concrete column, per the paper's observation that domain
    constraints are equivalent to column constraints.
    """

    name: str
    datatype: DataType
    check: Optional[Expression] = None

    def column_check(self, table: str, column: str) -> Optional[CheckConstraint]:
        if self.check is None:
            return None
        rewritten = _substitute_value(self.check, ColumnRef(table, column))
        return CheckConstraint(rewritten, name=f"DOMAIN {self.name} on {table}.{column}")


@dataclass(frozen=True)
class Assertion:
    """CREATE ASSERTION: a database-wide condition.

    Enforcement here covers the single-table case (evaluated per row of that
    table); multi-table assertions are recorded for the optimizer's benefit
    (they contribute to T1/T2 in Theorem 3) and validated only via
    :meth:`repro.catalog.catalog.Database.check_assertions`.
    """

    name: str
    expression: Expression


def _substitute_value(expression: Expression, replacement: ColumnRef) -> Expression:
    """Replace the VALUE pseudo-column in a domain CHECK."""
    from repro.expressions.ast import transform_expression

    def visit(node: Expression):
        if isinstance(node, ColumnRef):
            if not node.table and node.column.upper() == "VALUE":
                return replacement
            return node
        return None

    return transform_expression(expression, visit)
