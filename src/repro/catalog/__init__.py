"""Catalog: schemas, the five SQL2 constraint classes, and the database."""

from repro.catalog.catalog import Database
from repro.catalog.constraints import (
    Assertion,
    CheckConstraint,
    Domain,
    ForeignKeyConstraint,
    NotNullConstraint,
    PrimaryKeyConstraint,
    UniqueConstraint,
)
from repro.catalog.schema import Column, TableSchema

__all__ = [
    "Database",
    "Assertion", "CheckConstraint", "Domain", "ForeignKeyConstraint",
    "NotNullConstraint", "PrimaryKeyConstraint", "UniqueConstraint",
    "Column", "TableSchema",
]
