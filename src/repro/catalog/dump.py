"""Dumping a database to a SQL script and loading it back.

``dump_database`` emits DDL (domains, tables in foreign-key dependency
order, views, assertions) followed by INSERT statements; ``load_database``
replays such a script through the parser/binder.  The dump round-trips
through this package's own SQL dialect, so it doubles as an end-to-end
exercise of parser + binder + constraint enforcement.

Caveats (documented, asserted in tests): DECIMAL values round-trip through
their decimal literal text; DATE values are dumped as ISO strings (which
the DATE type re-parses); view definitions are re-rendered from their
parsed form.
"""

from __future__ import annotations

import datetime
import decimal
from typing import List, Set

from repro.catalog.catalog import Database
from repro.catalog.constraints import (
    CheckConstraint,
    ForeignKeyConstraint,
    PrimaryKeyConstraint,
    UniqueConstraint,
)
from repro.catalog.schema import TableSchema
from repro.core.sqlgen import render_expression
from repro.errors import CatalogError
from repro.parser.ast_nodes import (
    CreateViewStatement,
    SelectStatement,
)
from repro.parser.binder import execute_statement
from repro.parser.parser import parse_script
from repro.sqltypes.values import is_null


def _render_value(value: object) -> str:
    if is_null(value):
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, decimal.Decimal):
        return str(value)
    if isinstance(value, datetime.date):
        return f"'{value.isoformat()}'"
    return str(value)


def render_select(statement: SelectStatement) -> str:
    """SQL text for a parsed SELECT (used to re-render view definitions)."""
    head = "SELECT DISTINCT" if statement.distinct else "SELECT"
    items = []
    for item in statement.items:
        text = render_expression(item.expression)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    tables = ", ".join(
        f"{t.name} {t.alias}" if t.alias and t.alias != t.name else t.name
        for t in statement.from_tables
    )
    parts = [f"{head} {', '.join(items)}", f"FROM {tables}"]
    if statement.where is not None:
        parts.append(f"WHERE {render_expression(statement.where)}")
    if statement.group_by:
        parts.append(
            "GROUP BY " + ", ".join(c.qualified for c in statement.group_by)
        )
    if statement.having is not None:
        parts.append(f"HAVING {render_expression(statement.having)}")
    if statement.order_by:
        keys = ", ".join(
            f"{item.column.qualified}{' DESC' if item.descending else ''}"
            for item in statement.order_by
        )
        parts.append(f"ORDER BY {keys}")
    return " ".join(parts)


def _table_ddl(schema: TableSchema) -> str:
    pieces: List[str] = []
    for column in schema.columns:
        text = f"{column.name} {column.datatype.type_name}"
        if not column.nullable and not _in_primary_key(schema, column.name):
            text += " NOT NULL"
        pieces.append(text)
    for constraint in schema.constraints:
        if isinstance(constraint, PrimaryKeyConstraint):
            pieces.append(f"PRIMARY KEY ({', '.join(constraint.columns)})")
        elif isinstance(constraint, UniqueConstraint):
            pieces.append(f"UNIQUE ({', '.join(constraint.columns)})")
        elif isinstance(constraint, CheckConstraint):
            pieces.append(f"CHECK ({render_expression(constraint.expression)})")
        elif isinstance(constraint, ForeignKeyConstraint):
            text = (
                f"FOREIGN KEY ({', '.join(constraint.columns)}) "
                f"REFERENCES {constraint.referenced_table}"
            )
            if constraint.referenced_columns:
                text += f" ({', '.join(constraint.referenced_columns)})"
            pieces.append(text)
    body = ",\n  ".join(pieces)
    return f"CREATE TABLE {schema.name} (\n  {body})"


def _in_primary_key(schema: TableSchema, column: str) -> bool:
    primary = schema.primary_key()
    return primary is not None and column in primary


def _dependency_order(database: Database) -> List[str]:
    """Tables ordered so every FK target precedes its referencers."""
    remaining: Set[str] = set(database.tables)
    ordered: List[str] = []
    while remaining:
        progressed = False
        for name in sorted(remaining):
            schema = database.table(name).schema
            targets = {
                fk.referenced_table
                for fk in schema.foreign_keys()
                if fk.referenced_table != name
            }
            if targets & remaining:
                continue
            ordered.append(name)
            remaining.discard(name)
            progressed = True
        if not progressed:
            raise CatalogError(
                f"cyclic foreign-key dependencies among {sorted(remaining)}"
            )
    return ordered


def dump_database(database: Database) -> str:
    """A SQL script that recreates the database's schema and contents."""
    statements: List[str] = []
    for domain in database.domains.values():
        text = f"CREATE DOMAIN {domain.name} {domain.datatype.type_name}"
        if domain.check is not None:
            text += f" CHECK ({render_expression(domain.check)})"
        statements.append(text)

    order = _dependency_order(database)
    for name in order:
        statements.append(_table_ddl(database.table(name).schema))

    for view_name, definition in database.views.items():
        if isinstance(definition, CreateViewStatement):
            columns = (
                f" ({', '.join(definition.column_names)})"
                if definition.column_names
                else ""
            )
            statements.append(
                f"CREATE VIEW {view_name}{columns} AS "
                f"{render_select(definition.select)}"
            )

    for assertion in database.assertions.values():
        statements.append(
            f"CREATE ASSERTION {assertion.name} "
            f"CHECK ({render_expression(assertion.expression)})"
        )

    for name in order:
        table = database.table(name)
        for row in table:
            values = ", ".join(_render_value(v) for v in row.values)
            statements.append(f"INSERT INTO {name} VALUES ({values})")

    return ";\n".join(statements) + (";\n" if statements else "")


def load_database(script: str, name: str = "db") -> Database:
    """Rebuild a database from a dump script."""
    database = Database(name)
    for statement in parse_script(script):
        execute_statement(database, statement)
    return database
