"""The database: named tables, domains, views, and assertions.

:class:`Database` is the root object a user of the library interacts with.
It owns storage, enforces cross-table constraints (referential integrity,
assertions), and is the catalog the optimizer consults for the semantic
information Theorem 3 exploits (keys, checks, domains, assertions).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.catalog.constraints import (
    Assertion,
    CheckConstraint,
    Domain,
    ForeignKeyConstraint,
)
from repro.catalog.schema import Column, TableSchema
from repro.errors import CatalogError, ConstraintViolation
from repro.expressions.analysis import referenced_tables
from repro.expressions.ast import Expression
from repro.expressions.eval import RowScope, evaluate_predicate
from repro.sqltypes.values import SqlValue, is_null
from repro.storage.table import Table


class Database:
    """A collection of tables plus database-wide integrity constraints."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.tables: Dict[str, Table] = {}
        self.domains: Dict[str, Domain] = {}
        self.views: Dict[str, object] = {}  # name -> parsed SELECT statement
        self.assertions: Dict[str, Assertion] = {}
        # name -> PartitionSpec: declared shard layouts (storage/partition.py)
        self.partitioning: Dict[str, object] = {}

    # -- DDL ---------------------------------------------------------------

    def create_domain(self, domain: Domain) -> Domain:
        if domain.name in self.domains:
            raise CatalogError(f"domain {domain.name} already exists")
        self.domains[domain.name] = domain
        return domain

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self.tables or schema.name in self.views:
            raise CatalogError(f"table or view {schema.name} already exists")
        self._validate_foreign_keys(schema)
        table = Table(schema)
        self.tables[schema.name] = table
        return table

    def create_view(self, name: str, definition: object) -> None:
        """Register a view.  ``definition`` is a parsed SELECT statement."""
        if name in self.tables or name in self.views:
            raise CatalogError(f"table or view {name} already exists")
        self.views[name] = definition

    def create_assertion(self, assertion: Assertion) -> Assertion:
        if assertion.name in self.assertions:
            raise CatalogError(f"assertion {assertion.name} already exists")
        self.assertions[assertion.name] = assertion
        return assertion

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise CatalogError(f"no such table: {name}")
        del self.tables[name]

    def _validate_foreign_keys(self, schema: TableSchema) -> None:
        for fk in schema.foreign_keys():
            assert isinstance(fk, ForeignKeyConstraint)
            if fk.referenced_table == schema.name:
                continue  # self-reference: target is the table being created
            target = self.tables.get(fk.referenced_table)
            if target is None:
                raise CatalogError(
                    f"{schema.name}: foreign key references unknown table "
                    f"{fk.referenced_table}"
                )
            ref_columns = fk.referenced_columns or (target.schema.primary_key() or ())
            if not ref_columns:
                raise CatalogError(
                    f"{schema.name}: foreign key references {fk.referenced_table} "
                    "which has no primary key"
                )
            if ref_columns not in target.schema.candidate_keys():
                raise CatalogError(
                    f"{schema.name}: foreign key must reference a candidate key "
                    f"of {fk.referenced_table}, got {ref_columns}"
                )

    # -- lookups -------------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"no such table: {name}") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def view_definition(self, name: str) -> object:
        try:
            return self.views[name]
        except KeyError:
            raise CatalogError(f"no such view: {name}") from None

    def resolve_domain(self, name: str) -> Domain:
        try:
            return self.domains[name]
        except KeyError:
            raise CatalogError(f"no such domain: {name}") from None

    # -- snapshot support (the server's MVCC reads) ---------------------------

    def snapshot_view(self) -> "Database":
        """A shallow catalog copy sharing the current table objects.

        The copy owns its *dicts* (tables/domains/views/assertions) but
        shares every :class:`~repro.storage.table.Table`: under the
        server's copy-on-write protocol published tables are frozen and
        never mutated in place, so the view is a consistent, immutable
        snapshot — later writes swap fresh clones into the *authoritative*
        dicts and this view never sees them.
        """
        view = Database(self.name)
        view.tables = dict(self.tables)
        view.domains = dict(self.domains)
        view.views = dict(self.views)
        view.assertions = dict(self.assertions)
        view.partitioning = dict(self.partitioning)
        return view

    def set_partitioning(self, table_name: str, spec: object) -> None:
        """Declare a shard layout for ``table_name`` (see
        :mod:`repro.storage.partition`).  Purely advisory: it steers the
        planner's partitioning keys; execution stays correct either way."""
        if table_name not in self.tables:
            raise CatalogError(f"no such table: {table_name}")
        self.partitioning[table_name] = spec

    def partition_spec(self, table_name: str) -> Optional[object]:
        return self.partitioning.get(table_name)

    def fk_neighbors(self, table_name: str) -> "frozenset[str]":
        """``table_name`` plus every table one foreign key away, either
        direction — the tables whose contents a write to ``table_name``
        may read (parent lookups) or invalidate (RESTRICT checks on
        children).  This is exactly the lock set a serializing writer
        must hold so concurrent commits cannot produce write skew
        (e.g. delete-parent racing insert-child).
        """
        names = {table_name}
        table = self.tables.get(table_name)
        if table is not None:
            for fk in table.schema.foreign_keys():
                assert isinstance(fk, ForeignKeyConstraint)
                names.add(fk.referenced_table)
        for other_name, other in self.tables.items():
            for fk in other.schema.foreign_keys():
                assert isinstance(fk, ForeignKeyConstraint)
                if fk.referenced_table == table_name:
                    names.add(other_name)
        return frozenset(names)

    # -- DML with cross-table enforcement -------------------------------------

    def insert(
        self, table_name: str, values: "Sequence[SqlValue] | Mapping[str, SqlValue]"
    ) -> None:
        """Insert one row, enforcing FKs and single-table assertions."""
        table = self.table(table_name)
        row = table.insert(values)
        try:
            self._check_foreign_keys(table, row.values)
            self._check_row_assertions(table, row.values)
        except ConstraintViolation:
            # Roll the insert back so a failed statement leaves no trace.
            table._rows.pop()
            for index in table._key_indexes.values():
                index.pop(
                    next((k for k, rid in index.items() if rid == row.rowid), None),
                    None,
                )
            # The rollback mutates _rows, so it must bump the version like
            # every other mutation path: derived physical representations
            # (columnar scan caches) key on it and must never serve the
            # transiently-inserted row.
            table.version += 1
            raise

    def insert_many(
        self,
        table_name: str,
        rows: Iterable["Sequence[SqlValue] | Mapping[str, SqlValue]"],
    ) -> int:
        count = 0
        for values in rows:
            self.insert(table_name, values)
            count += 1
        return count

    def _check_foreign_keys(self, table: Table, values: Tuple[SqlValue, ...]) -> None:
        for fk in table.schema.foreign_keys():
            assert isinstance(fk, ForeignKeyConstraint)
            fk_values = [
                values[table.schema.index_of(column)] for column in fk.columns
            ]
            # SQL2: a foreign key with any NULL component places no demand.
            if any(is_null(v) for v in fk_values):
                continue
            target = self.table(fk.referenced_table)
            ref_columns = fk.referenced_columns or (target.schema.primary_key() or ())
            if not target.has_key_value(tuple(ref_columns), fk_values):
                raise ConstraintViolation(
                    fk.constraint_name(table.name),
                    f"no matching row in {fk.referenced_table} for {fk_values!r}",
                )

    def _check_row_assertions(self, table: Table, values: Tuple[SqlValue, ...]) -> None:
        scope = RowScope.from_pairs(
            (f"{table.name}.{c}" for c in table.schema.column_names()), values
        )
        for assertion in self.assertions.values():
            tables = referenced_tables(assertion.expression)
            if tables == frozenset({table.name}):
                truth = evaluate_predicate(assertion.expression, scope)
                if truth.is_false():
                    raise ConstraintViolation(
                        f"ASSERTION {assertion.name}",
                        f"row fails ({assertion.expression})",
                    )

    def check_assertions(self) -> Tuple[str, ...]:
        """Validate all *single-table* assertions over current contents.

        Returns the names of assertions that could not be checked here
        (multi-table assertions), so callers know the residual obligation.
        """
        unchecked: list[str] = []
        for assertion in self.assertions.values():
            tables = referenced_tables(assertion.expression)
            if len(tables) != 1:
                unchecked.append(assertion.name)
                continue
            (table_name,) = tables
            table = self.table(table_name)
            for row in table:
                scope = RowScope.from_pairs(
                    (f"{table.name}.{c}" for c in table.schema.column_names()),
                    row.values,
                )
                truth = evaluate_predicate(assertion.expression, scope)
                if truth.is_false():
                    raise ConstraintViolation(
                        f"ASSERTION {assertion.name}",
                        f"row {row.rowid} of {table_name} fails",
                    )
        return tuple(unchecked)

    def delete(
        self,
        table_name: str,
        condition: Optional[Expression] = None,
        params: Optional[Mapping[str, SqlValue]] = None,
    ) -> int:
        """DELETE FROM ``table_name`` [WHERE ``condition``]; returns count.

        Referential integrity is RESTRICT: deleting a row that some other
        table's foreign key still references raises
        :class:`ConstraintViolation` and nothing is deleted.
        """
        from repro.expressions.eval import evaluate_predicate as _evaluate

        table = self.table(table_name)
        doomed = []
        for row in table:
            if condition is None:
                doomed.append(row)
                continue
            scope = RowScope.from_pairs(
                (f"{table_name}.{c}" for c in table.schema.column_names()),
                row.values,
            )
            if _evaluate(condition, scope, params).is_true():
                doomed.append(row)
        if not doomed:
            return 0
        self._check_no_referencing_children(table, doomed)
        return table.delete_rowids({row.rowid for row in doomed})

    def update(
        self,
        table_name: str,
        assignments: Mapping[str, Expression],
        condition: Optional[Expression] = None,
        params: Optional[Mapping[str, SqlValue]] = None,
    ) -> int:
        """UPDATE ``table_name`` SET ... [WHERE ...]; returns rows changed.

        Applied atomically: the table is snapshotted, rows are deleted and
        re-inserted with the new values (full constraint checking, fresh
        RowIDs), and any violation rolls everything back.  Changing key
        columns still referenced by other tables' foreign keys is refused
        (RESTRICT).
        """
        from repro.expressions.eval import evaluate_predicate as _evaluate
        from repro.expressions.eval import evaluate_scalar as _scalar

        table = self.table(table_name)
        for column in assignments:
            table.schema.index_of(column)  # raises on unknown column

        targets = []
        for row in table:
            scope = RowScope.from_pairs(
                (f"{table_name}.{c}" for c in table.schema.column_names()),
                row.values,
            )
            if condition is None or _evaluate(condition, scope, params).is_true():
                new_values = list(row.values)
                for column, expression in assignments.items():
                    new_values[table.schema.index_of(column)] = _scalar(
                        expression, scope, params
                    )
                targets.append((row, tuple(new_values)))
        if not targets:
            return 0

        # RESTRICT on referenced keys: a referenced row may not change the
        # referenced columns.
        assigned = set(assignments)
        key_changers = [
            (row, new)
            for row, new in targets
            if any(
                assigned & set(key)
                and tuple(row.values[table.schema.index_of(c)] for c in key)
                != tuple(new[table.schema.index_of(c)] for c in key)
                for key in table.schema.candidate_keys()
            )
        ]
        if key_changers:
            self._check_no_referencing_children(
                table, [row for row, __ in key_changers]
            )

        snapshot = table.snapshot()
        try:
            table.delete_rowids({row.rowid for row, __ in targets})
            for __, new_values in targets:
                row = table.insert(new_values)
                self._check_foreign_keys(table, row.values)
                self._check_row_assertions(table, row.values)
        except Exception:
            table.restore(snapshot)
            raise
        return len(targets)

    def _check_no_referencing_children(self, table: Table, rows) -> None:
        """RESTRICT enforcement: no FK in any table may reference ``rows``."""
        for other_name, other in self.tables.items():
            for fk in other.schema.foreign_keys():
                assert isinstance(fk, ForeignKeyConstraint)
                if fk.referenced_table != table.name:
                    continue
                ref_columns = fk.referenced_columns or (
                    table.schema.primary_key() or ()
                )
                if not ref_columns:
                    continue
                referenced_values = {
                    tuple(
                        row.values[table.schema.index_of(column)]
                        for column in ref_columns
                    )
                    for row in rows
                }
                fk_indexes = [other.schema.index_of(c) for c in fk.columns]
                for child in other:
                    child_values = tuple(child.values[i] for i in fk_indexes)
                    if any(is_null(v) for v in child_values):
                        continue
                    if child_values in referenced_values:
                        raise ConstraintViolation(
                            fk.constraint_name(other_name),
                            f"row still referenced by {other_name}",
                        )

    # -- semantic info for the optimizer (Theorem 3's T1/T2) ------------------

    def table_condition(self, table_name: str, alias: str = "") -> Tuple[Expression, ...]:
        """The CHECK/domain/assertion conditions that hold for every row of
        ``table_name``, rewritten to the given correlation ``alias``.

        These are the building blocks of the T1/T2 Boolean expressions of
        Theorem 3.  Key constraints are not included — TestFD consumes keys
        structurally, not as Boolean expressions.
        """
        table = self.table(table_name)
        alias = alias or table_name
        conditions: list[Expression] = []
        for constraint in table.schema.constraints:
            if isinstance(constraint, CheckConstraint):
                conditions.append(
                    _requalify(constraint.expression, table_name, alias)
                )
        for assertion in self.assertions.values():
            if referenced_tables(assertion.expression) == frozenset({table_name}):
                conditions.append(
                    _requalify(assertion.expression, table_name, alias)
                )
        return tuple(conditions)

    def __repr__(self) -> str:
        return (
            f"Database({self.name}: {len(self.tables)} tables, "
            f"{len(self.views)} views)"
        )


def _requalify(expression: Expression, old_table: str, new_table: str) -> Expression:
    """Rewrite column qualifiers from ``old_table`` to ``new_table``.

    Unqualified references are assumed to belong to ``old_table`` (they came
    from a single-table constraint definition).
    """
    from repro.expressions.ast import ColumnRef, transform_expression

    def visit(node: Expression):
        if isinstance(node, ColumnRef):
            if node.table in ("", old_table):
                return ColumnRef(new_table, node.column)
            return node
        return None

    return transform_expression(expression, visit)
