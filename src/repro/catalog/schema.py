"""Table schemas: columns, data types, and declared constraints.

A :class:`TableSchema` is purely declarative — storage lives in
:mod:`repro.storage.table` and enforcement in
:mod:`repro.catalog.constraints`.  The schema exposes the queries the
optimizer needs: primary key, candidate keys, NOT NULL columns, CHECK
predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import CatalogError
from repro.sqltypes.datatypes import DataType


@dataclass(frozen=True)
class Column:
    """One column: a name, an SQL data type, and nullability."""

    name: str
    datatype: DataType
    nullable: bool = True

    def __str__(self) -> str:
        suffix = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.datatype}{suffix}"


class TableSchema:
    """The declared shape of a base table or view result.

    ``constraints`` holds the table's integrity constraints (see
    :mod:`repro.catalog.constraints`).  Key constraints are also surfaced via
    :meth:`primary_key` and :meth:`candidate_keys` because the paper's FD
    reasoning (Section 4.3) and TestFD consume them constantly.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        constraints: Sequence["object"] = (),
    ) -> None:
        if not columns:
            raise CatalogError(f"table {name} must have at least one column")
        names = [column.name for column in columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise CatalogError(f"duplicate columns in {name}: {sorted(duplicates)}")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index: Dict[str, int] = {column.name: i for i, column in enumerate(self.columns)}
        self.constraints: Tuple[object, ...] = tuple(constraints)
        self._apply_key_nullability()

    def _apply_key_nullability(self) -> None:
        """Primary-key columns reject NULL (SQL2: a key definition implies
        no column of the key can be NULL)."""
        from repro.catalog.constraints import PrimaryKeyConstraint

        pk_columns: set = set()
        for constraint in self.constraints:
            if isinstance(constraint, PrimaryKeyConstraint):
                pk_columns.update(constraint.columns)
        if not pk_columns:
            return
        missing = pk_columns - set(self._index)
        if missing:
            raise CatalogError(
                f"primary key of {self.name} names unknown columns: {sorted(missing)}"
            )
        patched = tuple(
            Column(column.name, column.datatype, nullable=False)
            if column.name in pk_columns
            else column
            for column in self.columns
        )
        self.columns = patched

    # -- lookups ---------------------------------------------------------

    def column_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def index_of(self, column_name: str) -> int:
        try:
            return self._index[column_name]
        except KeyError:
            raise CatalogError(f"table {self.name} has no column {column_name!r}") from None

    def has_column(self, column_name: str) -> bool:
        return column_name in self._index

    def column(self, column_name: str) -> Column:
        return self.columns[self.index_of(column_name)]

    @property
    def arity(self) -> int:
        return len(self.columns)

    # -- constraint views --------------------------------------------------

    def primary_key(self) -> Optional[Tuple[str, ...]]:
        """The PRIMARY KEY columns, or ``None`` when no PK is declared."""
        from repro.catalog.constraints import PrimaryKeyConstraint

        for constraint in self.constraints:
            if isinstance(constraint, PrimaryKeyConstraint):
                return constraint.columns
        return None

    def candidate_keys(self) -> Tuple[Tuple[str, ...], ...]:
        """All declared keys: the primary key plus every UNIQUE constraint.

        These are the ``Ki(R)`` of Section 6 — the inputs to TestFD's
        key-based closure steps.
        """
        from repro.catalog.constraints import PrimaryKeyConstraint, UniqueConstraint

        keys: list[Tuple[str, ...]] = []
        for constraint in self.constraints:
            if isinstance(constraint, (PrimaryKeyConstraint, UniqueConstraint)):
                keys.append(constraint.columns)
        return tuple(keys)

    def check_constraints(self) -> Tuple["object", ...]:
        from repro.catalog.constraints import CheckConstraint

        return tuple(c for c in self.constraints if isinstance(c, CheckConstraint))

    def foreign_keys(self) -> Tuple["object", ...]:
        from repro.catalog.constraints import ForeignKeyConstraint

        return tuple(c for c in self.constraints if isinstance(c, ForeignKeyConstraint))

    def not_null_columns(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns if not column.nullable)

    def rename(self, new_name: str) -> "TableSchema":
        """A copy of this schema under a different (correlation) name."""
        return TableSchema(new_name, self.columns, self.constraints)

    def __repr__(self) -> str:
        cols = ", ".join(str(column) for column in self.columns)
        return f"TableSchema({self.name}: {cols})"
