"""groupby-pushdown: a reproduction of Yan & Larson, *Performing Group-By
before Join* (ICDE 1994).

The package layers a strict-SQL2 query engine (catalog, three-valued logic,
algebra, physical operators) beneath the paper's contribution: the E1 <-> E2
transformation, the Main Theorem's FD1/FD2 conditions, and the TestFD
compile-time test.

Typical entry points:

* :class:`Session` — parse-and-run SQL with cost-based eager/standard
  plan choice;
* :class:`GroupByJoinQuery` + :func:`test_fd` / :func:`transform` — the
  programmatic transformation API;
* :mod:`repro.core.main_theorem` — instance-level verification of the
  theorem.
"""

from repro.catalog import (
    Assertion,
    CheckConstraint,
    Column,
    Database,
    Domain,
    ForeignKeyConstraint,
    NotNullConstraint,
    PrimaryKeyConstraint,
    TableSchema,
    UniqueConstraint,
)
from repro.core import (
    FlatQuery,
    GroupByJoinQuery,
    TestFDResult,
    build_eager_plan,
    build_standard_plan,
    check_transformable,
    test_fd,
    transform,
)
from repro.engine import DataSet, Executor, ExecutorConfig, execute
from repro.errors import (
    BindingError,
    CatalogError,
    ConstraintViolation,
    ExecutionError,
    ParseError,
    PlanningError,
    ReproError,
    TransformationError,
    TypeMismatchError,
)
from repro.fd import FunctionalDependency, TableBinding
from repro.optimizer import PlanChoice, Planner
from repro.session import QueryReport, Session
from repro.sqltypes import (
    BOOLEAN,
    CHAR,
    DATE,
    DECIMAL,
    FLOAT,
    INTEGER,
    NULL,
    SMALLINT,
    VARCHAR,
)

__version__ = "1.0.0"

__all__ = [
    "Assertion", "CheckConstraint", "Column", "Database", "Domain",
    "ForeignKeyConstraint", "NotNullConstraint", "PrimaryKeyConstraint",
    "TableSchema", "UniqueConstraint",
    "FlatQuery", "GroupByJoinQuery", "TestFDResult", "build_eager_plan",
    "build_standard_plan", "check_transformable", "test_fd", "transform",
    "DataSet", "Executor", "ExecutorConfig", "execute",
    "BindingError", "CatalogError", "ConstraintViolation", "ExecutionError",
    "ParseError", "PlanningError", "ReproError", "TransformationError",
    "TypeMismatchError",
    "FunctionalDependency", "TableBinding",
    "PlanChoice", "Planner",
    "QueryReport", "Session",
    "BOOLEAN", "CHAR", "DATE", "DECIMAL", "FLOAT", "INTEGER", "NULL",
    "SMALLINT", "VARCHAR",
    "__version__",
]
