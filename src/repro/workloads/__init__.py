"""The paper's example schemas and deterministic synthetic data generators."""

from repro.workloads.generators import (
    TwoTableSpec,
    make_two_table,
    populate_employee_department,
    populate_example4,
    populate_part_supplier,
    populate_printer_accounting,
    populate_retail,
)
from repro.workloads.schemas import (
    make_employee_department,
    make_figure5_schema,
    make_part_supplier,
    make_printer_schema,
    make_retail_star,
)

__all__ = [
    "TwoTableSpec", "make_two_table", "populate_employee_department",
    "populate_example4", "populate_part_supplier",
    "populate_printer_accounting", "populate_retail",
    "make_employee_department", "make_figure5_schema", "make_part_supplier",
    "make_printer_schema", "make_retail_star",
]
