"""Synthetic data generators for the paper's workloads.

Deterministic (seeded) population of the example schemas at configurable
scale.  Two shapes matter to the evaluation:

* :func:`populate_employee_department` — Example 1 / Figure 1: every
  employee references an existing department; the eager plan collapses
  10000 join inputs to one row per department.
* :func:`populate_example4` — Figure 8 / Example 4: a *selective* join
  (only ``match_rows`` of table A find a partner in B) combined with a
  *high-cardinality* grouping column (``a_groups`` distinct values), the
  regime where eager grouping loses.

Plus :func:`populate_printer_accounting` for Examples 3/5 and a generic
:func:`populate_two_table` parameter sweep used by the crossover bench.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.catalog import Column, Database, PrimaryKeyConstraint, TableSchema
from repro.sqltypes import INTEGER, VARCHAR


def populate_employee_department(
    db: Database,
    n_employees: int = 10000,
    n_departments: int = 100,
    seed: int = 0,
) -> None:
    """Example 1 data: employees uniformly spread over departments."""
    rng = random.Random(seed)
    for dept_id in range(1, n_departments + 1):
        db.insert("Department", [dept_id, f"Department {dept_id}"])
    for emp_id in range(1, n_employees + 1):
        dept_id = rng.randint(1, n_departments)
        db.insert("Employee", [emp_id, f"Last{emp_id}", f"First{emp_id}", dept_id])


def populate_part_supplier(
    db: Database,
    n_parts: int = 500,
    n_suppliers: int = 50,
    n_classes: int = 10,
    seed: int = 0,
) -> None:
    """Example 2 data: parts in classes, each referencing a supplier."""
    rng = random.Random(seed)
    for supplier_no in range(1, n_suppliers + 1):
        db.insert(
            "Supplier",
            [supplier_no, f"Supplier {supplier_no}", f"{supplier_no} Main St"],
        )
    part_no = 0
    for __ in range(n_parts):
        part_no += 1
        class_code = rng.randint(1, n_classes)
        supplier_no = rng.randint(1, n_suppliers)
        db.insert(
            "Part", [class_code, part_no, f"Part {part_no}", supplier_no]
        )


def populate_printer_accounting(
    db: Database,
    n_users: int = 200,
    n_machines: int = 4,
    n_printers: int = 20,
    auths_per_user: int = 3,
    seed: int = 0,
) -> None:
    """Examples 3/5 data: users on machines (one of them 'dragon'),
    printers, and authorization rows with usage counters."""
    rng = random.Random(seed)
    machines = ["dragon"] + [f"machine{m}" for m in range(1, n_machines)]
    for printer_no in range(1, n_printers + 1):
        db.insert(
            "Printer",
            [printer_no, rng.choice([300, 600, 1200, 2400]), f"Make{printer_no % 5}"],
        )
    for user_id in range(1, n_users + 1):
        machine = machines[user_id % len(machines)]
        db.insert("UserAccount", [user_id, machine, f"user{user_id}"])
        granted = rng.sample(range(1, n_printers + 1), min(auths_per_user, n_printers))
        for printer_no in granted:
            db.insert(
                "PrinterAuth",
                [user_id, machine, printer_no, rng.randint(0, 5000)],
            )


@dataclass(frozen=True)
class TwoTableSpec:
    """Parameters of the generic A ⋈ B workload used by the sweeps.

    * ``n_a`` rows in A, ``n_b`` rows in B;
    * ``a_groups`` distinct values of the A-side grouping/join column
      ``A.GKey`` (this is the eager plan's group count);
    * ``match_fraction`` of A rows whose ``BRef`` matches some B row — the
      join selectivity lever of Figure 8;
    * ``bref_mode``: ``"uniform"`` draws ``BRef`` independently of ``GKey``;
      ``"correlated"`` derives it as ``GKey % n_b + 1``, so the eager
      plan's (GKey, BRef) group count stays ≈ ``a_groups`` — the sweep
      benches use this to isolate the group-count lever.
    * ``null_fraction`` of A rows get NULL in ``GKey``/``BRef``/``Val``
      (independently per column) — exercising NULL group keys (which
      group together under ``=ⁿ``) and NULL join keys (which never match
      under ``=``).
    """

    n_a: int = 10000
    n_b: int = 100
    a_groups: int = 100
    match_fraction: float = 1.0
    bref_mode: str = "uniform"
    seed: int = 0
    null_fraction: float = 0.0


def make_two_table(spec: TwoTableSpec) -> Database:
    """Build and populate the generic sweep schema.

    ``A(AId, GKey, BRef, Val)`` with PK AId; ``B(BId, Name)`` with PK BId.
    ``BRef`` joins to ``B.BId``; non-matching rows get a reference beyond
    ``n_b``.  ``GKey`` takes ``a_groups`` distinct values.
    """
    db = Database("two_table")
    db.create_table(
        TableSchema(
            "B",
            [Column("BId", INTEGER), Column("Name", VARCHAR(30))],
            [PrimaryKeyConstraint(["BId"])],
        )
    )
    db.create_table(
        TableSchema(
            "A",
            [
                Column("AId", INTEGER),
                Column("GKey", INTEGER),
                Column("BRef", INTEGER),
                Column("Val", INTEGER),
            ],
            [PrimaryKeyConstraint(["AId"])],
        )
    )
    rng = random.Random(spec.seed)
    for b_id in range(1, spec.n_b + 1):
        db.insert("B", [b_id, f"B{b_id}"])
    from repro.sqltypes.values import NULL

    def maybe_null(value):
        if spec.null_fraction and rng.random() < spec.null_fraction:
            return NULL
        return value

    for a_id in range(1, spec.n_a + 1):
        g_key = rng.randint(1, max(1, spec.a_groups))
        if rng.random() >= spec.match_fraction:
            b_ref = spec.n_b + a_id  # dangling: joins with nothing
        elif spec.bref_mode == "correlated":
            b_ref = (g_key % max(1, spec.n_b)) + 1
        else:
            b_ref = rng.randint(1, max(1, spec.n_b))
        db.insert(
            "A",
            [
                a_id,
                maybe_null(g_key),
                maybe_null(b_ref),
                maybe_null(rng.randint(0, 1000)),
            ],
        )
    return db


def populate_retail(
    db: Database,
    n_sales: int = 5000,
    n_customers: int = 200,
    n_products: int = 50,
    n_stores: int = 10,
    seed: int = 0,
) -> None:
    """Fill the retail star schema with uniformly distributed sales."""
    rng = random.Random(seed)
    segments = ["consumer", "corporate", "home-office"]
    categories = ["grocery", "electronics", "apparel", "toys"]
    regions = ["north", "south", "east", "west"]
    for cust_id in range(1, n_customers + 1):
        db.insert(
            "Customer",
            [cust_id, f"Customer {cust_id}", segments[cust_id % len(segments)]],
        )
    for prod_id in range(1, n_products + 1):
        db.insert(
            "Product",
            [prod_id, f"Product {prod_id}", categories[prod_id % len(categories)]],
        )
    for store_id in range(1, n_stores + 1):
        db.insert(
            "Store",
            [store_id, f"City {store_id}", regions[store_id % len(regions)]],
        )
    for sale_id in range(1, n_sales + 1):
        db.insert(
            "Sales",
            [
                sale_id,
                rng.randint(1, n_customers),
                rng.randint(1, n_products),
                rng.randint(1, n_stores),
                rng.randint(1, 10),
                rng.randint(1, 500),
            ],
        )


def populate_example4(
    db_factory=make_two_table,
    n_a: int = 10000,
    n_b: int = 100,
    a_groups: int = 9000,
    match_rows: int = 50,
    seed: int = 0,
) -> Database:
    """Figure 8's regime: |A|=10000, |B|=100, the join yields ~``match_rows``
    rows, and A has ~``a_groups`` groups, so eager grouping produces ~9000
    groups only to throw most of them away at the join."""
    spec = TwoTableSpec(
        n_a=n_a,
        n_b=n_b,
        a_groups=a_groups,
        match_fraction=match_rows / n_a,
        seed=seed,
    )
    return db_factory(spec)
