"""The paper's example schemas, ready to instantiate.

* Example 1: ``Employee`` / ``Department``;
* Example 2: ``Part`` / ``Supplier``;
* Examples 3 & 5: ``UserAccount`` / ``PrinterAuth`` / ``Printer``;
* Figure 5: the constraint-showcase table (domain, CHECK, UNIQUE, PK, FK).

Each ``make_*`` function returns a fresh :class:`Database` with the schema
created (and, for Figure 5, its referenced table); population is the
generators' job (:mod:`repro.workloads.generators`).
"""

from __future__ import annotations

from repro.catalog import (
    CheckConstraint,
    Column,
    Database,
    Domain,
    ForeignKeyConstraint,
    PrimaryKeyConstraint,
    TableSchema,
    UniqueConstraint,
)
from repro.expressions.builder import and_, col, gt, lt
from repro.sqltypes import CHAR, INTEGER, SMALLINT, VARCHAR


def make_employee_department() -> Database:
    """Example 1: Employee(EmpID, LastName, FirstName, DeptID),
    Department(DeptID, Name)."""
    db = Database("example1")
    db.create_table(
        TableSchema(
            "Department",
            [Column("DeptID", INTEGER), Column("Name", VARCHAR(30))],
            [PrimaryKeyConstraint(["DeptID"])],
        )
    )
    db.create_table(
        TableSchema(
            "Employee",
            [
                Column("EmpID", INTEGER),
                Column("LastName", VARCHAR(30)),
                Column("FirstName", VARCHAR(30)),
                Column("DeptID", INTEGER),
            ],
            [
                PrimaryKeyConstraint(["EmpID"]),
                ForeignKeyConstraint(["DeptID"], "Department", ["DeptID"]),
            ],
        )
    )
    return db


def make_part_supplier() -> Database:
    """Example 2: Part(ClassCode, PartNo, PartName, SupplierNo),
    Supplier(SupplierNo, Name, Address)."""
    db = Database("example2")
    db.create_table(
        TableSchema(
            "Supplier",
            [
                Column("SupplierNo", INTEGER),
                Column("Name", VARCHAR(30)),
                Column("Address", VARCHAR(60)),
            ],
            [PrimaryKeyConstraint(["SupplierNo"])],
        )
    )
    db.create_table(
        TableSchema(
            "Part",
            [
                Column("ClassCode", INTEGER),
                Column("PartNo", INTEGER),
                Column("PartName", VARCHAR(30)),
                Column("SupplierNo", INTEGER),
            ],
            [
                PrimaryKeyConstraint(["ClassCode", "PartNo"]),
                ForeignKeyConstraint(["SupplierNo"], "Supplier", ["SupplierNo"]),
            ],
        )
    )
    return db


def make_printer_schema() -> Database:
    """Examples 3 & 5: UserAccount, PrinterAuth, Printer."""
    db = Database("example3")
    db.create_table(
        TableSchema(
            "UserAccount",
            [
                Column("UserId", INTEGER),
                Column("Machine", VARCHAR(20)),
                Column("UserName", VARCHAR(30)),
            ],
            [PrimaryKeyConstraint(["UserId", "Machine"])],
        )
    )
    db.create_table(
        TableSchema(
            "Printer",
            [
                Column("PNo", INTEGER),
                Column("Speed", INTEGER),
                Column("Make", VARCHAR(20)),
            ],
            [PrimaryKeyConstraint(["PNo"])],
        )
    )
    db.create_table(
        TableSchema(
            "PrinterAuth",
            [
                Column("UserId", INTEGER),
                Column("Machine", VARCHAR(20)),
                Column("PNo", INTEGER),
                Column("Usage", INTEGER),
            ],
            [
                PrimaryKeyConstraint(["UserId", "Machine", "PNo"]),
                ForeignKeyConstraint(["PNo"], "Printer", ["PNo"]),
            ],
        )
    )
    return db


def make_retail_star() -> Database:
    """A small retail star schema: one fact table, three dimensions.

    The shape the paper's introduction motivates — "SQL queries containing
    joins and group-by are fairly common" — where eager aggregation shines:
    the fact table dwarfs the dimensions, and reports group by dimension
    attributes while aggregating fact measures.
    """
    db = Database("retail")
    db.create_table(
        TableSchema(
            "Customer",
            [
                Column("CustID", INTEGER),
                Column("Name", VARCHAR(30)),
                Column("Segment", VARCHAR(20)),
            ],
            [PrimaryKeyConstraint(["CustID"])],
        )
    )
    db.create_table(
        TableSchema(
            "Product",
            [
                Column("ProdID", INTEGER),
                Column("PName", VARCHAR(30)),
                Column("Category", VARCHAR(20)),
            ],
            [PrimaryKeyConstraint(["ProdID"])],
        )
    )
    db.create_table(
        TableSchema(
            "Store",
            [
                Column("StoreID", INTEGER),
                Column("City", VARCHAR(20)),
                Column("Region", VARCHAR(20)),
            ],
            [PrimaryKeyConstraint(["StoreID"])],
        )
    )
    db.create_table(
        TableSchema(
            "Sales",
            [
                Column("SaleID", INTEGER),
                Column("CustID", INTEGER),
                Column("ProdID", INTEGER),
                Column("StoreID", INTEGER),
                Column("Qty", INTEGER),
                Column("Amount", INTEGER),
            ],
            [
                PrimaryKeyConstraint(["SaleID"]),
                ForeignKeyConstraint(["CustID"], "Customer", ["CustID"]),
                ForeignKeyConstraint(["ProdID"], "Product", ["ProdID"]),
                ForeignKeyConstraint(["StoreID"], "Store", ["StoreID"]),
            ],
        )
    )
    return db


def make_figure5_schema() -> Database:
    """Figure 5: the constraint showcase.

    The paper's DDL (modulo its typo of naming the table "Department" while
    clearly describing an employee table): a domain with a CHECK, column
    CHECKs, UNIQUE, NOT NULL, PRIMARY KEY and a FOREIGN KEY to ``Dept``.
    """
    db = Database("figure5")
    db.create_domain(
        Domain(
            "DepIdType",
            SMALLINT,
            and_(gt(col("VALUE"), 0), lt(col("VALUE"), 100)),
        )
    )
    db.create_table(
        TableSchema(
            "Dept",
            [Column("DeptID", SMALLINT), Column("Name", VARCHAR(30))],
            [PrimaryKeyConstraint(["DeptID"])],
        )
    )
    domain = db.resolve_domain("DepIdType")
    db.create_table(
        TableSchema(
            "EmployeeInfo",
            [
                Column("EmpID", INTEGER),
                Column("EmpSID", INTEGER),
                Column("LastName", CHAR(30), nullable=False),
                Column("FirstName", CHAR(30)),
                Column("DeptID", domain.datatype),
            ],
            [
                PrimaryKeyConstraint(["EmpID"]),
                UniqueConstraint(["EmpSID"]),
                CheckConstraint(gt(col("EmpID"), 0), name="CHECK EmpID > 0"),
                CheckConstraint(gt(col("DeptID"), 5), name="CHECK DeptID > 5"),
                domain.column_check("EmployeeInfo", "DeptID"),
                ForeignKeyConstraint(["DeptID"], "Dept", ["DeptID"]),
            ],
        )
    )
    return db
