"""Convenience constructors for building expression trees in Python code.

These helpers make tests, examples and benchmarks readable::

    from repro.expressions.builder import col, lit, eq, and_

    predicate = and_(eq(col("E.DeptID"), col("D.DeptID")),
                     eq(col("U.Machine"), lit("dragon")))
"""

from __future__ import annotations

from typing import Optional

from repro.expressions.ast import (
    Aggregate,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    HostVariable,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
)
from repro.sqltypes.values import NULL, SqlValue


def col(name: str) -> ColumnRef:
    """Build a column reference from ``"T.column"`` or ``"column"``."""
    if "." in name:
        table, column = name.rsplit(".", 1)
        return ColumnRef(table, column)
    return ColumnRef("", name)


def lit(value: SqlValue) -> Literal:
    return Literal(value)


def null() -> Literal:
    return Literal(NULL)


def host(name: str) -> HostVariable:
    return HostVariable(name)


def _operand(value: "Expression | SqlValue | str") -> Expression:
    """Coerce a raw Python value to a Literal; strings stay literal.

    Column references must be built explicitly with :func:`col` — guessing
    whether a bare string is a column or a constant invites subtle bugs.
    """
    if isinstance(value, Expression):
        return value
    return Literal(value)


def eq(left, right) -> Comparison:
    return Comparison("=", _operand(left), _operand(right))


def ne(left, right) -> Comparison:
    return Comparison("<>", _operand(left), _operand(right))


def lt(left, right) -> Comparison:
    return Comparison("<", _operand(left), _operand(right))


def le(left, right) -> Comparison:
    return Comparison("<=", _operand(left), _operand(right))


def gt(left, right) -> Comparison:
    return Comparison(">", _operand(left), _operand(right))


def ge(left, right) -> Comparison:
    return Comparison(">=", _operand(left), _operand(right))


def and_(*terms: Expression) -> Expression:
    """Left-deep conjunction of one or more predicates."""
    if not terms:
        raise ValueError("and_() requires at least one term")
    result = terms[0]
    for term in terms[1:]:
        result = And(result, term)
    return result


def or_(*terms: Expression) -> Expression:
    """Left-deep disjunction of one or more predicates."""
    if not terms:
        raise ValueError("or_() requires at least one term")
    result = terms[0]
    for term in terms[1:]:
        result = Or(result, term)
    return result


def not_(term: Expression) -> Not:
    return Not(term)


def is_null_(term: Expression) -> IsNull:
    return IsNull(term)


def is_not_null(term: Expression) -> IsNull:
    return IsNull(term, negated=True)


def add(left, right) -> Arithmetic:
    return Arithmetic("+", _operand(left), _operand(right))


def sub(left, right) -> Arithmetic:
    return Arithmetic("-", _operand(left), _operand(right))


def mul(left, right) -> Arithmetic:
    return Arithmetic("*", _operand(left), _operand(right))


def div(left, right) -> Arithmetic:
    return Arithmetic("/", _operand(left), _operand(right))


def neg(term: Expression) -> Negate:
    return Negate(term)


def in_(operand: Expression, *items, negated: bool = False) -> InList:
    """``operand [NOT] IN (items...)``; raw values become literals."""
    return InList(operand, tuple(_operand(item) for item in items), negated)


def between(operand: Expression, low, high, negated: bool = False) -> Between:
    return Between(operand, _operand(low), _operand(high), negated)


def like(operand: Expression, pattern: str, negated: bool = False) -> Like:
    return Like(operand, pattern, negated)


def count_star() -> Aggregate:
    return Aggregate("COUNT", None)


def count(argument: "Expression | str", distinct: bool = False) -> Aggregate:
    arg = col(argument) if isinstance(argument, str) else argument
    return Aggregate("COUNT", arg, distinct)


def sum_(argument: "Expression | str", distinct: bool = False) -> Aggregate:
    arg = col(argument) if isinstance(argument, str) else argument
    return Aggregate("SUM", arg, distinct)


def avg(argument: "Expression | str", distinct: bool = False) -> Aggregate:
    arg = col(argument) if isinstance(argument, str) else argument
    return Aggregate("AVG", arg, distinct)


def min_(argument: "Expression | str") -> Aggregate:
    arg = col(argument) if isinstance(argument, str) else argument
    return Aggregate("MIN", arg)


def max_(argument: "Expression | str") -> Aggregate:
    arg = col(argument) if isinstance(argument, str) else argument
    return Aggregate("MAX", arg)
