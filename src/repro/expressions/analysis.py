"""Static analysis of predicates: table attribution and atomic-condition
classification.

Two jobs live here:

* splitting a WHERE clause into the paper's ``C1 ∧ C0 ∧ C2`` form —
  conjuncts over R1 only, over both tables, and over R2 only (Section 3);
* classifying atomic conditions into TestFD's Type 1 (``v = c``) and
  Type 2 (``v1 = v2``) shapes (Section 6.3), where ``c`` is a constant or
  host variable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.expressions.ast import (
    ColumnRef,
    Comparison,
    Expression,
    HostVariable,
    Literal,
    column_refs,
)
from repro.expressions.normalize import conjoin, split_conjuncts


def referenced_tables(expression: Expression) -> FrozenSet[str]:
    """The set of correlation names referenced by ``expression``.

    Column references must be qualified by the time analysis runs (binding
    resolves bare columns); an unqualified reference maps to the empty name
    and is reported as ``""``.
    """
    return frozenset(ref.table for ref in column_refs(expression))


@dataclass(frozen=True)
class PredicateSplit:
    """The ``C1 ∧ C0 ∧ C2`` decomposition of a WHERE clause.

    ``c1`` touches only tables in the R1 group, ``c2`` only the R2 group and
    every conjunct of ``c0`` touches both groups (join predicates).  Conjuncts
    referencing no column at all (e.g. ``1 = 1`` or a host-variable-only
    test) are folded into ``c1``; they filter everything or nothing and it
    does not matter which side evaluates them.
    """

    c1: Optional[Expression]
    c0: Optional[Expression]
    c2: Optional[Expression]

    def conjuncts(self) -> Tuple[Expression, ...]:
        return (
            split_conjuncts(self.c1)
            + split_conjuncts(self.c0)
            + split_conjuncts(self.c2)
        )

    def combined(self) -> Optional[Expression]:
        return conjoin(self.conjuncts())


def split_predicate(
    where: Optional[Expression],
    r1_tables: Iterable[str],
    r2_tables: Iterable[str],
) -> PredicateSplit:
    """Split ``where`` into C1 / C0 / C2 against the R1/R2 table partition.

    The split happens at the granularity of *top-level conjuncts*; each
    conjunct (which may itself be a disjunction) is attributed by the union
    of tables it references, as the paper prescribes for conjunctive normal
    form components.
    """
    r1_set = frozenset(r1_tables)
    r2_set = frozenset(r2_tables)
    overlap = r1_set & r2_set
    if overlap:
        raise ValueError(f"tables in both groups: {sorted(overlap)}")

    c1_parts: list[Expression] = []
    c0_parts: list[Expression] = []
    c2_parts: list[Expression] = []
    for conjunct in split_conjuncts(where):
        tables = referenced_tables(conjunct)
        touches_r1 = bool(tables & r1_set)
        touches_r2 = bool(tables & r2_set)
        unknown = tables - r1_set - r2_set
        if unknown:
            raise ValueError(
                f"predicate references tables outside both groups: {sorted(unknown)}"
            )
        if touches_r1 and touches_r2:
            c0_parts.append(conjunct)
        elif touches_r2:
            c2_parts.append(conjunct)
        else:
            # R1-only, or constant-only conjuncts.
            c1_parts.append(conjunct)
    return PredicateSplit(conjoin(c1_parts), conjoin(c0_parts), conjoin(c2_parts))


@dataclass(frozen=True)
class Type1Condition:
    """``v = c``: a column equated with a constant or host variable."""

    column: ColumnRef
    constant: Expression  # Literal or HostVariable


@dataclass(frozen=True)
class Type2Condition:
    """``v1 = v2``: two columns equated."""

    left: ColumnRef
    right: ColumnRef


def classify_atomic(
    condition: Expression,
) -> "Type1Condition | Type2Condition | None":
    """Classify an atomic condition per TestFD's taxonomy.

    Returns a :class:`Type1Condition`, a :class:`Type2Condition`, or ``None``
    when the condition is neither (not an equality, or not column/constant
    shaped).  Host variables count as constants (their value is fixed during
    query evaluation, Section 6.3).
    """
    if not isinstance(condition, Comparison) or condition.op != "=":
        return None
    left, right = condition.left, condition.right
    left_is_col = isinstance(left, ColumnRef)
    right_is_col = isinstance(right, ColumnRef)
    if left_is_col and right_is_col:
        return Type2Condition(left, right)
    if left_is_col and isinstance(right, (Literal, HostVariable)):
        return Type1Condition(left, right)
    if right_is_col and isinstance(left, (Literal, HostVariable)):
        return Type1Condition(right, left)
    return None


def partition_atomics(
    conditions: Sequence[Expression],
) -> Tuple[Tuple[Type1Condition, ...], Tuple[Type2Condition, ...], Tuple[Expression, ...]]:
    """Split atomic conditions into (type-1, type-2, other)."""
    type1: list[Type1Condition] = []
    type2: list[Type2Condition] = []
    other: list[Expression] = []
    for condition in conditions:
        classified = classify_atomic(condition)
        if isinstance(classified, Type1Condition):
            type1.append(classified)
        elif isinstance(classified, Type2Condition):
            type2.append(classified)
        else:
            other.append(condition)
    return tuple(type1), tuple(type2), tuple(other)


def equality_pairs(where: Optional[Expression]) -> Tuple[Tuple[ColumnRef, ColumnRef], ...]:
    """Column-equality pairs among the top-level conjuncts of ``where``.

    Used by derived-FD reasoning and by predicate expansion: ``A.x = B.y``
    as a conjunct means the two columns are interchangeable on qualifying
    rows (both non-NULL there, since UNKNOWN rows are dropped).
    """
    pairs: list[Tuple[ColumnRef, ColumnRef]] = []
    for conjunct in split_conjuncts(where):
        classified = classify_atomic(conjunct)
        if isinstance(classified, Type2Condition):
            pairs.append((classified.left, classified.right))
    return tuple(pairs)


def constant_bindings(where: Optional[Expression]) -> Tuple[Type1Condition, ...]:
    """Type-1 bindings among the top-level conjuncts of ``where``."""
    bindings: list[Type1Condition] = []
    for conjunct in split_conjuncts(where):
        classified = classify_atomic(conjunct)
        if isinstance(classified, Type1Condition):
            bindings.append(classified)
    return tuple(bindings)
