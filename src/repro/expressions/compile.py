"""Compile expression ASTs to column-at-a-time kernels.

The row engine re-walks the :class:`~repro.expressions.ast.Expression` tree
for every tuple.  This module lowers a tree **once per operator** to nested
Python closures that each consume and produce whole columns:

* :func:`compile_scalar` — value expressions; returns a function
  ``(batch, params) -> column`` of SQL values (NULL-propagating, same
  semantics as :func:`repro.expressions.eval.evaluate_scalar`);
* :func:`compile_predicate` — boolean expressions; returns a function
  ``(batch, params) -> truth codes``.

Three-valued logic is encoded per batch as small integers —
``FALSE=0, UNKNOWN=1, TRUE=2`` — so Figure 2's connectives become branch
arithmetic: ``AND = min``, ``OR = max``, ``NOT = 2 - x``.  A row qualifies
(``⌊P⌋``) exactly when its code is :data:`TRUE_CODE`.

Column references are resolved to positions at compile time under the
operator's input layout, with the same qualification/ambiguity rules (and
error messages) as :class:`~repro.expressions.eval.RowScope`.

Aggregation support: :func:`compile_aggregate_arguments` lowers the
arguments of every aggregate in an ``F(AA)`` list, and
:func:`compile_group_expression` lowers the surrounding arithmetic to run
over *per-group* vectors — so ``COUNT(A1) + SUM(A2 + A3)`` costs one column
pass plus one pass over the groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import BindingError, ExecutionError
from repro.expressions.ast import (
    Aggregate,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    HostVariable,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
)
from repro.expressions.eval import like_regex
from repro.sqltypes.truth import FALSE, TRUE, UNKNOWN, Truth
from repro.sqltypes.values import (
    NULL,
    SqlValue,
    sql_add,
    sql_compare_eq,
    sql_compare_ge,
    sql_compare_gt,
    sql_compare_le,
    sql_compare_lt,
    sql_compare_ne,
    sql_div,
    sql_mul,
    sql_neg,
    sql_sub,
)

#: Kleene truth codes: AND = min, OR = max, NOT = 2 - x.
FALSE_CODE = 0
UNKNOWN_CODE = 1
TRUE_CODE = 2

_CODE: Dict[Truth, int] = {FALSE: FALSE_CODE, UNKNOWN: UNKNOWN_CODE, TRUE: TRUE_CODE}
_CODE_VALUE: Dict[int, SqlValue] = {FALSE_CODE: False, UNKNOWN_CODE: NULL, TRUE_CODE: True}

_COMPARATORS = {
    "=": sql_compare_eq,
    "<>": sql_compare_ne,
    "<": sql_compare_lt,
    "<=": sql_compare_le,
    ">": sql_compare_gt,
    ">=": sql_compare_ge,
}

_ARITHMETIC = {"+": sql_add, "-": sql_sub, "*": sql_mul, "/": sql_div}

#: A compiled kernel: (batch, params) -> column (scalar) or codes (predicate).
ScalarKernel = Callable[[object, Optional[Mapping[str, SqlValue]]], Sequence[SqlValue]]
PredicateKernel = Callable[[object, Optional[Mapping[str, SqlValue]]], Sequence[int]]

_PREDICATE_NODES = (Comparison, And, Or, Not, IsNull, InList, Between, Like)


def resolve_column(names: Sequence[str], ref: ColumnRef) -> int:
    """Resolve a column reference to a position under ``names``.

    Same rules as :meth:`RowScope.lookup`: a qualified reference must match
    exactly; a bare one must match exactly one column's bare name.
    """
    if ref.table:
        qualified = ref.qualified
        for i, name in enumerate(names):
            if name == qualified:
                return i
        raise BindingError(f"unknown column: {qualified}")
    candidates = [
        i for i, name in enumerate(names) if name.rsplit(".", 1)[-1] == ref.column
    ]
    if len(candidates) == 1:
        return candidates[0]
    if not candidates:
        raise BindingError(f"unknown column: {ref.column}")
    raise BindingError(
        f"ambiguous column {ref.column}: matches "
        f"{sorted(names[i] for i in candidates)}"
    )


def _broadcast(value: SqlValue) -> ScalarKernel:
    from repro.engine.vector.batch import _Repeat

    return lambda batch, params: _Repeat(value, batch.length)


def compile_scalar(expression: Expression, names: Sequence[str]) -> ScalarKernel:
    """Lower a value expression to a whole-column closure."""
    if isinstance(expression, Literal):
        return _broadcast(expression.value)
    if isinstance(expression, ColumnRef):
        index = resolve_column(names, expression)
        return lambda batch, params: batch.columns[index]
    if isinstance(expression, HostVariable):
        name = expression.name

        def host(batch, params):
            if params is None or name not in params:
                raise ExecutionError(f"unbound host variable :{name}")
            from repro.engine.vector.batch import _Repeat

            return _Repeat(params[name], batch.length)

        return host
    if isinstance(expression, Arithmetic):
        left = compile_scalar(expression.left, names)
        right = compile_scalar(expression.right, names)
        op = _ARITHMETIC[expression.op]
        return lambda batch, params: [
            op(x, y) for x, y in zip(left(batch, params), right(batch, params))
        ]
    if isinstance(expression, Negate):
        operand = compile_scalar(expression.operand, names)
        return lambda batch, params: [sql_neg(v) for v in operand(batch, params)]
    if isinstance(expression, Aggregate):
        raise ExecutionError(
            f"aggregate {expression} cannot be evaluated against a single row"
        )
    if isinstance(expression, _PREDICATE_NODES):
        # A predicate used in value position: TRUE/FALSE/NULL as BOOLEAN.
        predicate = compile_predicate(expression, names)
        return lambda batch, params: [
            _CODE_VALUE[code] for code in predicate(batch, params)
        ]
    raise ExecutionError(f"cannot evaluate expression node {type(expression).__name__}")


def compile_predicate(expression: Expression, names: Sequence[str]) -> PredicateKernel:
    """Lower a boolean expression to a whole-column truth-code closure."""
    if isinstance(expression, Comparison):
        left = compile_scalar(expression.left, names)
        right = compile_scalar(expression.right, names)
        compare = _COMPARATORS[expression.op]
        code = _CODE
        return lambda batch, params: [
            code[compare(x, y)]
            for x, y in zip(left(batch, params), right(batch, params))
        ]
    if isinstance(expression, And):
        left = compile_predicate(expression.left, names)
        right = compile_predicate(expression.right, names)
        return lambda batch, params: [
            x if x < y else y
            for x, y in zip(left(batch, params), right(batch, params))
        ]
    if isinstance(expression, Or):
        left = compile_predicate(expression.left, names)
        right = compile_predicate(expression.right, names)
        return lambda batch, params: [
            x if x > y else y
            for x, y in zip(left(batch, params), right(batch, params))
        ]
    if isinstance(expression, Not):
        operand = compile_predicate(expression.operand, names)
        return lambda batch, params: [2 - x for x in operand(batch, params)]
    if isinstance(expression, IsNull):
        operand = compile_scalar(expression.operand, names)
        if expression.negated:
            return lambda batch, params: [
                FALSE_CODE if v is NULL else TRUE_CODE for v in operand(batch, params)
            ]
        return lambda batch, params: [
            TRUE_CODE if v is NULL else FALSE_CODE for v in operand(batch, params)
        ]
    if isinstance(expression, InList):
        operand = compile_scalar(expression.operand, names)
        items = [compile_scalar(item, names) for item in expression.items]
        negated = expression.negated
        code = _CODE

        def in_list(batch, params):
            values = list(operand(batch, params))
            acc = [FALSE_CODE] * batch.length
            for item in items:
                acc = [
                    a if a > c else c
                    for a, c in zip(
                        acc,
                        (
                            code[sql_compare_eq(x, y)]
                            for x, y in zip(values, item(batch, params))
                        ),
                    )
                ]
            return [2 - a for a in acc] if negated else acc

        return in_list
    if isinstance(expression, Between):
        operand = compile_scalar(expression.operand, names)
        low = compile_scalar(expression.low, names)
        high = compile_scalar(expression.high, names)
        negated = expression.negated
        code = _CODE

        def between(batch, params):
            values = list(operand(batch, params))
            lows = low(batch, params)
            highs = high(batch, params)
            out = []
            for x, lo, hi in zip(values, lows, highs):
                a = code[sql_compare_le(lo, x)]
                b = code[sql_compare_le(x, hi)]
                c = a if a < b else b
                out.append(2 - c if negated else c)
            return out

        return between
    if isinstance(expression, Like):
        operand = compile_scalar(expression.operand, names)
        regex = like_regex(expression.pattern)
        negated = expression.negated

        def like(batch, params):
            out = []
            for v in operand(batch, params):
                if v is NULL:
                    out.append(UNKNOWN_CODE)
                    continue
                if not isinstance(v, str):
                    raise ExecutionError(f"LIKE applied to non-string {v!r}")
                matched = regex.fullmatch(v) is not None
                out.append(
                    FALSE_CODE
                    if matched == negated
                    else TRUE_CODE
                )
            return out

        return like
    if isinstance(expression, Literal):
        value = expression.value
        if value is NULL:
            return lambda batch, params: [UNKNOWN_CODE] * batch.length
        if isinstance(value, bool):
            constant = TRUE_CODE if value else FALSE_CODE
            return lambda batch, params: [constant] * batch.length
        raise ExecutionError(f"literal {value!r} is not a boolean")
    # Anything value-shaped in predicate position (e.g. a BOOLEAN column).
    scalar = compile_scalar(expression, names)

    def coerce(batch, params):
        out = []
        for v in scalar(batch, params):
            if v is NULL:
                out.append(UNKNOWN_CODE)
            elif isinstance(v, bool):
                out.append(TRUE_CODE if v else FALSE_CODE)
            else:
                raise ExecutionError(f"expression {expression} is not a predicate")
        return out

    return coerce


# -- aggregation -------------------------------------------------------------


@dataclass
class CompiledAggregate:
    """One lowered aggregate call: function + compiled argument column."""

    node: Aggregate
    function: str
    distinct: bool
    argument: Optional[ScalarKernel]  # None for COUNT(*)


@dataclass
class GroupVectors:
    """Per-group evaluation context for the ``F(AA)`` arithmetic.

    ``source`` is the aggregation input batch; ``rep_indexes[g]`` is the
    input row standing for group ``g`` (its first row — only sound for
    grouping columns, which is all SQL permits outside aggregates);
    ``agg_columns[slot]`` holds one value per group for the slot's
    aggregate.
    """

    source: object
    rep_indexes: List[int]
    agg_columns: List[List[SqlValue]]

    @property
    def n(self) -> int:
        return len(self.rep_indexes)


GroupKernel = Callable[[GroupVectors, Optional[Mapping[str, SqlValue]]], Sequence[SqlValue]]


def compile_aggregate_arguments(
    specs: Sequence, names: Sequence[str]
) -> Tuple[List[CompiledAggregate], Dict[Aggregate, int]]:
    """Lower every distinct aggregate appearing in ``specs``.

    Textually identical aggregates (``Aggregate`` is a frozen dataclass)
    share one slot, so ``SUM(v) + SUM(v)`` scans its argument once.
    """
    from repro.expressions.ast import aggregates as collect_aggregates

    compiled: List[CompiledAggregate] = []
    slots: Dict[Aggregate, int] = {}
    for spec in specs:
        for node in collect_aggregates(spec.expression):
            if node in slots:
                continue
            slots[node] = len(compiled)
            compiled.append(
                CompiledAggregate(
                    node,
                    node.function,
                    node.distinct,
                    None
                    if node.argument is None
                    else compile_scalar(node.argument, names),
                )
            )
    return compiled, slots


def compile_group_expression(
    expression: Expression,
    names: Sequence[str],
    slots: Dict[Aggregate, int],
) -> GroupKernel:
    """Lower an ``fᵢ(AA)`` — arithmetic over aggregates — to a per-group
    vector closure (mirrors
    :func:`repro.engine.aggregation.evaluate_aggregate_expression`)."""
    if isinstance(expression, Aggregate):
        slot = slots[expression]
        return lambda groups, params: groups.agg_columns[slot]
    if isinstance(expression, Arithmetic):
        left = compile_group_expression(expression.left, names, slots)
        right = compile_group_expression(expression.right, names, slots)
        op = _ARITHMETIC[expression.op]
        return lambda groups, params: [
            op(x, y) for x, y in zip(left(groups, params), right(groups, params))
        ]
    if isinstance(expression, Negate):
        operand = compile_group_expression(expression.operand, names, slots)
        return lambda groups, params: [sql_neg(v) for v in operand(groups, params)]
    if isinstance(expression, Literal):
        value = expression.value
        return lambda groups, params: [value] * groups.n
    if isinstance(expression, HostVariable):
        name = expression.name

        def host(groups, params):
            if params is None or name not in params:
                raise ExecutionError(f"unbound host variable :{name}")
            return [params[name]] * groups.n

        return host
    if isinstance(expression, ColumnRef):
        index = resolve_column(names, expression)
        return lambda groups, params: [
            groups.source.columns[index][i] for i in groups.rep_indexes
        ]
    raise ExecutionError(
        f"unsupported node in aggregation expression: {type(expression).__name__}"
    )
