"""Expression evaluation under strict SQL2 three-valued logic.

An expression is evaluated against a *row scope*: a mapping from column
names to SQL values.  Scopes accept qualified names ("E.DeptID"); an
unqualified reference resolves when exactly one scope entry has that column
name.  Host variables are supplied through a separate ``params`` mapping.

Two entry points:

* :func:`evaluate_scalar` — value-producing expressions (NULL-propagating);
* :func:`evaluate_predicate` — boolean expressions, returning a
  :class:`~repro.sqltypes.truth.Truth`.

Aggregates are *not* evaluated here — they only make sense against a group
of rows and are handled by :mod:`repro.engine.aggregation`.  Encountering
one raises :class:`ExecutionError`.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import BindingError, ExecutionError
from repro.expressions.ast import (
    Aggregate,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    HostVariable,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
)
from repro.sqltypes.truth import (
    FALSE,
    TRUE,
    Truth,
    from_bool,
    truth_and,
    truth_not,
    truth_or,
)
from repro.sqltypes.values import (
    NULL,
    SqlValue,
    is_null,
    sql_add,
    sql_compare_eq,
    sql_compare_ge,
    sql_compare_gt,
    sql_compare_le,
    sql_compare_lt,
    sql_compare_ne,
    sql_div,
    sql_mul,
    sql_neg,
    sql_sub,
)

def like_regex(pattern: str):
    """Compile a SQL LIKE pattern (``%`` any run, ``_`` one char) to a regex."""
    import re

    pieces = []
    for ch in pattern:
        if ch == "%":
            pieces.append(".*")
        elif ch == "_":
            pieces.append(".")
        else:
            pieces.append(re.escape(ch))
    return re.compile("".join(pieces), flags=re.DOTALL)


def _like_match(value: str, pattern: str) -> bool:
    """SQL LIKE: ``%`` matches any run, ``_`` matches one character."""
    return like_regex(pattern).fullmatch(value) is not None


_COMPARATORS = {
    "=": sql_compare_eq,
    "<>": sql_compare_ne,
    "<": sql_compare_lt,
    "<=": sql_compare_le,
    ">": sql_compare_gt,
    ">=": sql_compare_ge,
}

_ARITHMETIC = {
    "+": sql_add,
    "-": sql_sub,
    "*": sql_mul,
    "/": sql_div,
}


class RowScope:
    """Resolves column references against a row's named values.

    ``values`` maps *qualified* names ("E.DeptID") to SQL values.  Lookups of
    unqualified names succeed when exactly one qualified entry matches the
    bare column name; ambiguity and misses raise :class:`BindingError`.
    """

    __slots__ = ("_values", "_by_bare")

    def __init__(self, values: Mapping[str, SqlValue]) -> None:
        self._values = dict(values)
        by_bare: dict[str, list[str]] = {}
        for qualified in self._values:
            bare = qualified.rsplit(".", 1)[-1]
            by_bare.setdefault(bare, []).append(qualified)
        self._by_bare = by_bare

    def lookup(self, ref: ColumnRef) -> SqlValue:
        if ref.table:
            qualified = ref.qualified
            if qualified in self._values:
                return self._values[qualified]
            raise BindingError(f"unknown column: {qualified}")
        candidates = self._by_bare.get(ref.column, [])
        if len(candidates) == 1:
            return self._values[candidates[0]]
        if not candidates:
            raise BindingError(f"unknown column: {ref.column}")
        raise BindingError(
            f"ambiguous column {ref.column}: matches {sorted(candidates)}"
        )

    def names(self) -> "tuple[str, ...]":
        return tuple(self._values)

    @classmethod
    def from_pairs(cls, names, values) -> "RowScope":
        """Build a scope by zipping parallel name/value sequences."""
        return cls(dict(zip(names, values)))


class ReusableRowScope:
    """A scope over a fixed column layout, rebound to a new row per lookup.

    Building a :class:`RowScope` allocates a dict (and a bare-name index)
    per row; inner loops that evaluate the same expression against millions
    of rows under one layout pay that allocation millions of times.  This
    variant resolves the layout once and :meth:`bind` merely swaps the row
    tuple — same resolution rules, same error messages, O(1) rebinding.
    """

    __slots__ = ("_names", "_qualified", "_by_bare", "_row")

    def __init__(self, names) -> None:
        self._names = tuple(names)
        # Duplicate qualified names: last one wins, matching dict(zip(...)).
        self._qualified: dict[str, int] = {}
        for i, name in enumerate(self._names):
            self._qualified[name] = i
        by_bare: dict[str, list[int]] = {}
        for qualified, i in self._qualified.items():
            bare = qualified.rsplit(".", 1)[-1]
            by_bare.setdefault(bare, []).append(i)
        self._by_bare = by_bare
        self._row: "tuple[SqlValue, ...]" = ()

    def bind(self, row) -> "ReusableRowScope":
        """Point the scope at a new row; returns self for call chaining."""
        self._row = row
        return self

    def lookup(self, ref: ColumnRef) -> SqlValue:
        if ref.table:
            index = self._qualified.get(ref.qualified)
            if index is None:
                raise BindingError(f"unknown column: {ref.qualified}")
            return self._row[index]
        candidates = self._by_bare.get(ref.column, ())
        if len(candidates) == 1:
            return self._row[candidates[0]]
        if not candidates:
            raise BindingError(f"unknown column: {ref.column}")
        raise BindingError(
            f"ambiguous column {ref.column}: matches "
            f"{sorted(self._names[i] for i in candidates)}"
        )

    def names(self) -> "tuple[str, ...]":
        return self._names


def evaluate_scalar(
    expression: Expression,
    scope: RowScope,
    params: Optional[Mapping[str, SqlValue]] = None,
) -> SqlValue:
    """Evaluate a value-producing expression against one row."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        return scope.lookup(expression)
    if isinstance(expression, HostVariable):
        if params is None or expression.name not in params:
            raise ExecutionError(f"unbound host variable :{expression.name}")
        return params[expression.name]
    if isinstance(expression, Arithmetic):
        left = evaluate_scalar(expression.left, scope, params)
        right = evaluate_scalar(expression.right, scope, params)
        return _ARITHMETIC[expression.op](left, right)
    if isinstance(expression, Negate):
        return sql_neg(evaluate_scalar(expression.operand, scope, params))
    if isinstance(expression, Aggregate):
        raise ExecutionError(
            f"aggregate {expression} cannot be evaluated against a single row"
        )
    if isinstance(expression, (Comparison, And, Or, Not, IsNull, InList, Between, Like)):
        # A predicate used in value position: deliver TRUE/FALSE/NULL the way
        # SQL's BOOLEAN type would.
        truth = evaluate_predicate(expression, scope, params)
        if truth is TRUE:
            return True
        if truth is FALSE:
            return False
        return NULL
    raise ExecutionError(f"cannot evaluate expression node {type(expression).__name__}")


def evaluate_predicate(
    expression: Expression,
    scope: RowScope,
    params: Optional[Mapping[str, SqlValue]] = None,
) -> Truth:
    """Evaluate a boolean expression to a three-valued truth value."""
    if isinstance(expression, Comparison):
        left = evaluate_scalar(expression.left, scope, params)
        right = evaluate_scalar(expression.right, scope, params)
        return _COMPARATORS[expression.op](left, right)
    if isinstance(expression, And):
        return truth_and(
            evaluate_predicate(expression.left, scope, params),
            evaluate_predicate(expression.right, scope, params),
        )
    if isinstance(expression, Or):
        return truth_or(
            evaluate_predicate(expression.left, scope, params),
            evaluate_predicate(expression.right, scope, params),
        )
    if isinstance(expression, Not):
        return truth_not(evaluate_predicate(expression.operand, scope, params))
    if isinstance(expression, IsNull):
        value = evaluate_scalar(expression.operand, scope, params)
        result = from_bool(is_null(value))
        return truth_not(result) if expression.negated else result
    if isinstance(expression, InList):
        operand = evaluate_scalar(expression.operand, scope, params)
        result = FALSE
        for item in expression.items:
            value = evaluate_scalar(item, scope, params)
            result = truth_or(result, sql_compare_eq(operand, value))
            if result is TRUE:
                break
        return truth_not(result) if expression.negated else result
    if isinstance(expression, Between):
        operand = evaluate_scalar(expression.operand, scope, params)
        low = evaluate_scalar(expression.low, scope, params)
        high = evaluate_scalar(expression.high, scope, params)
        result = truth_and(
            sql_compare_le(low, operand), sql_compare_le(operand, high)
        )
        return truth_not(result) if expression.negated else result
    if isinstance(expression, Like):
        operand = evaluate_scalar(expression.operand, scope, params)
        if is_null(operand):
            from repro.sqltypes.truth import UNKNOWN

            return UNKNOWN
        if not isinstance(operand, str):
            raise ExecutionError(f"LIKE applied to non-string {operand!r}")
        result = from_bool(_like_match(operand, expression.pattern))
        return truth_not(result) if expression.negated else result
    if isinstance(expression, Literal):
        value = expression.value
        if is_null(value):
            from repro.sqltypes.truth import UNKNOWN

            return UNKNOWN
        if isinstance(value, bool):
            return from_bool(value)
        raise ExecutionError(f"literal {value!r} is not a boolean")
    # Anything value-shaped in predicate position (e.g. a BOOLEAN column).
    value = evaluate_scalar(expression, scope, params)
    if is_null(value):
        from repro.sqltypes.truth import UNKNOWN

        return UNKNOWN
    if isinstance(value, bool):
        return from_bool(value)
    raise ExecutionError(f"expression {expression} is not a predicate")


def qualifies(
    expression: Optional[Expression],
    scope: RowScope,
    params: Optional[Mapping[str, SqlValue]] = None,
) -> bool:
    """WHERE-clause admission test: ``⌊condition⌋``; ``None`` means no filter."""
    if expression is None:
        return True
    return evaluate_predicate(expression, scope, params).is_true()
