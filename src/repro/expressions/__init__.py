"""Expression AST, three-valued evaluation, normalization, and analysis."""

from repro.expressions.ast import (
    Aggregate,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    HostVariable,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    aggregates,
    column_refs,
    contains_aggregate,
    host_variables,
    transform_expression,
    walk,
)
from repro.expressions.eval import (
    RowScope,
    evaluate_predicate,
    evaluate_scalar,
    qualifies,
)
from repro.expressions.normalize import (
    conjoin,
    disjoin,
    split_conjuncts,
    split_disjuncts,
    to_cnf,
    to_dnf,
    to_nnf,
)
from repro.expressions.analysis import (
    PredicateSplit,
    Type1Condition,
    Type2Condition,
    classify_atomic,
    constant_bindings,
    equality_pairs,
    partition_atomics,
    referenced_tables,
    split_predicate,
)

__all__ = [
    "Aggregate", "And", "Arithmetic", "Between", "ColumnRef", "Comparison",
    "Expression", "HostVariable", "InList", "IsNull", "Like", "Literal",
    "Negate", "Not", "Or", "aggregates", "column_refs", "contains_aggregate",
    "host_variables", "transform_expression", "walk",
    "RowScope", "evaluate_predicate", "evaluate_scalar", "qualifies",
    "conjoin", "disjoin", "split_conjuncts", "split_disjuncts",
    "to_cnf", "to_dnf", "to_nnf",
    "PredicateSplit", "Type1Condition", "Type2Condition", "classify_atomic",
    "constant_bindings", "equality_pairs", "partition_atomics",
    "referenced_tables", "split_predicate",
]
