"""Predicate normalization: NNF, CNF, DNF and conjunct handling.

TestFD (Section 6.3 of the paper) requires the combined condition
``C1 ∧ C0 ∧ C2 ∧ T1 ∧ T2`` in *conjunctive normal form* (Step 1), filtered
(Step 2), and then converted to *disjunctive normal form* (Step 3).  The
functions here implement those conversions over the expression AST.

DNF expansion is exponential in the worst case; :func:`to_dnf` takes a
``max_terms`` guard so the optimizer can bail out (and simply refuse the
transformation) on pathological predicates rather than hang.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.errors import TransformationError
from repro.expressions.ast import (
    And,
    Between,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)

_NEGATED_COMPARISON = {
    "=": "<>",
    "<>": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


def to_nnf(expression: Expression) -> Expression:
    """Push NOT inward (negation normal form).

    Comparisons absorb the negation by flipping the operator, which is valid
    under three-valued logic for the *floor* interpretation used by WHERE:
    ``NOT (a < b)`` and ``a >= b`` evaluate to the same Truth on all inputs
    (UNKNOWN maps to UNKNOWN either way).
    """
    if isinstance(expression, Not):
        inner = expression.operand
        if isinstance(inner, Not):
            return to_nnf(inner.operand)
        if isinstance(inner, And):
            return Or(to_nnf(Not(inner.left)), to_nnf(Not(inner.right)))
        if isinstance(inner, Or):
            return And(to_nnf(Not(inner.left)), to_nnf(Not(inner.right)))
        if isinstance(inner, Comparison):
            return Comparison(_NEGATED_COMPARISON[inner.op], inner.left, inner.right)
        if isinstance(inner, IsNull):
            return IsNull(inner.operand, negated=not inner.negated)
        if isinstance(inner, InList):
            return InList(inner.operand, inner.items, negated=not inner.negated)
        if isinstance(inner, Between):
            return Between(inner.operand, inner.low, inner.high, negated=not inner.negated)
        if isinstance(inner, Like):
            return Like(inner.operand, inner.pattern, negated=not inner.negated)
        return expression
    if isinstance(expression, And):
        return And(to_nnf(expression.left), to_nnf(expression.right))
    if isinstance(expression, Or):
        return Or(to_nnf(expression.left), to_nnf(expression.right))
    return expression


def split_conjuncts(expression: Optional[Expression]) -> Tuple[Expression, ...]:
    """Flatten a conjunction into its top-level conjuncts (None -> empty)."""
    if expression is None:
        return ()
    if isinstance(expression, And):
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return (expression,)


def split_disjuncts(expression: Optional[Expression]) -> Tuple[Expression, ...]:
    """Flatten a disjunction into its top-level disjuncts (None -> empty)."""
    if expression is None:
        return ()
    if isinstance(expression, Or):
        return split_disjuncts(expression.left) + split_disjuncts(expression.right)
    return (expression,)


def conjoin(terms: Iterable[Expression]) -> Optional[Expression]:
    """Rebuild a conjunction from conjuncts; empty input yields ``None``."""
    result: Optional[Expression] = None
    for term in terms:
        result = term if result is None else And(result, term)
    return result


def disjoin(terms: Iterable[Expression]) -> Optional[Expression]:
    """Rebuild a disjunction from disjuncts; empty input yields ``None``."""
    result: Optional[Expression] = None
    for term in terms:
        result = term if result is None else Or(result, term)
    return result


def to_cnf(expression: Expression, max_terms: int = 4096) -> Tuple[Tuple[Expression, ...], ...]:
    """Conjunctive normal form as a tuple of clauses (each a disjunct tuple).

    ``(D1, D2, ...)`` where each ``Di`` is a tuple of atomic conditions whose
    disjunction is the clause — the exact shape Step 1 of TestFD consumes.
    """
    nnf = to_nnf(expression)
    clauses = _cnf_clauses(nnf, max_terms)
    return tuple(tuple(clause) for clause in clauses)


def _cnf_clauses(expression: Expression, max_terms: int) -> List[List[Expression]]:
    if isinstance(expression, And):
        left = _cnf_clauses(expression.left, max_terms)
        right = _cnf_clauses(expression.right, max_terms)
        combined = left + right
        if len(combined) > max_terms:
            raise TransformationError("CNF expansion exceeded max_terms")
        return combined
    if isinstance(expression, Or):
        left = _cnf_clauses(expression.left, max_terms)
        right = _cnf_clauses(expression.right, max_terms)
        # (A1 ∧ A2) ∨ (B1 ∧ B2) -> ∧ over all pairwise disjunctions.
        product: List[List[Expression]] = []
        for left_clause in left:
            for right_clause in right:
                product.append(list(left_clause) + list(right_clause))
                if len(product) > max_terms:
                    raise TransformationError("CNF expansion exceeded max_terms")
        return product
    return [[expression]]


def to_dnf(expression: Expression, max_terms: int = 4096) -> Tuple[Tuple[Expression, ...], ...]:
    """Disjunctive normal form as a tuple of conjunctive components.

    ``(E1, E2, ...)`` where each ``Ei`` is a tuple of atomic conditions whose
    conjunction is the component — the shape Step 3 of TestFD consumes.
    """
    nnf = to_nnf(expression)
    components = _dnf_components(nnf, max_terms)
    return tuple(tuple(component) for component in components)


def _dnf_components(expression: Expression, max_terms: int) -> List[List[Expression]]:
    if isinstance(expression, Or):
        left = _dnf_components(expression.left, max_terms)
        right = _dnf_components(expression.right, max_terms)
        combined = left + right
        if len(combined) > max_terms:
            raise TransformationError("DNF expansion exceeded max_terms")
        return combined
    if isinstance(expression, And):
        left = _dnf_components(expression.left, max_terms)
        right = _dnf_components(expression.right, max_terms)
        product: List[List[Expression]] = []
        for left_component in left:
            for right_component in right:
                product.append(list(left_component) + list(right_component))
                if len(product) > max_terms:
                    raise TransformationError("DNF expansion exceeded max_terms")
        return product
    return [[expression]]


def cnf_from_clauses(clauses: Iterable[Iterable[Expression]]) -> Optional[Expression]:
    """Rebuild an expression from CNF clause structure."""
    conjuncts = []
    for clause in clauses:
        disjunction = disjoin(list(clause))
        if disjunction is not None:
            conjuncts.append(disjunction)
    return conjoin(conjuncts)


def is_always_true_literal(expression: Expression) -> bool:
    """Detect the trivial TRUE literal (used to prune rebuilt predicates)."""
    return isinstance(expression, Literal) and expression.value is True
