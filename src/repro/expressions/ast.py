"""Scalar and boolean expression AST.

These nodes represent the search conditions (C1, C0, C2 in the paper's
notation), CHECK/assertion constraints, and the arithmetic aggregation
expressions ``F(AA)`` such as ``COUNT(A1) + SUM(A2 + A3)``.

Nodes are immutable and hashable so they can be used as dictionary keys
during normalization and TestFD's closure computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sqltypes.values import SqlValue

#: Comparison operator spellings accepted throughout the engine.
COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")
ARITHMETIC_OPS = ("+", "-", "*", "/")
AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class Expression:
    """Base class of all expression nodes."""

    def children(self) -> Tuple["Expression", ...]:
        return ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value (including NULL)."""

    value: SqlValue

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly qualified) column reference, e.g. ``E.DeptID``."""

    table: str  # correlation name / table alias; "" when unqualified
    column: str

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column

    def __str__(self) -> str:
        return self.qualified


@dataclass(frozen=True)
class HostVariable(Expression):
    """A host variable (``:name``) — fixed at query-evaluation time.

    TestFD treats host variables like constants (Section 6.3): their value is
    fixed while the query runs.
    """

    name: str

    def __str__(self) -> str:
        return f":{self.name}"


@dataclass(frozen=True)
class Comparison(Expression):
    """A comparison ``left op right`` evaluated under three-valued logic."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"bad comparison operator: {self.op!r}")

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Expression):
    left: Expression
    right: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Expression):
    left: Expression
    right: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class IsNull(Expression):
    """``operand IS [NOT] NULL`` — always two-valued."""

    operand: Expression
    negated: bool = False

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        middle = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {middle})"


@dataclass(frozen=True)
class InList(Expression):
    """``operand [NOT] IN (item, ...)`` with value-list items.

    Defined as the disjunction of equalities, so its three-valued behaviour
    follows from Figure 2: a NULL operand (or a NULL item that would have
    been the only match) yields UNKNOWN.
    """

    operand: Expression
    items: Tuple[Expression, ...]
    negated: bool = False

    def __init__(
        self, operand: Expression, items: "tuple[Expression, ...] | list", negated: bool = False
    ) -> None:
        object.__setattr__(self, "operand", operand)
        object.__setattr__(self, "items", tuple(items))
        object.__setattr__(self, "negated", negated)
        if not self.items:
            raise ValueError("IN requires at least one item")

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,) + self.items

    def __str__(self) -> str:
        middle = "NOT IN" if self.negated else "IN"
        inner = ", ".join(str(item) for item in self.items)
        return f"({self.operand} {middle} ({inner}))"


@dataclass(frozen=True)
class InSubquery(Expression):
    """``operand [NOT] IN (SELECT ...)`` — an *uncorrelated* subquery.

    The ``subquery`` is an opaque parsed SELECT (the expression layer does
    not depend on the parser).  The session resolves it before execution by
    materializing the subquery once and rewriting this node into an
    :class:`InList` (whose NULL-item semantics reproduce SQL's three-valued
    IN behaviour exactly) — see
    :meth:`repro.session.Session._resolve_subqueries`.  Reaching the
    evaluator unresolved is an error; correlated subqueries are rejected at
    resolution time.
    """

    operand: Expression
    subquery: object
    negated: bool = False

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        middle = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {middle} (SELECT ...))"


@dataclass(frozen=True)
class Between(Expression):
    """``operand [NOT] BETWEEN low AND high`` ≡ ``low <= operand AND
    operand <= high`` (three-valued)."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand, self.low, self.high)

    def __str__(self) -> str:
        middle = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand} {middle} {self.low} AND {self.high})"


@dataclass(frozen=True)
class Like(Expression):
    """``operand [NOT] LIKE 'pattern'`` with SQL ``%``/``_`` wildcards.

    The pattern is a literal string (SQL2 allows expressions; the paper
    never needs them).  NULL operand yields UNKNOWN.
    """

    operand: Expression
    pattern: str
    negated: bool = False

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        middle = "NOT LIKE" if self.negated else "LIKE"
        escaped = self.pattern.replace("'", "''")
        return f"({self.operand} {middle} '{escaped}')"


@dataclass(frozen=True)
class Arithmetic(Expression):
    """``left op right`` for op in ``+ - * /`` (NULL-propagating)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in ARITHMETIC_OPS:
            raise ValueError(f"bad arithmetic operator: {self.op!r}")

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Negate(Expression):
    operand: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Aggregate(Expression):
    """An aggregate function application, e.g. ``SUM(A.Usage)``.

    ``argument`` is ``None`` only for ``COUNT(*)``.  Aggregates may appear
    inside arithmetic (``COUNT(A1) + SUM(A2 + A3)``), matching the paper's
    definition of ``F[AA]``.
    """

    function: str
    argument: "Expression | None"
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"bad aggregate function: {self.function!r}")
        if self.argument is None and self.function != "COUNT":
            raise ValueError(f"{self.function}(*) is not valid SQL")

    def children(self) -> Tuple[Expression, ...]:
        return (self.argument,) if self.argument is not None else ()

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.function}({prefix}{inner})"


def transform_expression(expression: Expression, visit) -> Expression:
    """Rebuild an expression tree through a visitor.

    ``visit(node)`` returns a replacement expression, or ``None`` to mean
    "recurse into the children and rebuild me".  This is the single place
    that knows how to reconstruct every node type — rewriters (alias
    requalification, VALUE substitution, view-column inlining, …) supply
    only their interesting cases.
    """
    replacement = visit(expression)
    if replacement is not None:
        return replacement

    def recurse(node: Expression) -> Expression:
        return transform_expression(node, visit)

    if isinstance(expression, Comparison):
        return Comparison(expression.op, recurse(expression.left), recurse(expression.right))
    if isinstance(expression, And):
        return And(recurse(expression.left), recurse(expression.right))
    if isinstance(expression, Or):
        return Or(recurse(expression.left), recurse(expression.right))
    if isinstance(expression, Not):
        return Not(recurse(expression.operand))
    if isinstance(expression, IsNull):
        return IsNull(recurse(expression.operand), expression.negated)
    if isinstance(expression, InList):
        return InList(
            recurse(expression.operand),
            tuple(recurse(item) for item in expression.items),
            expression.negated,
        )
    if isinstance(expression, Between):
        return Between(
            recurse(expression.operand),
            recurse(expression.low),
            recurse(expression.high),
            expression.negated,
        )
    if isinstance(expression, Like):
        return Like(recurse(expression.operand), expression.pattern, expression.negated)
    if isinstance(expression, InSubquery):
        return InSubquery(
            recurse(expression.operand), expression.subquery, expression.negated
        )
    if isinstance(expression, Arithmetic):
        return Arithmetic(expression.op, recurse(expression.left), recurse(expression.right))
    if isinstance(expression, Negate):
        return Negate(recurse(expression.operand))
    if isinstance(expression, Aggregate):
        argument = recurse(expression.argument) if expression.argument is not None else None
        return Aggregate(expression.function, argument, expression.distinct)
    # Leaves: Literal, ColumnRef, HostVariable.
    return expression


def walk(expression: Expression):
    """Yield ``expression`` and all descendants, pre-order."""
    yield expression
    for child in expression.children():
        yield from walk(child)


def column_refs(expression: Expression) -> Tuple[ColumnRef, ...]:
    """All column references in ``expression``, in syntactic order."""
    return tuple(node for node in walk(expression) if isinstance(node, ColumnRef))


def aggregates(expression: Expression) -> Tuple[Aggregate, ...]:
    """All aggregate applications in ``expression``, in syntactic order."""
    return tuple(node for node in walk(expression) if isinstance(node, Aggregate))


def contains_aggregate(expression: Expression) -> bool:
    return any(isinstance(node, Aggregate) for node in walk(expression))


def host_variables(expression: Expression) -> Tuple[HostVariable, ...]:
    return tuple(node for node in walk(expression) if isinstance(node, HostVariable))
