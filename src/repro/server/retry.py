"""Client-side retry with jittered exponential backoff.

The admission contract is reject-don't-queue: a loaded server answers
with :class:`~repro.errors.AdmissionRejected` (carrying a ``retry_after``
hint) instead of making the caller wait inside the server.  The waiting
therefore happens *here*, on the client's own time:
:func:`call_with_backoff` retries the callable with exponentially growing,
jittered delays — never sleeping less than the server's hint — until it
succeeds, the deadline passes, or the attempt budget runs out.

Jitter is full-range (``delay * uniform(0.5, 1.0)`` around the doubling
schedule) from a caller-supplied seeded RNG, so concurrent clients
decorrelate their retries *and* tests replay the exact schedule.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, TypeVar

from repro.errors import AdmissionRejected

T = TypeVar("T")


def call_with_backoff(
    fn: Callable[[], T],
    *,
    attempts: int = 8,
    base_delay: float = 0.01,
    factor: float = 2.0,
    max_delay: float = 1.0,
    deadline_seconds: Optional[float] = None,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> T:
    """Call ``fn`` until it is admitted; backoff between rejections.

    Only :class:`~repro.errors.AdmissionRejected` is retried — every
    other error (including the resource errors a *running* query can
    raise) propagates immediately: admission rejection means "try again
    later", a typed execution failure means "this query failed".

    The sleep before attempt *k* is
    ``max(hint, min(max_delay, base_delay * factor**k) * jitter)`` where
    ``hint`` is the server's ``retry_after`` and ``jitter`` is drawn
    uniformly from [0.5, 1.0].  ``sleep``/``clock`` are injectable so
    tests run instantly and deterministically.

    Raises the last :class:`AdmissionRejected` when ``attempts`` are
    exhausted or ``deadline_seconds`` has passed.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    generator = rng if rng is not None else random.Random(seed)
    started = clock()
    last: Optional[AdmissionRejected] = None
    for attempt in range(attempts):
        try:
            return fn()
        except AdmissionRejected as error:
            last = error
            if attempt == attempts - 1:
                break
            delay = min(max_delay, base_delay * (factor ** attempt))
            delay = max(error.retry_after, delay * generator.uniform(0.5, 1.0))
            if (
                deadline_seconds is not None
                and clock() - started + delay > deadline_seconds
            ):
                break
            sleep(delay)
    assert last is not None
    raise last
