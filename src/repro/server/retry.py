"""Client-side retry with jittered exponential backoff.

The admission contract is reject-don't-queue: a loaded server answers
with :class:`~repro.errors.AdmissionRejected` (carrying a ``retry_after``
hint) instead of making the caller wait inside the server.  The waiting
therefore happens *here*, on the client's own time:
:func:`call_with_backoff` retries the callable with exponentially growing,
jittered delays — never sleeping less than the server's hint — until it
succeeds, the deadline passes, or the attempt budget runs out.

The shard RPC layer (:mod:`repro.engine.shardrpc`) reuses the same
helper with ``retry_on=(ShardUnavailable, WireFormatError)``: any error
type carrying an optional ``retry_after`` attribute plugs in, and the
``on_retry`` hook lets callers meter every backoff (the RPC retry
counters in :class:`~repro.engine.stats.ExchangeStats` come from it).

Jitter is full-range (``delay * uniform(0.5, 1.0)`` around the doubling
schedule) from a caller-supplied seeded RNG, so concurrent clients
decorrelate their retries *and* tests replay the exact schedule.

Edge cases pinned by tests (and relied on by the RPC layer):

* ``attempts=1`` never sleeps — the single attempt either succeeds or
  raises immediately; there is no backoff before a retry that will
  never happen.
* a ``retry_after`` hint larger than the remaining deadline fails fast:
  the helper raises the last error instead of oversleeping past
  ``deadline_seconds`` (the sleep-then-discover-it-was-pointless
  anti-pattern).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.errors import AdmissionRejected

T = TypeVar("T")


def call_with_backoff(
    fn: Callable[[], T],
    *,
    attempts: int = 8,
    base_delay: float = 0.01,
    factor: float = 2.0,
    max_delay: float = 1.0,
    deadline_seconds: Optional[float] = None,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    retry_on: Tuple[Type[BaseException], ...] = (AdmissionRejected,),
    on_retry: Optional[Callable[[BaseException, float], None]] = None,
) -> T:
    """Call ``fn`` until it succeeds; backoff between retryable failures.

    Only errors matching ``retry_on`` (by default
    :class:`~repro.errors.AdmissionRejected`) are retried — every other
    error (including the resource errors a *running* query can raise)
    propagates immediately: a retryable rejection means "try again
    later", a typed execution failure means "this query failed".

    The sleep before attempt *k* is
    ``max(hint, min(max_delay, base_delay * factor**k) * jitter)`` where
    ``hint`` is the error's ``retry_after`` attribute (0 when absent) and
    ``jitter`` is drawn uniformly from [0.5, 1.0].  ``sleep``/``clock``
    are injectable so tests run instantly and deterministically.
    ``on_retry(error, delay)`` fires once per backoff actually taken —
    never on the final failure — so callers can meter retries.

    Raises the last retryable error when ``attempts`` are exhausted or
    ``deadline_seconds`` has passed (fail fast: the helper never sleeps
    past the deadline just to discover it expired).
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    generator = rng if rng is not None else random.Random(seed)
    started = clock()
    last: Optional[BaseException] = None
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on as error:
            last = error
            if attempt == attempts - 1:
                break
            delay = min(max_delay, base_delay * (factor ** attempt))
            hint = float(getattr(error, "retry_after", 0.0) or 0.0)
            delay = max(hint, delay * generator.uniform(0.5, 1.0))
            if (
                deadline_seconds is not None
                and clock() - started + delay > deadline_seconds
            ):
                break
            if on_retry is not None:
                on_retry(error, delay)
            sleep(delay)
    assert last is not None
    raise last
