"""Deterministic chaos harness for the multi-session server.

N threads, one per server session, each running a *seeded* mix of

* snapshot reads (grouped-aggregate SELECTs over a parent/child schema),
* writes (INSERTs into per-session key ranges, cross-session DELETEs
  that exercise the FK RESTRICT path),
* cancellations (a sibling thread flips the session's token mid-query),
* injected faults (session-scoped kernel/write faults armed on the live
  injector — including mid-write crashes on the commit path).

Determinism: every thread owns ``random.Random(seed * 1000 + index)``,
so the *operation schedule* of each thread is a pure function of the
seed.  The thread interleaving is of course nondeterministic — that is
the point — but the consistency oracle is interleaving-independent:

    every read must equal a **serial replay** of the server's write log
    at the read's pinned epoch, bit for bit (value *and* type identity).

The harness records ``(sql, epoch, rows)`` per read, then replays the
write log incrementally on a fresh database (same engine configuration),
re-runs each pinned query serially at its epoch, and compares multisets
with :func:`repro.sqltypes.values.group_key` — the same strict identity
the row/vector differential harness uses.  Any divergence is a snapshot
isolation bug, not test flakiness.
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.catalog.catalog import Database
from repro.engine import faults
from repro.engine.executor import ExecutorConfig
from repro.errors import ReproError
from repro.parser.binder import execute_statement
from repro.parser.parser import parse_statement
from repro.server.server import Server
from repro.session import Session
from repro.sqltypes.values import group_key

SETUP_SQL: Tuple[str, ...] = (
    "CREATE TABLE Dept (DeptID INTEGER PRIMARY KEY, Budget INTEGER)",
    "CREATE TABLE Emp (EmpID INTEGER PRIMARY KEY, DeptID INTEGER, "
    "Salary INTEGER, FOREIGN KEY (DeptID) REFERENCES Dept)",
)

#: Read pool: each hits the planner's interesting paths (eager/standard
#: group-by placement, joins, scalar aggregates).
READ_SQL: Tuple[str, ...] = (
    "SELECT Dept.DeptID, COUNT(Emp.EmpID) FROM Emp, Dept "
    "WHERE Emp.DeptID = Dept.DeptID GROUP BY Dept.DeptID",
    "SELECT Dept.DeptID, SUM(Emp.Salary) FROM Emp, Dept "
    "WHERE Emp.DeptID = Dept.DeptID GROUP BY Dept.DeptID",
    "SELECT Emp.DeptID, MIN(Emp.Salary), MAX(Emp.Salary) FROM Emp "
    "GROUP BY Emp.DeptID",
    "SELECT COUNT(Emp.EmpID) FROM Emp",
    "SELECT Dept.DeptID, Dept.Budget FROM Dept",
)

N_DEPTS = 5


@dataclass
class ChaosResult:
    """What happened, and whether every read was snapshot-consistent."""

    sessions: int
    operations: int
    reads_checked: int = 0
    commits: int = 0
    aborts: int = 0
    rejections: int = 0
    cancellations: int = 0
    faults_fired: int = 0
    degradations: int = 0
    errors: Counter = field(default_factory=Counter)
    mismatches: List[str] = field(default_factory=list)
    unexpected: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.unexpected

    def summary(self) -> str:
        return (
            f"{self.sessions} sessions x {self.operations} ops: "
            f"{self.reads_checked} reads checked, {self.commits} commits, "
            f"{self.aborts} aborts, {self.rejections} rejections, "
            f"{self.cancellations} cancellations, "
            f"{self.faults_fired} faults, {self.degradations} degradations, "
            f"{len(self.mismatches)} mismatches"
        )


def _seed_database() -> Tuple[Database, List[str]]:
    """The initial schema + data; returns (db, the setup SQL replayed)."""
    statements = list(SETUP_SQL)
    statements += [
        f"INSERT INTO Dept VALUES ({d}, {1000 * (d + 1)})"
        for d in range(N_DEPTS)
    ]
    database = Database()
    for sql in statements:
        execute_statement(database, parse_statement(sql))
    return database, statements


def _cancel_when_running(session, spins: int = 20_000) -> None:
    """Wait for the session's in-flight query token, then cancel it.

    A cancelled read either raises the typed
    :class:`~repro.errors.QueryCancelled` (no row is recorded) or — if
    the cancel lands after the last governor check — completes normally;
    both outcomes are snapshot-consistent, which is exactly what the
    harness asserts.
    """
    import time

    for __ in range(spins):
        if session.cancel("chaos"):
            return
        time.sleep(0)


def _rows_key(rows) -> Counter:
    """Order-independent, type-strict row multiset (1 vs 1.0 differ)."""
    return Counter(group_key(row) for row in rows)


def run_chaos(
    sessions: int = 8,
    operations: int = 12,
    seed: int = 0,
    engine: str = "vector",
    fault_sessions: int = 2,
    cancel_sessions: int = 2,
    max_slots: Optional[int] = None,
    morsel_size: Optional[int] = 64,
    check: bool = True,
    shards: int = 1,
    exchange_fault_sessions: int = 0,
    transport: str = "memory",
    kill_shards: int = 0,
) -> ChaosResult:
    """Run the chaos schedule; assert-ready result (see ``ChaosResult.ok``).

    ``fault_sessions`` threads get session-scoped faults armed against
    them (a mid-write crash and a read kernel fault each);
    ``cancel_sessions`` threads spawn a canceller against their own
    long-running read.  With ``check=True`` every recorded read is
    verified against the serial replay of the write log at its pinned
    epoch.

    ``shards > 1`` runs every read through the Exchange wire
    (shard-parallel two-phase aggregation), and
    ``exchange_fault_sessions`` threads additionally get a session-scoped
    shard crash armed mid-shuffle: the Exchange must degrade to
    single-site execution (counted in ``degradations``) and the degraded
    read must *still* pass the serial-replay oracle — losing a shard may
    cost a wire, never a row.

    ``transport="socket"`` runs the sharded reads over the real socket
    RPC (one OS process per shard, :mod:`repro.engine.shardrpc`), and
    ``kill_shards`` SIGKILLs that many randomly chosen live workers at
    seeded points *while the schedule runs*: a killed shard mid-query
    must be survived by retry + failover to a live peer, or by the
    single-site degrade — either way the serial-replay oracle must stay
    green.  The replay itself always uses the in-memory wire (transport
    never changes results; replaying through dead workers would test the
    transport twice and the oracle zero times).
    """
    database, setup_sql = _seed_database()
    config = ExecutorConfig(
        engine=engine, morsel_size=morsel_size, shards=shards,
        transport=transport, rpc_timeout_seconds=2.0,
    )
    server = Server(
        database, max_slots=max_slots, executor_config=config
    )
    result = ChaosResult(sessions=sessions, operations=operations)
    observed: List[Tuple[str, int, tuple]] = []
    observed_lock = threading.Lock()
    start = threading.Barrier(sessions)

    injector = faults.FaultInjector(())
    faults.install(injector)
    handles = [server.open_session(tenant=f"t{i % 2}") for i in range(sessions)]
    for i in range(min(fault_sessions, sessions)):
        # One mid-write crash and one read kernel fault per faulted
        # session; scoped, so only that session's work is hit.
        injector.arm(faults.FaultSpec(
            "kernel", engine="write", session=handles[i].id, occurrence=1,
        ))
        injector.arm(faults.FaultSpec(
            "kernel", engine=engine, session=handles[i].id, occurrence=2,
        ))
    for i in range(min(exchange_fault_sessions, sessions)):
        # A shard crash mid-shuffle: the wire's per-delivery injection
        # point fires inside the session's next Exchange, which must
        # degrade to single-site execution and keep the answer.
        injector.arm(faults.FaultSpec(
            "kernel", engine="exchange", session=handles[i].id, occurrence=0,
        ))

    def worker(index: int) -> None:
        session = handles[index]
        rng = random.Random(seed * 1000 + index)
        start.wait()
        for op in range(operations):
            roll = rng.random()
            try:
                if roll < 0.45:
                    sql = rng.choice(READ_SQL)
                    report = session.report(sql)
                    with observed_lock:
                        observed.append(
                            (sql, report.snapshot_epoch, tuple(report.result.rows))
                        )
                        result.degradations += report.stats.degradations
                elif roll < 0.80:
                    emp = index * 10_000 + op
                    dept = rng.randrange(N_DEPTS)
                    session.execute(
                        f"INSERT INTO Emp VALUES ({emp}, {dept}, "
                        f"{rng.randrange(100, 5000)})"
                    )
                elif roll < 0.90:
                    emp = index * 10_000 + rng.randrange(max(op, 1))
                    session.execute(f"DELETE FROM Emp WHERE Emp.EmpID = {emp}")
                else:
                    canceller = None
                    if index < cancel_sessions:
                        # Spin until the query's token appears, then flip
                        # it — lands the cancel *during* execution nearly
                        # every time (and harmlessly after it otherwise).
                        canceller = threading.Thread(
                            target=_cancel_when_running, args=(session,)
                        )
                        canceller.start()
                    try:
                        sql = rng.choice(READ_SQL)
                        report = session.report(sql)
                        with observed_lock:
                            observed.append(
                                (sql, report.snapshot_epoch,
                                 tuple(report.result.rows))
                            )
                            result.degradations += report.stats.degradations
                    finally:
                        if canceller is not None:
                            canceller.join()
            except ReproError as error:
                # Typed failures are the contract working: count them.
                name = type(error).__name__
                with observed_lock:
                    result.errors[name] += 1
            except Exception as error:  # pragma: no cover - a real bug
                with observed_lock:
                    result.unexpected.append(f"{session.id}: {error!r}")

    stop_killer = threading.Event()

    def shard_killer() -> None:
        """SIGKILL ``kill_shards`` live workers at seeded points."""
        import time

        from repro.engine.shardrpc import active_pool

        killer_rng = random.Random(seed * 7919 + 13)
        remaining = kill_shards
        while remaining > 0 and not stop_killer.is_set():
            time.sleep(killer_rng.uniform(0.01, 0.05))
            pool = active_pool()
            if pool is None:
                continue
            live = [
                i for i, w in enumerate(pool.workers)
                if w.process is not None and w.process.poll() is None
            ]
            if not live:
                continue
            pool.kill(killer_rng.choice(live))
            remaining -= 1

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"chaos-{i}")
        for i in range(sessions)
    ]
    killer = None
    if kill_shards > 0 and transport == "socket":
        killer = threading.Thread(target=shard_killer, name="chaos-killer")
    try:
        for thread in threads:
            thread.start()
        if killer is not None:
            killer.start()
        for thread in threads:
            thread.join()
    finally:
        stop_killer.set()
        if killer is not None:
            killer.join()
        faults.install(None)

    result.commits = server.catalog.commits
    result.aborts = server.catalog.aborts
    result.rejections = server.admission.rejected
    result.cancellations = result.errors.get("QueryCancelled", 0)
    result.faults_fired = len(injector.fired)

    if check:
        _check_serial_replay(
            server, setup_sql, observed, config, result
        )
    result.reads_checked = len(observed)
    return result


def _check_serial_replay(
    server: Server,
    setup_sql: List[str],
    observed: List[Tuple[str, int, tuple]],
    config: ExecutorConfig,
    result: ChaosResult,
) -> None:
    """Replay the write log serially; every pinned read must match it.

    The replay database is advanced *incrementally* — reads are checked
    in epoch order, applying log entries as their epoch is reached — so
    the whole check costs one pass over the log regardless of how many
    reads were recorded.
    """
    from dataclasses import replace

    log = server.catalog.log_upto(server.catalog.epoch)
    replay_db = Database()
    for sql in setup_sql:
        execute_statement(replay_db, parse_statement(sql))
    # Same engine configuration, but always the in-memory wire: transport
    # never changes results, and the oracle must not depend on workers
    # the killer thread just shot.
    session = Session(
        replay_db, executor_config=replace(config, transport="memory")
    )
    applied = 0
    for sql, epoch, rows in sorted(observed, key=lambda entry: entry[1]):
        while applied < len(log) and log[applied][0] <= epoch:
            execute_statement(replay_db, parse_statement(log[applied][1]))
            applied += 1
        expected = session.query(sql)
        if _rows_key(expected.rows) != _rows_key(rows):
            result.mismatches.append(
                f"epoch {epoch}: {sql!r} observed {sorted(rows)[:5]}... "
                f"expected {sorted(expected.rows)[:5]}..."
            )
