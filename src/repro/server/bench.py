"""The concurrent-workload benchmark: queries/sec through the server.

``repro bench --server`` drives N session threads of mixed reads (90%)
and writes (10%) against one :class:`~repro.server.server.Server` for a
fixed number of operations per thread, and reports

* throughput (committed operations per wall-clock second, total and
  reads-only),
* admission statistics (admitted / rejected / peak concurrent slots),
* a post-run **consistency audit**: the final state must equal the
  serial replay of the write log (the cheap end-to-end check that the
  concurrency machinery did not corrupt anything while being timed).

The report lands in ``BENCH_server.json`` next to the other benchmark
artifacts.  Thread scheduling makes the timings non-deterministic, but
the *workload* is seeded, so runs are comparable.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, Optional

from repro.engine.executor import ExecutorConfig
from repro.errors import ReproError
from repro.server.chaos import (
    READ_SQL,
    N_DEPTS,
    _rows_key,
    _seed_database,
)
from repro.server.retry import call_with_backoff
from repro.server.server import Server
from repro.server.snapshot import replay
from repro.session import Session


def run_server_bench(
    sessions: int = 8,
    operations: int = 40,
    seed: int = 0,
    engine: str = "vector",
    max_slots: Optional[int] = None,
    morsel_size: Optional[int] = 256,
    prefill_rows: int = 2000,
) -> Dict:
    """Run the concurrent workload; returns the JSON-ready report."""
    database, setup_sql = _seed_database()
    config = ExecutorConfig(engine=engine, morsel_size=morsel_size)
    for emp in range(prefill_rows):
        database.insert("Emp", (emp, emp % N_DEPTS, 100 + emp % 900))
    # The prefill happened before the server pinned anything: fold it
    # into the setup script so the audit's replay starts from the same
    # state the server served.
    setup_sql = setup_sql + [
        f"INSERT INTO Emp VALUES ({emp}, {emp % N_DEPTS}, {100 + emp % 900})"
        for emp in range(prefill_rows)
    ]
    server = Server(database, max_slots=max_slots, executor_config=config)
    handles = [server.open_session(tenant=f"t{i % 2}") for i in range(sessions)]
    counts = {"reads": 0, "writes": 0, "rejected": 0, "errors": 0}
    lock = threading.Lock()
    barrier = threading.Barrier(sessions + 1)

    def worker(index: int) -> None:
        session = handles[index]
        rng = random.Random(seed * 7919 + index)
        barrier.wait()
        for op in range(operations):
            try:
                if rng.random() < 0.9:
                    sql = READ_SQL[rng.randrange(len(READ_SQL))]
                    call_with_backoff(
                        lambda: session.query(sql),
                        attempts=6,
                        base_delay=0.002,
                        rng=rng,
                    )
                    with lock:
                        counts["reads"] += 1
                else:
                    emp = 1_000_000 + index * 100_000 + op
                    sql = (
                        f"INSERT INTO Emp VALUES ({emp}, "
                        f"{rng.randrange(N_DEPTS)}, {rng.randrange(100, 999)})"
                    )
                    call_with_backoff(
                        lambda: session.execute(sql),
                        attempts=6,
                        base_delay=0.002,
                        rng=rng,
                    )
                    with lock:
                        counts["writes"] += 1
            except ReproError:
                with lock:
                    counts["errors"] += 1

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"bench-{i}")
        for i in range(sessions)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    # Consistency audit: final live state == serial replay of the log.
    log = server.catalog.log_upto(server.catalog.epoch)
    replayed = replay(setup_sql, log)
    audit_sql = READ_SQL[0]
    live = Session(
        server.catalog.snapshot().database, executor_config=config
    ).query(audit_sql)
    serial = Session(replayed, executor_config=config).query(audit_sql)
    consistent = _rows_key(live.rows) == _rows_key(serial.rows)

    total_ops = counts["reads"] + counts["writes"]
    stats = server.stats()
    return {
        "bench": "server",
        "engine": engine,
        "sessions": sessions,
        "operations_per_session": operations,
        "seed": seed,
        "max_slots": max_slots,
        "prefill_rows": prefill_rows,
        "wall_s": round(wall, 4),
        "completed_reads": counts["reads"],
        "completed_writes": counts["writes"],
        "typed_errors": counts["errors"],
        "queries_per_second": round(total_ops / wall, 2) if wall else None,
        "reads_per_second": round(counts["reads"] / wall, 2) if wall else None,
        "commits": stats["commits"],
        "aborts": stats["aborts"],
        "admitted": stats["admitted"],
        "rejected": stats["rejected"],
        "peak_slots": stats["peak_slots"],
        "replay_consistent": consistent,
    }


def render_server_report(report: Dict) -> str:
    return (
        f"server bench ({report['engine']} engine): "
        f"{report['sessions']} sessions x "
        f"{report['operations_per_session']} ops in {report['wall_s']}s — "
        f"{report['queries_per_second']} ops/s "
        f"({report['completed_reads']} reads, "
        f"{report['completed_writes']} writes, "
        f"{report['rejected']} rejected, peak {report['peak_slots']} slots), "
        f"replay consistent: {'yes' if report['replay_consistent'] else 'NO'}"
    )
