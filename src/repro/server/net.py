"""A small threaded TCP front-end for the server (``repro serve``).

Line protocol, one request per line, UTF-8:

* ``QUERY <select>`` — run on a pinned snapshot; response is
  ``OK <n> rows epoch=<e>`` followed by one tab-separated line per row
  and a terminating blank line;
* ``EXEC <statement>`` — DDL/DML through the serialized commit path;
  response ``OK epoch=<e>``;
* ``.sessions`` — list open sessions (id, tenant, queries, writes);
* ``.stats`` — server counters (epoch, commits, admission stats);
* ``.quit`` — close this connection.

Errors answer ``ERR <exit_code> <ErrorType>: <message>`` with the same
exit-code families the CLI uses (parse=2, bind=3, execution=4,
resource=5) — an :class:`~repro.errors.AdmissionRejected` therefore
reports 5 plus its retry hint, and a client can drive
:func:`repro.server.retry.call_with_backoff` off it.

Each connection gets its own :class:`~repro.server.server.ServerSession`
(the threading server gives it its own thread), so concurrent clients
exercise exactly the snapshot/admission machinery the in-process API
does.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Optional, Tuple

from repro.errors import ReproError, error_exit_code
from repro.server.server import Server


def _render(value: object) -> str:
    return "NULL" if repr(value) == "NULL" else str(value)


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: Server = self.server.repro_server  # type: ignore[attr-defined]
        session = server.open_session(tenant=self.client_address[0])
        try:
            for raw in self.rfile:
                line = raw.decode("utf-8", "replace").strip()
                if not line:
                    continue
                if line == ".quit":
                    break
                try:
                    self._dispatch(server, session, line)
                except ReproError as error:
                    self._send(
                        f"ERR {error_exit_code(error)} "
                        f"{type(error).__name__}: {error}"
                    )
        finally:
            session.close()

    def _dispatch(self, server: Server, session, line: str) -> None:
        command, __, rest = line.partition(" ")
        upper = command.upper()
        if upper == "QUERY":
            report = session.report(rest)
            rows = report.result.rows
            self._send(f"OK {len(rows)} rows epoch={report.snapshot_epoch}")
            for row in rows:
                self._send("\t".join(_render(v) for v in row))
            self._send("")
        elif upper == "EXEC":
            epoch = session.execute(rest)
            self._send(f"OK epoch={epoch}")
        elif command == ".sessions":
            sessions = server.sessions()
            self._send(f"OK {len(sessions)} sessions")
            for s in sessions:
                self._send(
                    f"{s.id}\t{s.tenant}\tqueries={s.queries}\t"
                    f"writes={s.writes}\tepoch={s.last_epoch}"
                )
            self._send("")
        elif command == ".stats":
            stats = server.stats()
            self._send(
                "OK " + " ".join(f"{k}={v}" for k, v in sorted(stats.items()))
            )
        else:
            self._send(f"ERR 2 ParseError: unknown command {command!r}")

    def _send(self, text: str) -> None:
        self.wfile.write((text + "\n").encode("utf-8"))
        self.wfile.flush()


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ReproServer:
    """Own a :class:`Server` and serve it over TCP until stopped."""

    def __init__(
        self,
        server: Optional[Server] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = server if server is not None else Server()
        self._tcp = _ThreadingTCPServer((host, port), _Handler)
        self._tcp.repro_server = self.server  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._tcp.server_address  # type: ignore[return-value]

    def start(self) -> "ReproServer":
        """Serve in a background thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:  # pragma: no cover - interactive
        self._tcp.serve_forever()

    def stop(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
