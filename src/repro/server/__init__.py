"""The multi-session server: snapshot reads, serialized writes, admission.

One process, many concurrent sessions over one shared database.  The
package layers four pieces on the existing single-session stack:

* :mod:`repro.server.snapshot` — a :class:`VersionedCatalog` wrapping the
  authoritative :class:`~repro.catalog.catalog.Database` with an MVCC
  copy-on-write protocol: published tables are frozen, readers pin an
  epoch and share them lock-free, writers clone → mutate → atomically
  publish under per-table locks;
* :mod:`repro.server.admission` — an :class:`AdmissionController` carving
  per-query budgets out of a server-level
  :class:`~repro.engine.governor.BudgetPool` (reject, never queue);
* :mod:`repro.server.retry` — the client-side
  :func:`call_with_backoff` helper matching the admission contract;
* :mod:`repro.server.server` — :class:`Server` / :class:`ServerSession`,
  the user-facing API tying the pieces together;
* :mod:`repro.server.chaos` — the deterministic concurrency harness that
  proves every read is snapshot-consistent (equal to a serial replay of
  the write log at the pinned epoch) under mixed readers, writers,
  cancellations and injected faults;
* :mod:`repro.server.net` — a small threaded TCP front-end with a
  line protocol (``repro serve``).
"""

from repro.server.admission import AdmissionController, Grant
from repro.server.retry import call_with_backoff
from repro.server.server import Server, ServerSession
from repro.server.snapshot import Snapshot, VersionedCatalog

__all__ = [
    "AdmissionController",
    "Grant",
    "Server",
    "ServerSession",
    "Snapshot",
    "VersionedCatalog",
    "call_with_backoff",
]
