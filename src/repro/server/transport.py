"""The multi-host shard wire: framed socket messages + the shard worker.

This module is the *mechanical* half of the fault-tolerant shard
transport (the policy half — retries, health, failover — lives in
:mod:`repro.engine.shardrpc`).  It reuses the TCP bones of the server's
line protocol (:mod:`repro.server.net`) but frames binary messages
instead of text lines, because shard deliveries carry pickled plans and
row blocks, not SQL strings.

Framing
-------

Every message is one frame::

    !2sBBII  =  magic b"RX" | wire version | flags | payload length | crc32

followed by exactly ``length`` payload bytes.  The payload is a dict
serialized with pickle at the **pinned** :data:`WIRE_PICKLE_PROTOCOL`
(not ``HIGHEST_PROTOCOL``: both ends must agree byte-for-byte across
interpreter versions, and the checksum is computed over the exact
bytes).  Bad magic, an unknown version, a checksum mismatch (garbled
bytes in transit), or an oversized frame all raise the typed
:class:`~repro.errors.WireFormatError` — the framing layer never lets a
corrupt payload reach the unpickler.

Restricted unpickling
---------------------

The receive path **never** calls raw ``pickle.loads``: payloads go
through :class:`RestrictedUnpickler`, which resolves only allow-listed
classes — anything under ``repro.`` (plan nodes, expression ASTs,
tables, SQL values) plus the standard value types SQL data lives in
(``decimal``, ``datetime``, ``uuid``) and a small set of builtins.  A
forged payload naming ``os.system`` (or any class outside the list) is
rejected with :class:`~repro.errors.WireFormatError` before its reduce
hook can run.  The same loader guards the in-memory Exchange wire
(:mod:`repro.engine.exchange`), so the trusted-codec discipline does not
depend on which transport is configured.

The worker
----------

``repro shard-worker`` runs :func:`run_worker`: bind a loopback socket,
print a ``READY`` line (the :class:`~repro.engine.shardrpc.ShardPool`
parses it to learn the bound port), and serve framed requests one
connection at a time.  Operations:

* ``hello`` — handshake: version check, returns pid + wire version;
* ``ping`` — health probe (heartbeats), returns served/duplicate counts;
* ``execute`` — run a shard subplan against a shipped table partition
  and return the result block.  Responses are cached by **request ID**:
  a retried or duplicated request is answered from the cache without
  re-executing, so retransmitted partials can never double-count.
* ``shutdown`` — drain: stop serving after the reply flushes.

Workers are stateless between requests (each ``execute`` ships its own
partition), which is what makes retry-elsewhere failover sound: any
worker can serve any delivery, bit-identically.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
import sys
import zlib
from typing import Any, BinaryIO, Dict, Optional, Tuple

from repro.errors import ReproError, WireFormatError

#: Pinned framing version; bumped on any incompatible frame/payload change.
WIRE_VERSION = 1

#: Pinned pickle protocol for every payload on the wire.  Protocol 4 is
#: supported by every interpreter this project targets; pinning (rather
#: than HIGHEST_PROTOCOL) keeps mixed-version coordinator/worker pairs
#: byte-compatible and makes the checksum meaningful across hosts.
WIRE_PICKLE_PROTOCOL = 4

#: Frame header: magic, version, flags, payload length, payload crc32.
_HEADER = struct.Struct("!2sBBII")
_MAGIC = b"RX"

#: Hard cap on one frame's payload (a forged length cannot OOM the peer).
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Builtins a payload may reference (pickle resolves classes, not
#: instances of the primitive types, which need no lookup at all).
_SAFE_BUILTINS = frozenset({
    "set", "frozenset", "complex", "bytearray", "range", "slice",
})

#: Module prefixes whose classes may travel on the wire.
_SAFE_MODULE_PREFIXES = ("repro.",)

#: Exact stdlib modules whose classes may travel on the wire (the types
#: SQL values are made of).
_SAFE_MODULES = frozenset({"decimal", "datetime", "uuid", "collections"})


class RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that resolves allow-listed classes only (see module doc)."""

    def find_class(self, module: str, name: str) -> Any:
        if module == "builtins":
            if name in _SAFE_BUILTINS:
                return super().find_class(module, name)
        elif module in _SAFE_MODULES or module.startswith(
            _SAFE_MODULE_PREFIXES
        ):
            return super().find_class(module, name)
        raise WireFormatError(
            f"wire payload references forbidden class {module}.{name}; "
            "only repro plan/value classes may cross the shard wire"
        )


def restricted_loads(blob: bytes) -> Any:
    """Deserialize ``blob`` through the allow-listed unpickler.

    Any unpickling failure — forged classes, truncated or corrupt bytes —
    surfaces as the typed :class:`~repro.errors.WireFormatError`.
    """
    try:
        return RestrictedUnpickler(io.BytesIO(blob)).load()
    except WireFormatError:
        raise
    except Exception as error:
        raise WireFormatError(f"wire payload failed to decode: {error}") from error


def wire_dumps(payload: Any) -> bytes:
    """Serialize ``payload`` at the pinned wire pickle protocol."""
    return pickle.dumps(payload, protocol=WIRE_PICKLE_PROTOCOL)


def pack_frame(payload: Dict[str, Any]) -> bytes:
    """One wire frame: header + pickled payload (pinned protocol)."""
    blob = wire_dumps(payload)
    if len(blob) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame payload of {len(blob)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    header = _HEADER.pack(
        _MAGIC, WIRE_VERSION, 0, len(blob), zlib.crc32(blob) & 0xFFFFFFFF
    )
    return header + blob


def send_frame(stream: BinaryIO, payload: Dict[str, Any]) -> int:
    """Write one frame; returns the bytes put on the wire."""
    frame = pack_frame(payload)
    stream.write(frame)
    stream.flush()
    return len(frame)


def _read_exact(stream: BinaryIO, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            raise EOFError("peer closed the shard wire mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(stream: BinaryIO) -> Tuple[Dict[str, Any], int]:
    """Read one frame; returns ``(payload, bytes_read)``.

    Raises :class:`~repro.errors.WireFormatError` on bad magic, an
    unknown wire version, an oversized length, a checksum mismatch, or a
    payload outside the unpickling allow-list; raises :class:`EOFError`
    when the peer hangs up cleanly between frames.
    """
    header = _read_exact(stream, _HEADER.size)
    magic, version, _flags, length, crc = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"wire version mismatch: peer speaks v{version}, "
            f"this process v{WIRE_VERSION}"
        )
    if length > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    blob = _read_exact(stream, length)
    if zlib.crc32(blob) & 0xFFFFFFFF != crc:
        raise WireFormatError("frame checksum mismatch (garbled in transit)")
    payload = restricted_loads(blob)
    if not isinstance(payload, dict) or "op" not in payload:
        raise WireFormatError("frame payload is not an op message")
    return payload, _HEADER.size + length


# -- the worker side ---------------------------------------------------------

#: ExecutorConfig fields a coordinator may set on a shard execution.
#: Everything else (budgets with coordinator-side meaning, cancellation
#: tokens, shard topology) is pinned worker-side.
_SHARD_CONFIG_FIELDS = frozenset({
    "engine", "join_algorithm", "aggregation", "exploit_orders",
    "morsel_size", "memory_limit_bytes", "max_rows", "spill", "degrade",
})


class ShardWorker:
    """One shard worker process' serving loop (testable in-process).

    Holds the idempotency cache: completed ``execute`` responses keyed by
    request ID.  A retransmitted request — a retry after a lost response,
    or an injected duplicate — is served from the cache without running
    the plan again, so retried partials can never double-count.
    """

    def __init__(self) -> None:
        self._responses: Dict[str, Dict[str, Any]] = {}
        self.served = 0
        self.duplicates = 0
        self.draining = False

    # -- operations -------------------------------------------------------

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request payload to its op handler."""
        op = request.get("op")
        try:
            if op == "hello":
                return self._hello(request)
            if op == "ping":
                return {
                    "op": "pong",
                    "served": self.served,
                    "duplicates": self.duplicates,
                }
            if op == "execute":
                return self._execute(request)
            if op == "shutdown":
                self.draining = True
                return {"op": "bye"}
            raise WireFormatError(f"unknown wire op {op!r}")
        except ReproError as error:
            return {
                "op": "error",
                "error_type": type(error).__name__,
                "message": str(error),
                "retryable": isinstance(error, WireFormatError),
            }

    def _hello(self, request: Dict[str, Any]) -> Dict[str, Any]:
        import os

        peer_version = request.get("version")
        if peer_version != WIRE_VERSION:
            raise WireFormatError(
                f"handshake version mismatch: coordinator speaks "
                f"v{peer_version}, worker v{WIRE_VERSION}"
            )
        return {"op": "hello", "version": WIRE_VERSION, "pid": os.getpid()}

    def _execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        request_id = request.get("request_id")
        if not isinstance(request_id, str):
            raise WireFormatError("execute request carries no request_id")
        cached = self._responses.get(request_id)
        if cached is not None:
            self.duplicates += 1
            return cached
        response = self._run(request)
        self._responses[request_id] = response
        self.served += 1
        return response

    def _run(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from repro.catalog.catalog import Database
        from repro.engine.executor import Executor, ExecutorConfig

        table = request["table"]
        table_name = request["table_name"]
        plan = request["plan"]
        params = request.get("params")
        overrides = {
            key: value
            for key, value in (request.get("config") or {}).items()
            if key in _SHARD_CONFIG_FIELDS
        }
        config = ExecutorConfig(
            expose_rowids=True,
            shards=1,
            exchange="off",
            workers=1,
            **overrides,
        )
        database = Database()
        database.tables[table_name] = table
        result, stats = Executor(database, config, params).run(plan)
        return {
            "op": "result",
            "request_id": request["request_id"],
            "columns": tuple(result.columns),
            "rows": list(result.rows),
            "ordering": tuple(result.ordering),
            "degradations": stats.degradations,
            "degradation_events": list(stats.degradation_events),
            "spill_count": stats.spill_count,
            "spilled_rows": stats.spilled_rows,
        }

    # -- the serving loop -------------------------------------------------

    def serve_connection(self, stream_in: BinaryIO, stream_out: BinaryIO) -> None:
        """Answer frames on one connection until EOF or drain."""
        while not self.draining:
            try:
                request, __ = recv_frame(stream_in)
            except EOFError:
                return
            except WireFormatError as error:
                # A garbled frame is answered, not fatal: the header kept
                # the stream in sync, so the caller can retransmit.
                try:
                    send_frame(stream_out, {
                        "op": "error",
                        "error_type": "WireFormatError",
                        "message": str(error),
                        "retryable": True,
                    })
                    continue
                except OSError:
                    return
            response = self.handle(request)
            try:
                send_frame(stream_out, response)
            except OSError:
                return


READY_PREFIX = "SHARD-WORKER READY"


def run_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    out: Optional[Any] = None,
) -> int:
    """Entry point for ``repro shard-worker``: bind, announce, serve.

    Prints ``SHARD-WORKER READY port=<p> pid=<p>`` once listening (the
    pool parses this line to learn an ephemeral port), then serves
    connections sequentially until a ``shutdown`` request or SIGTERM.
    """
    import os

    sink = out if out is not None else sys.stdout
    worker = ShardWorker()
    listener = socket.create_server((host, port))
    bound_port = listener.getsockname()[1]
    sink.write(f"{READY_PREFIX} port={bound_port} pid={os.getpid()}\n")
    sink.flush()
    try:
        while not worker.draining:
            try:
                connection, __ = listener.accept()
            except OSError:
                break
            with connection:
                reader = connection.makefile("rb")
                writer = connection.makefile("wb")
                worker.serve_connection(reader, writer)
    finally:
        listener.close()
    return 0
