"""The server: many concurrent sessions over one versioned database.

:class:`Server` composes the pieces — a
:class:`~repro.server.snapshot.VersionedCatalog` for snapshot reads and
serialized writes, an :class:`~repro.server.admission.AdmissionController`
for budget admission — behind the familiar session API::

    server = Server(max_slots=8, max_bytes=64 << 20)
    s1 = server.open_session(tenant="alice")
    s1.execute("CREATE TABLE T (A INTEGER PRIMARY KEY)")
    s1.execute("INSERT INTO T VALUES (1)")
    result = s1.query("SELECT T.A FROM T GROUP BY T.A")

Each query runs on its own pinned :class:`~repro.server.snapshot.Snapshot`
through an ordinary single-session :class:`~repro.session.Session` — the
entire planner/executor stack is reused unchanged; only the database it
sees is a frozen epoch view.  The admitted memory slice becomes the
query's :class:`~repro.engine.governor.ResourceGovernor` budget, and a
fresh :class:`~repro.engine.governor.CancellationToken` per query gives
:meth:`ServerSession.cancel` something to flip from another thread.

Every query and write runs inside :func:`repro.engine.faults.scope`
tagged with the session id, so session-scoped fault specs crash exactly
this session's work while concurrent sessions proceed untouched.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import replace
from typing import Dict, List, Optional

from repro.catalog.catalog import Database

# The executor resolves its backend with a *lazy* circular import
# (``executor.run`` → ``repro.engine.vector.executor`` → back).  That is
# fine single-threaded, but two sessions racing the first import can see
# a partially initialized module.  Import the cycle eagerly here, while
# the server module itself loads single-threaded, so session threads only
# ever hit warm ``sys.modules`` entries.
import repro.engine.vector.executor  # noqa: F401  (warm the import cache)
import repro.analysis.certificates  # noqa: F401
from repro.engine import faults
from repro.engine.dataset import DataSet
from repro.engine.executor import ExecutorConfig
from repro.engine.governor import CancellationToken
from repro.server.admission import AdmissionController
from repro.server.snapshot import Snapshot, VersionedCatalog
from repro.session import QueryReport, Session


class ServerSession:
    """One client's handle: snapshot queries, serialized writes, cancel."""

    def __init__(
        self,
        server: "Server",
        session_id: str,
        tenant: str,
        executor_config: ExecutorConfig,
        policy: str = "cost",
    ) -> None:
        self.server = server
        self.id = session_id
        self.tenant = tenant
        self.executor_config = executor_config
        self.policy = policy
        self.queries = 0
        self.writes = 0
        self.last_epoch = 0
        self.closed = False
        self._token: Optional[CancellationToken] = None
        self._token_lock = threading.Lock()

    # -- reads ---------------------------------------------------------------

    def query(self, sql: str) -> DataSet:
        return self.report(sql).result

    def report(self, sql: str) -> QueryReport:
        """Admit, pin a snapshot, run the full planner/executor stack.

        The report's ``snapshot_epoch`` records the pinned epoch — the
        contract the chaos harness checks: the rows equal a serial
        replay of the write log up to exactly that epoch.
        """
        self._ensure_open()
        grant = self.server.admission.admit(self.tenant)
        try:
            token = CancellationToken()
            with self._token_lock:
                self._token = token
            config = replace(self.executor_config, cancellation=token)
            if grant.memory_limit_bytes is not None:
                # The admitted memory slice *is* the query's governor
                # budget: admission and enforcement meter the same bytes.
                config = replace(
                    config, memory_limit_bytes=grant.memory_limit_bytes
                )
            snapshot = self.server.catalog.snapshot()
            session = Session(
                snapshot.database, policy=self.policy, executor_config=config
            )
            with faults.scope(self.id):
                report = session.report(sql)
            report.snapshot_epoch = snapshot.epoch
            self.queries += 1
            self.last_epoch = snapshot.epoch
            return report
        finally:
            with self._token_lock:
                self._token = None
            grant.release()

    def snapshot(self) -> Snapshot:
        """Pin and return a raw snapshot (no admission: it is just
        pointer copies, useful for consistency checkers)."""
        self._ensure_open()
        return self.server.catalog.snapshot()

    # -- writes --------------------------------------------------------------

    def execute(self, sql: str) -> int:
        """Run one DDL/DML statement through the serialized commit path;
        returns the commit epoch.  Writes hold an admission slot too —
        a saturated server turns writers away the same way it turns
        readers away."""
        self._ensure_open()
        grant = self.server.admission.admit(self.tenant)
        try:
            with faults.scope(self.id):
                epoch = self.server.catalog.execute(sql, session=self.id)
            self.writes += 1
            self.last_epoch = epoch
            return epoch
        finally:
            grant.release()

    # -- control -------------------------------------------------------------

    def cancel(self, reason: str = "") -> bool:
        """Cancel the in-flight query, if any (from any thread).

        Returns whether a query was actually in flight; the cancelled
        query raises the typed
        :class:`~repro.errors.QueryCancelled` at its next governor
        check, exactly like single-session cancellation.
        """
        with self._token_lock:
            token = self._token
        if token is None:
            return False
        token.cancel(reason or f"cancelled by session {self.id}")
        return True

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.server._forget(self)

    def _ensure_open(self) -> None:
        if self.closed:
            raise RuntimeError(f"session {self.id} is closed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServerSession({self.id}, tenant={self.tenant}, "
            f"queries={self.queries}, writes={self.writes})"
        )


class Server:
    """The multi-session runtime: versioned catalog + admission control."""

    def __init__(
        self,
        database: Optional[Database] = None,
        *,
        max_slots: Optional[int] = None,
        max_bytes: Optional[int] = None,
        tenant_slots: Optional[int] = None,
        tenant_bytes: Optional[int] = None,
        default_query_bytes: int = 0,
        executor_config: ExecutorConfig = ExecutorConfig(),
        policy: str = "cost",
    ) -> None:
        self.catalog = VersionedCatalog(database)
        self.admission = AdmissionController(
            max_slots=max_slots,
            max_bytes=max_bytes,
            tenant_slots=tenant_slots,
            tenant_bytes=tenant_bytes,
            default_query_bytes=default_query_bytes,
        )
        self.executor_config = executor_config
        self.policy = policy
        self._sessions: Dict[str, ServerSession] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    def open_session(
        self,
        tenant: str = "default",
        session_id: Optional[str] = None,
        executor_config: Optional[ExecutorConfig] = None,
    ) -> ServerSession:
        with self._lock:
            if session_id is None:
                session_id = f"s{next(self._ids)}"
            if session_id in self._sessions:
                raise ValueError(f"session id {session_id!r} already open")
            session = ServerSession(
                self,
                session_id,
                tenant,
                executor_config
                if executor_config is not None
                else self.executor_config,
                self.policy,
            )
            self._sessions[session_id] = session
            return session

    def sessions(self) -> List[ServerSession]:
        with self._lock:
            return sorted(self._sessions.values(), key=lambda s: s.id)

    def _forget(self, session: ServerSession) -> None:
        with self._lock:
            self._sessions.pop(session.id, None)

    def stats(self) -> Dict[str, object]:
        admission = self.admission.stats()
        with self._lock:
            open_sessions = len(self._sessions)
        return {
            "epoch": self.catalog.epoch,
            "commits": self.catalog.commits,
            "aborts": self.catalog.aborts,
            "open_sessions": open_sessions,
            **admission,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Server(epoch={self.catalog.epoch}, "
            f"sessions={len(self._sessions)})"
        )
