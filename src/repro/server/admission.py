"""Admission control: carve per-query budgets from a server-level pool.

The single-session stack already meters one execution against its budget
(:class:`~repro.engine.governor.ResourceGovernor`).  The server's problem
is the level above: *which* queries get a budget at all when many
sessions contend.  The :class:`AdmissionController` answers it with the
reject-don't-queue discipline of
:class:`~repro.engine.governor.BudgetPool`:

* a query asks for one **slot** and a **memory slice** before it starts;
* if the server pool (or the tenant's quota pool) is exhausted, the
  query is *rejected immediately* with the typed
  :class:`~repro.errors.AdmissionRejected` (resource family, exit code
  5) carrying a ``retry_after`` hint — nobody ever blocks inside the
  server waiting for another tenant's work;
* an admitted query gets a :class:`Grant` whose ``memory_limit_bytes``
  becomes the per-query governor's budget, so the sum of all concurrent
  governors' budgets can never exceed the pool: the governor *is* the
  enforcement arm of admission control.

``retry_after`` is deterministic under a fixed interleaving: the base
hint scaled by the pool's rejected-since-last-release count, so a loaded
server tells clients to back off longer (and
:func:`repro.server.retry.call_with_backoff` adds client-side jitter on
top).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.engine.governor import BudgetPool
from repro.errors import AdmissionRejected

#: Base retry hint (seconds) at load 1; scales linearly with pool load.
BASE_RETRY_AFTER = 0.02
#: Ceiling for the hint — a saturated pool should not push clients into
#: multi-second sleeps in tests or interactive use.
MAX_RETRY_AFTER = 0.5


class Grant:
    """An admitted query's reservation: release exactly once when done."""

    __slots__ = ("controller", "tenant", "memory_limit_bytes", "_released")

    def __init__(
        self,
        controller: "AdmissionController",
        tenant: str,
        memory_limit_bytes: Optional[int],
    ) -> None:
        self.controller = controller
        self.tenant = tenant
        self.memory_limit_bytes = memory_limit_bytes
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.controller._release(self)

    def __enter__(self) -> "Grant":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class AdmissionController:
    """Server-wide and per-tenant budget pools with reject semantics."""

    def __init__(
        self,
        max_slots: Optional[int] = None,
        max_bytes: Optional[int] = None,
        tenant_slots: Optional[int] = None,
        tenant_bytes: Optional[int] = None,
        default_query_bytes: int = 0,
    ) -> None:
        self.pool = BudgetPool(max_slots, max_bytes)
        self.tenant_slots = tenant_slots
        self.tenant_bytes = tenant_bytes
        self.default_query_bytes = default_query_bytes
        self._tenants: Dict[str, BudgetPool] = {}
        self._lock = threading.Lock()
        self.admitted = 0
        self.rejected = 0

    def _tenant_pool(self, tenant: str) -> Optional[BudgetPool]:
        if self.tenant_slots is None and self.tenant_bytes is None:
            return None
        with self._lock:
            pool = self._tenants.get(tenant)
            if pool is None:
                pool = BudgetPool(self.tenant_slots, self.tenant_bytes)
                self._tenants[tenant] = pool
            return pool

    def admit(self, tenant: str = "default", nbytes: Optional[int] = None) -> Grant:
        """Reserve (slot, bytes) for one query or raise AdmissionRejected.

        Tenant quota is checked first (a noisy tenant is turned away at
        its own fence before it can touch the shared pool), then the
        server pool; a server-pool rejection rolls the tenant
        reservation back so quota is never leaked.
        """
        want = self.default_query_bytes if nbytes is None else nbytes
        tenant_pool = self._tenant_pool(tenant)
        if tenant_pool is not None:
            exhausted = tenant_pool.try_reserve(want)
            if exhausted is not None:
                self.rejected += 1
                raise AdmissionRejected(
                    f"tenant {tenant!r} over {exhausted} quota",
                    resource=exhausted,
                    retry_after=self._retry_after(tenant_pool),
                )
        exhausted = self.pool.try_reserve(want)
        if exhausted is not None:
            if tenant_pool is not None:
                tenant_pool.release(want)
            self.rejected += 1
            raise AdmissionRejected(
                f"server {exhausted} budget exhausted",
                resource=exhausted,
                retry_after=self._retry_after(self.pool),
            )
        self.admitted += 1
        # A zero-byte reservation means "no memory cap was requested":
        # the query runs with an unlimited governor, but still holds a
        # concurrency slot.
        return Grant(self, tenant, want or None)

    def _release(self, grant: Grant) -> None:
        nbytes = grant.memory_limit_bytes or 0
        tenant_pool = self._tenants.get(grant.tenant)
        if tenant_pool is not None:
            tenant_pool.release(nbytes)
        self.pool.release(nbytes)

    def _retry_after(self, pool: BudgetPool) -> float:
        return min(MAX_RETRY_AFTER, BASE_RETRY_AFTER * (1 + pool.load()))

    def stats(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "used_slots": self.pool.used_slots,
            "peak_slots": self.pool.peak_slots,
            "used_bytes": self.pool.used_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdmissionController({self.pool!r}, tenants={len(self._tenants)})"
