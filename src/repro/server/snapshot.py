"""Snapshot isolation over the single-session catalog (MVCC, copy-on-write).

The :class:`VersionedCatalog` owns the *authoritative*
:class:`~repro.catalog.catalog.Database` and enforces one invariant:

    **every published table is frozen** — it will never be mutated again.

Readers therefore need no locks at all: :meth:`VersionedCatalog.snapshot`
pins the current epoch and hands out a
:meth:`~repro.catalog.catalog.Database.snapshot_view` sharing the frozen
tables; later commits swap *fresh clones* into the authoritative dicts,
which the pinned view never sees.  Readers never block writers and
writers never block readers.

Writers serialize per table, not globally.  A DML statement

1. takes the target's **lock set** — the FK neighborhood
   (:meth:`~repro.catalog.catalog.Database.fk_neighbors`: the target plus
   FK parents it must look up and FK children whose RESTRICT checks it
   must not invalidate), acquired in sorted name order so concurrent
   writers cannot deadlock and cannot produce write skew (delete-parent
   racing insert-child);
2. clones the target table (:meth:`~repro.storage.table.Table.clone` —
   shallow row sharing, rows themselves are immutable) and executes the
   statement against a shadow catalog view with the clone swapped in, so
   constraint checking sees a consistent database and all mutation lands
   in the clone;
3. passes the ``"write"`` injection point
   (:func:`repro.engine.faults.injection_point`) — an injected fault here
   models a mid-write crash: the clone is discarded, the authoritative
   table keeps its old version, and the version bump is rolled back by
   construction;
4. **publishes atomically** under the registry lock: freeze the clone,
   swap it in, bump the global epoch, append the statement to the write
   log.

The write log ``[(epoch, sql)]`` is the serial history: replaying it in
epoch order against the initial database reproduces, at every prefix,
exactly the state a snapshot pinned at that epoch observed.  The chaos
harness (:mod:`repro.server.chaos`) checks reads against that replay
bit-for-bit.

Statements are atomic here: a failed statement publishes nothing (the
single-session :class:`~repro.session.Session` lets a multi-row INSERT
keep its earlier rows; the server discards the whole clone instead, so
the write log only ever contains statements that fully succeeded).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.catalog.catalog import Database
from repro.engine import faults
from repro.errors import CatalogError, ParseError
from repro.parser.ast_nodes import (
    CreateAssertionStatement,
    CreateDomainStatement,
    CreateTableStatement,
    CreateViewStatement,
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    SetOperationStatement,
    UpdateStatement,
)
from repro.parser.binder import execute_statement
from repro.parser.parser import parse_statement

#: Statement classes that mutate exactly one table's rows (DML).
_DML = (InsertStatement, DeleteStatement, UpdateStatement)

#: Statement classes that grow the catalog (DDL).  There is no DROP in the
#: grammar, so DDL only ever *adds* entries — publishing is a dict insert.
_DDL = (
    CreateTableStatement,
    CreateDomainStatement,
    CreateViewStatement,
    CreateAssertionStatement,
)


@dataclass(frozen=True)
class Snapshot:
    """A pinned, immutable view of the database at one commit epoch.

    ``database`` shares the frozen table objects that were published at
    ``epoch``; ``versions`` records each table's
    :attr:`~repro.storage.table.Table.version` at pin time, so a
    consistency checker can replay the write log to this epoch and
    compare versions table by table.
    """

    epoch: int
    database: Database
    versions: Dict[str, int] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot(epoch={self.epoch}, tables={len(self.versions)})"


class VersionedCatalog:
    """The authoritative database plus the MVCC write/publish machinery."""

    def __init__(self, database: Optional[Database] = None) -> None:
        self.database = database if database is not None else Database()
        #: Guards the authoritative dicts, the epoch, the write log and
        #: the table-lock map.  Held only for pointer swaps — never while
        #: executing a statement.
        self._registry_lock = threading.Lock()
        #: One lock per table; writers take the sorted FK neighborhood.
        self._table_locks: Dict[str, threading.Lock] = {}
        #: DDL is rare: serialize it wholesale (it reads the whole catalog
        #: to validate, e.g. foreign keys of a new table).
        self._ddl_lock = threading.Lock()
        self.epoch = 0
        #: The serial history: committed statements in commit order.
        self.write_log: List[Tuple[int, str]] = []
        self.commits = 0
        self.aborts = 0
        for table in self.database.tables.values():
            table.freeze()
            self._table_locks[table.name] = threading.Lock()

    # -- reads ---------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Pin the current epoch: an immutable view readers share lock-free."""
        with self._registry_lock:
            view = self.database.snapshot_view()
            versions = {name: t.version for name, t in view.tables.items()}
            return Snapshot(self.epoch, view, versions)

    def log_upto(self, epoch: int) -> List[Tuple[int, str]]:
        """The committed statements with epoch ≤ ``epoch``, in commit order."""
        with self._registry_lock:
            return [entry for entry in self.write_log if entry[0] <= epoch]

    # -- writes --------------------------------------------------------------

    def execute(self, sql: str, session: Optional[str] = None) -> int:
        """Run one DDL or DML statement; returns the commit epoch.

        Raises whatever the statement raises (parse, bind, constraint,
        injected fault) — in every failure case *nothing* is published
        and the epoch is unchanged.
        """
        statement = parse_statement(sql)
        if isinstance(statement, (SelectStatement, SetOperationStatement)):
            raise ParseError("use a session query for SELECT statements")
        if isinstance(statement, _DML):
            return self._execute_dml(sql, statement, session)
        if isinstance(statement, _DDL):
            return self._execute_ddl(sql, statement, session)
        raise CatalogError(
            f"cannot execute statement of type {type(statement).__name__}"
        )

    def _execute_dml(self, sql, statement, session) -> int:
        target = statement.table
        with self._registry_lock:
            if target not in self._table_locks:
                # Let the binder produce its usual "no such table" error.
                self.database.table(target)
            lock_set = sorted(self.database.fk_neighbors(target))
        locks = [self._table_locks[name] for name in lock_set
                 if name in self._table_locks]
        for lock in locks:
            lock.acquire()
        try:
            # Clone-and-shadow: all mutation lands in the clone; FK and
            # assertion checks read the frozen neighbors consistently
            # (their locks are held, so no concurrent commit can swap
            # them mid-statement).
            live = self.database.table(target)
            clone = live.clone()
            shadow = self.database.snapshot_view()
            shadow.tables[target] = clone
            try:
                execute_statement(shadow, statement)
                # The mid-write crash point: after the shadow mutation,
                # before the atomic publish.  A fault raising here
                # abandons the clone — the version bump rolls back.
                faults.injection_point("write", target)
            except Exception:
                self.aborts += 1
                raise
            with self._registry_lock:
                clone.freeze()
                self.database.tables[target] = clone
                self.epoch += 1
                self.write_log.append((self.epoch, sql))
                self.commits += 1
                return self.epoch
        finally:
            for lock in reversed(locks):
                lock.release()

    def _execute_ddl(self, sql, statement, session) -> int:
        with self._ddl_lock:
            shadow = self.database.snapshot_view()
            try:
                execute_statement(shadow, statement)
                label = getattr(statement, "name", "") or getattr(
                    statement, "table", "ddl"
                )
                faults.injection_point("write", label)
            except Exception:
                self.aborts += 1
                raise
            with self._registry_lock:
                # DDL only adds entries (no DROP in the grammar): publish
                # the additions one by one so concurrent DML commits to
                # *other* tables are never overwritten by a stale dict.
                for name, table in shadow.tables.items():
                    if name not in self.database.tables:
                        table.freeze()
                        self.database.tables[name] = table
                        self._table_locks[name] = threading.Lock()
                for name, domain in shadow.domains.items():
                    self.database.domains.setdefault(name, domain)
                for name, view in shadow.views.items():
                    self.database.views.setdefault(name, view)
                for name, assertion in shadow.assertions.items():
                    self.database.assertions.setdefault(name, assertion)
                self.epoch += 1
                self.write_log.append((self.epoch, sql))
                self.commits += 1
                return self.epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VersionedCatalog(epoch={self.epoch}, "
            f"tables={len(self.database.tables)}, "
            f"commits={self.commits}, aborts={self.aborts})"
        )


def replay(setup_sql: List[str], log: List[Tuple[int, str]]) -> Database:
    """Rebuild the database state a snapshot at ``log[-1].epoch`` observed.

    Runs ``setup_sql`` (the pre-server schema/data script) on a fresh
    :class:`Database`, then applies the committed statements in epoch
    order through the same single-session execution path.  Because the
    server's commits are statement-atomic and totally ordered by epoch,
    this serial replay is bit-identical to the live state at that epoch —
    the property the chaos harness asserts.
    """
    database = Database()
    for sql in setup_sql:
        execute_statement(database, parse_statement(sql))
    for __, sql in log:
        execute_statement(database, parse_statement(sql))
    return database
