"""Exception hierarchy for the groupby-pushdown engine.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch one type.  The subtypes mirror the layers of the system: typing,
catalog/constraints, parsing, planning/execution, and the transformation
theory itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TypeMismatchError(ReproError):
    """A value does not conform to the SQL data type it was declared with."""


class CatalogError(ReproError):
    """A schema-level problem: unknown table/column, duplicate definition."""


class ConstraintViolation(ReproError):
    """An insert or update violates a declared integrity constraint."""

    def __init__(self, constraint_name: str, message: str) -> None:
        super().__init__(f"{constraint_name}: {message}")
        self.constraint_name = constraint_name


class ParseError(ReproError):
    """The SQL text could not be parsed.

    Carries the (1-based) line and column of the offending token when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindingError(ReproError):
    """A name in a query could not be resolved against the catalog."""


class ExecutionError(ReproError):
    """A runtime failure while evaluating a plan (e.g. bad aggregate input)."""


class ResourceError(ExecutionError):
    """A declared resource budget was exhausted during execution.

    Subtypes name the budget dimension (memory, wall-clock, rows,
    cancellation).  Resource errors are *not* degradable: the vector
    engine's kernel-failure fallback never retries them, because the row
    engine shares the same budget and would only fail later.
    """


class MemoryLimitExceeded(ResourceError):
    """An operator's working set exceeded ``memory_limit_bytes`` and could
    not (or was not allowed to) spill to disk."""


class QueryTimeout(ResourceError):
    """Execution exceeded the ``timeout_seconds`` budget."""


class QueryCancelled(ResourceError):
    """The query's :class:`~repro.engine.governor.CancellationToken` was
    cancelled; raised cooperatively at a batch/row-loop boundary."""


class RowLimitExceeded(ResourceError):
    """An operator produced more rows than the ``max_rows`` budget allows."""


class AdmissionRejected(ResourceError):
    """The server's admission controller refused to start the query.

    Unlike the other resource errors this fires *before* any execution:
    the server-level budget pool (concurrent-query slots, memory pool,
    per-tenant quotas — see :mod:`repro.server.admission`) had no room.
    Carries which ``resource`` was exhausted (``"slots"``, ``"memory"``,
    ``"tenant-slots"``, ``"tenant-memory"``) and a ``retry_after`` hint in
    seconds — the contract the client-side backoff helper
    (:func:`repro.server.retry.call_with_backoff`) builds on.  Shares the
    resource exit-code family (5).
    """

    def __init__(
        self, message: str, resource: str = "slots", retry_after: float = 0.05
    ) -> None:
        super().__init__(f"{message} (retry after {retry_after:.3f}s)")
        self.resource = resource
        self.retry_after = retry_after


def annotate_operator(error: BaseException, frame: str) -> None:
    """Append a plan-node breadcrumb to an in-flight error.

    Each executor dispatch frame the error propagates through calls this
    with its operator label, so the final message carries the full path
    from the failing operator up to the plan root, innermost first —
    e.g. ``Join[E.DeptID = D.DeptID]/G[D.DeptID] F[cnt]``.  Idempotent
    per frame; the original message is preserved in ``bare_message``.
    """
    path = getattr(error, "operator_path", ())
    error.operator_path = path + (frame,)  # type: ignore[attr-defined]
    bare = getattr(error, "bare_message", None)
    if bare is None:
        bare = error.args[0] if error.args else str(error)
        error.bare_message = bare  # type: ignore[attr-defined]
    error.args = (f"{bare} [at {'/'.join(error.operator_path)}]",)


def operator_path(error: BaseException) -> tuple:
    """The breadcrumb trail attached by :func:`annotate_operator` (may be
    empty for errors raised outside any operator frame)."""
    return tuple(getattr(error, "operator_path", ()))


def error_exit_code(error: BaseException) -> int:
    """The ``repro`` CLI's exit-code family for an error.

    parse = 2, bind = 3, execution = 4, resource = 5; unknown repro
    errors fall into the execution family.  Name-resolution failures
    (unknown table/column, ambiguous reference) are the bind family
    whether they surface as :class:`BindingError` or
    :class:`CatalogError`.
    """
    if isinstance(error, ParseError):
        return 2
    if isinstance(error, (BindingError, CatalogError)):
        return 3
    if isinstance(error, ResourceError):
        return 5
    return 4


class TransportError(ExecutionError):
    """A failure in the multi-host shard transport (sockets, framing, RPC).

    Subtypes distinguish the wire-format family (malformed or forged
    payloads, version mismatches — never retryable: resending the same
    bytes reproduces the failure) from the availability family (timeouts,
    connection loss, partitions — retryable: the shard RPC layer backs
    off, retries under the idempotent request-ID contract, and fails the
    delivery over to a live peer).  Shares the execution exit-code
    family (4).
    """


class WireFormatError(TransportError):
    """A frame or payload on the shard wire could not be decoded safely.

    Raised for bad magic, a wire-version mismatch, a checksum failure
    (garbled bytes), an oversized frame, or a pickle payload referencing
    a class outside the transport's allow-list (a forged payload).  Never
    retried with the same bytes; the RPC layer re-serializes and resends
    once when the cause was transit corruption.
    """


class ShardUnavailable(TransportError):
    """A shard worker did not answer: timeout, connection loss, or a
    network partition.  Retryable — carries an optional ``retry_after``
    hint honoured by :func:`repro.server.retry.call_with_backoff`."""

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class PlanVerificationError(ExecutionError):
    """Static verification rejected a plan before execution.

    Raised by the executor's opt-in pre-flight check
    (``ExecutorConfig(verify=True)``); carries the verifier's diagnostics.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class TransformationError(ReproError):
    """The query is outside the class handled by the paper's transformation.

    Raised, for example, when every table carries aggregation columns (no
    R1/R2 partition exists) or when a HAVING clause is present.
    """


class PlanningError(ReproError):
    """The optimizer could not produce a plan for the query."""
