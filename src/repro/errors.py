"""Exception hierarchy for the groupby-pushdown engine.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch one type.  The subtypes mirror the layers of the system: typing,
catalog/constraints, parsing, planning/execution, and the transformation
theory itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TypeMismatchError(ReproError):
    """A value does not conform to the SQL data type it was declared with."""


class CatalogError(ReproError):
    """A schema-level problem: unknown table/column, duplicate definition."""


class ConstraintViolation(ReproError):
    """An insert or update violates a declared integrity constraint."""

    def __init__(self, constraint_name: str, message: str) -> None:
        super().__init__(f"{constraint_name}: {message}")
        self.constraint_name = constraint_name


class ParseError(ReproError):
    """The SQL text could not be parsed.

    Carries the (1-based) line and column of the offending token when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindingError(ReproError):
    """A name in a query could not be resolved against the catalog."""


class ExecutionError(ReproError):
    """A runtime failure while evaluating a plan (e.g. bad aggregate input)."""


class PlanVerificationError(ExecutionError):
    """Static verification rejected a plan before execution.

    Raised by the executor's opt-in pre-flight check
    (``ExecutorConfig(verify=True)``); carries the verifier's diagnostics.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class TransformationError(ReproError):
    """The query is outside the class handled by the paper's transformation.

    Raised, for example, when every table carries aggregation columns (no
    R1/R2 partition exists) or when a HAVING clause is present.
    """


class PlanningError(ReproError):
    """The optimizer could not produce a plan for the query."""
