"""The Exchange runner: shard-parallel execution with a byte-metered wire.

This is Section 7 of the paper made executable.  An
:class:`~repro.algebra.ops.Exchange` node splits its child's base table
into partitions (:mod:`repro.storage.partition`), runs the child subtree
once per shard (re-entering the public executor, so shards keep the
configured engine — vector shards stream through the morsel driver), and
merges the shard streams back into one deterministic result:

* ``merge=False`` — the shard outputs are interleaved back into base-scan
  order using the hidden per-relation RowID (shards always execute with
  ``expose_rowids=True``; the extra column is stripped again unless the
  outer config asked for it).  The merged stream is bit-identical to the
  unsharded child's output.
* ``merge=True`` — the child's terminal :class:`GroupApply` is decomposed
  into per-shard *partial* aggregates plus a hidden ``MIN(RowID)`` ordinal,
  and the partials are re-aggregated globally above the wire.  The merge
  contract matches :mod:`repro.engine.vector.parallel`'s order-independent
  one (integer COUNT/SUM/AVG exact, MIN/MAX by the engine's comparator).
  The global merge runs through the requesting engine's *own* grouped
  aggregation over the ordinal-ordered partial union, so the merged
  stream is bit-identical to the unsharded GroupApply on that engine —
  group order included.

The wire is deterministic and measured, not estimated: every shard
delivery is serialized at the transport's pinned pickle protocol
(:data:`repro.server.transport.WIRE_PICKLE_PROTOCOL`) and the byte
length of the actual blob is what the governor's transfer meter and
:class:`~repro.engine.stats.ExchangeStats` record, multiplied by the
mode's fan-out (gather x1, shuffle x2, broadcast x shards).  Receives
always pass through the transport's **restricted unpickler** — even on
the in-memory wire — so a forged payload is rejected with a typed
:class:`~repro.errors.WireFormatError` regardless of transport.  Each
delivery passes an ``"exchange"`` fault-injection point; an injected
kernel fault (or a shard crashing mid-run) degrades the whole Exchange to
single-site execution of the original child, accounted in
``stats.degradations`` — the same ladder the vector kernels use.

Two transports carry the deliveries (``config.transport``):

* ``"memory"`` (default) — shards run in-process; the wire is a pickle
  round-trip through the restricted loader.  Byte accounting is real,
  failure independence is not.
* ``"socket"`` — one OS process per shard behind the framed RPC of
  :mod:`repro.engine.shardrpc`: per-call deadlines, jittered retries,
  idempotent request IDs, health-checked failover.  A delivery whose
  every worker is dead raises :class:`KernelFault` into the same
  single-site degrade ladder, so the answer never changes.  Payload
  byte accounting (``bytes_shipped``) is computed identically to the
  memory wire; the extra frames-on-the-wire total lands in
  ``wire_bytes``.
"""

from __future__ import annotations

import pickle
from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.ops import (
    AggregateSpec,
    Exchange,
    GroupApply,
    PlanNode,
    Relation,
    Select,
)
from repro.catalog.catalog import Database
from repro.engine import faults
from repro.engine.dataset import DataSet
from repro.engine.faults import KernelFault
from repro.engine.governor import ResourceGovernor
from repro.engine.stats import ExchangeStats, ExecutionStats, NodeStats
from repro.errors import ExecutionError, ShardUnavailable
from repro.expressions.ast import Aggregate, ColumnRef
from repro.server.transport import WIRE_PICKLE_PROTOCOL, restricted_loads
from repro.sqltypes.values import NULL, SqlValue, is_null, sort_key, sql_div
from repro.storage.partition import PartitionSpec, partition_table

#: Hidden partial column carrying each group's first-appearance RowID.
ORDINAL_COLUMN = "__ord"


def exchange_fanout(mode: str, shards: int) -> int:
    """How many times one shipped row crosses the wire under ``mode``."""
    if mode == "broadcast":
        return max(1, shards)
    return 2 if mode == "shuffle" else 1


# -- aggregate decomposition -------------------------------------------------


class DecomposedSpec:
    """One original aggregate and the partial column(s) it merges from."""

    __slots__ = ("name", "function", "partial_names")

    def __init__(self, name: str, function: str, partial_names: Tuple[str, ...]):
        self.name = name
        self.function = function
        self.partial_names = partial_names


def decompose_aggregates(
    specs: Sequence[AggregateSpec],
) -> "Optional[Tuple[List[AggregateSpec], List[DecomposedSpec]]]":
    """Split ``specs`` into shard-local partials plus a global merge recipe.

    Returns ``None`` when any spec is not decomposable: only *bare*,
    non-DISTINCT aggregates qualify (COUNT/SUM/MIN/MAX partials merge by
    sum/sum/min/max; AVG becomes a hidden SUM + COUNT pair finalized
    exactly like :func:`repro.engine.aggregation.compute_aggregate`).
    DISTINCT and arithmetic-over-aggregate specs are rejected — their
    partials don't merge — and the planner falls back to ship-all.
    """
    partials: List[AggregateSpec] = []
    merged: List[DecomposedSpec] = []
    for i, spec in enumerate(specs):
        expression = spec.expression
        if not isinstance(expression, Aggregate) or expression.distinct:
            return None
        function = expression.function
        if function in ("COUNT", "SUM", "MIN", "MAX"):
            partial_name = f"__p{i}"
            partials.append(AggregateSpec(partial_name, expression))
            merged.append(DecomposedSpec(spec.name, function, (partial_name,)))
        elif function == "AVG":
            sum_name, count_name = f"__p{i}s", f"__p{i}c"
            partials.append(
                AggregateSpec(sum_name, Aggregate("SUM", expression.argument))
            )
            partials.append(
                AggregateSpec(count_name, Aggregate("COUNT", expression.argument))
            )
            merged.append(
                DecomposedSpec(spec.name, "AVG", (sum_name, count_name))
            )
        else:
            return None
    return partials, merged


# -- plan plumbing -----------------------------------------------------------


def _scan_chain_relation(plan: PlanNode) -> Relation:
    """The single Relation at the bottom of a Select* chain.

    The Exchange contract (DESIGN.md section 14) requires the subtree below
    the wire to be linear in exactly one partitioned base table; a
    Relation + Select* chain guarantees that *and* that RowID order
    survives to the shard output, which is what the ordinal merge needs.
    """
    cursor = plan
    while isinstance(cursor, Select):
        cursor = cursor.child
    if not isinstance(cursor, Relation):
        raise ExecutionError(
            "Exchange expects a Relation/Select* chain below the wire, "
            f"found {type(cursor).__name__}"
        )
    return cursor


def _resolve_partition_spec(
    node: Exchange, relation: Relation, database: Database
) -> PartitionSpec:
    """The concrete partitioning for this Exchange: explicit keys win, then
    a spec declared in the catalog, then RowID partitioning."""
    declared = database.partitioning.get(relation.table_name)
    column: Optional[str] = None
    bounds: Tuple = ()
    if node.keys:
        key = node.keys[0]
        prefix, _, bare = key.rpartition(".")
        if prefix and prefix != relation.correlation:
            raise ExecutionError(
                f"Exchange key {key!r} does not name the partitioned "
                f"relation {relation.correlation!r}"
            )
        column = bare
        if (
            isinstance(declared, PartitionSpec)
            and declared.column == column
            and declared.method == node.partitioning
        ):
            bounds = declared.bounds
    elif isinstance(declared, PartitionSpec):
        column = declared.column
        if declared.method == node.partitioning:
            bounds = declared.bounds
    return PartitionSpec(node.partitioning, column, node.shards, bounds)


def _merge_substats(
    stats: ExecutionStats, governor: ResourceGovernor, sub: ExecutionStats
) -> None:
    """Fold one shard run's resilience counters into the outer execution."""
    stats.degradations += sub.degradations
    stats.degradation_events.extend(sub.degradation_events)
    stats.exchanges.extend(sub.exchanges)
    governor.spill_count += sub.spill_count
    governor.spilled_rows += sub.spilled_rows
    if stats.pipelines is not None and sub.pipelines is not None:
        stats.pipelines.segments += sub.pipelines.segments
        stats.pipelines.morsels += sub.pipelines.morsels
        stats.pipelines.note_inflight(sub.pipelines.max_inflight_bytes)


# -- the runner --------------------------------------------------------------


def run_exchange(
    database: Database,
    config,
    params: Optional[Mapping[str, SqlValue]],
    node: Exchange,
    stats: ExecutionStats,
    governor: ResourceGovernor,
) -> DataSet:
    """Execute one Exchange: partition, run shards, meter the wire, merge.

    Engine-agnostic by construction — both executors delegate here, shard
    subplans re-enter the public executor under the outer config (same
    engine, morsels, workers), and the recorded :class:`NodeStats` is
    deterministic, so row and vector stats stay identical.
    """
    label = node.label()
    try:
        return _run_sharded(database, config, params, node, stats, governor, label)
    except (KernelFault, ShardUnavailable) as error:
        if not config.degrade:
            raise
        # A shard died mid-exchange — or, on the socket transport, no
        # worker could even be reached (ShardUnavailable escaping the
        # retry/failover layer means the whole pool is down): degrade to
        # single-site execution of the original child at the coordinator
        # (no wire, exact semantics).
        stats.note_degradation(label, error)
        governor.check(label)
        fallback_config = replace(
            config, shards=1, exchange="off", rewrites=(), verify=False
        )
        from repro.engine.executor import Executor

        result, sub_stats = Executor(database, fallback_config, params).run(
            node.child
        )
        _merge_substats(stats, governor, sub_stats)
        stats.record(
            id(node),
            NodeStats(label, "exchange", (result.cardinality,), result.cardinality, 0),
        )
        return result


def _run_sharded(
    database: Database,
    config,
    params: Optional[Mapping[str, SqlValue]],
    node: Exchange,
    stats: ExecutionStats,
    governor: ResourceGovernor,
    label: str,
) -> DataSet:
    from repro.engine.executor import Executor, rowid_column

    if node.merge:
        child = node.child
        if not isinstance(child, GroupApply):
            raise ExecutionError(
                "Exchange(merge=True) requires a GroupApply child"
            )
        decomposition = decompose_aggregates(child.aggregates)
        if decomposition is None:
            raise ExecutionError(
                "Exchange(merge=True) over non-decomposable aggregates; "
                "use merge=False (ship-all) instead"
            )
        partial_specs, merged_specs = decomposition
        relation = _scan_chain_relation(child.child)
        ordinal = AggregateSpec(
            ORDINAL_COLUMN,
            Aggregate("MIN", ColumnRef(relation.correlation, "#rowid")),
        )
        shard_plan: PlanNode = GroupApply(
            child.child, child.grouping_columns, tuple(partial_specs) + (ordinal,)
        )
    else:
        relation = _scan_chain_relation(node.child)
        shard_plan = node.child

    table = database.table(relation.table_name)
    spec = _resolve_partition_spec(node, relation, database)
    partitions = partition_table(table, spec)
    # Shards always expose RowIDs: the ordinal merge needs them.  The
    # extra column is stripped below unless the outer config asked for it.
    shard_config = replace(
        config,
        shards=1,
        exchange="off",
        rewrites=(),
        verify=False,
        expose_rowids=True,
    )

    deliveries: List[List[tuple]] = []
    columns: Tuple[str, ...] = ()
    ordering: Tuple[str, ...] = ()
    received = 0
    raw_bytes = 0
    rpc_before = rpc_after = None
    health: Tuple[str, ...] = ()
    if config.transport == "socket":
        from repro.engine.shardrpc import get_pool

        pool = get_pool(
            len(partitions),
            timeout_seconds=config.rpc_timeout_seconds,
            attempts=config.rpc_attempts,
        )
        rpc_before = pool.counters.snapshot()
        worker_config = {
            "engine": config.engine,
            "join_algorithm": config.join_algorithm,
            "aggregation": config.aggregation,
            "exploit_orders": config.exploit_orders,
            "morsel_size": config.morsel_size,
            "memory_limit_bytes": config.memory_limit_bytes,
            "max_rows": config.max_rows,
            "spill": config.spill,
            "degrade": config.degrade,
        }
        for index, shard_table in enumerate(partitions):
            # Same per-delivery crash point the memory wire exposes, so
            # the existing fault matrix and chaos schedules carry over.
            faults.injection_point("exchange", label)
            response = pool.execute(index, {
                "op": "execute",
                "table": shard_table,
                "table_name": relation.table_name,
                "plan": shard_plan,
                "params": dict(params) if params else None,
                "config": worker_config,
            })
            rows = list(response["rows"])
            deliveries.append(rows)
            columns = tuple(response["columns"])
            ordering = tuple(response["ordering"])
            received += len(rows)
            # Payload accounting identical to the memory wire (the framed
            # request/response totals land in wire_bytes instead).
            raw_bytes += len(
                pickle.dumps(rows, protocol=WIRE_PICKLE_PROTOCOL)
            )
            stats.degradations += response.get("degradations", 0)
            stats.degradation_events.extend(
                response.get("degradation_events", ())
            )
            governor.spill_count += response.get("spill_count", 0)
            governor.spilled_rows += response.get("spilled_rows", 0)
        rpc_after = pool.counters.snapshot()
        health = tuple(
            f"{entry['shard']}: {entry['health']}"
            for entry in pool.health()
        )
    else:
        for shard_table in partitions:
            shard_db = database.snapshot_view()
            shard_db.tables[relation.table_name] = shard_table
            result, sub_stats = Executor(shard_db, shard_config, params).run(
                shard_plan
            )
            _merge_substats(stats, governor, sub_stats)
            # The wire: serialize at the pinned wire protocol, meter the
            # actual bytes, decode through the restricted unpickler, and
            # give the fault injector its per-delivery crash point.
            faults.injection_point("exchange", label)
            blob = pickle.dumps(
                list(result.rows), protocol=WIRE_PICKLE_PROTOCOL
            )
            rows = restricted_loads(blob)
            deliveries.append(rows)
            columns = tuple(result.columns)
            ordering = tuple(result.ordering)
            received += len(rows)
            raw_bytes += len(blob)

    fanout = exchange_fanout(node.mode, node.shards)
    rows_shipped = received * fanout
    bytes_shipped = raw_bytes * fanout
    governor.charge_transfer(rows_shipped, bytes_shipped, label)

    if node.merge:
        merged = _merge_two_phase(
            node.child, columns, deliveries, merged_specs, config, params
        )
    else:
        merged = _merge_ordinal(
            columns, ordering, deliveries, rowid_column(relation.correlation),
            config.expose_rowids,
        )
    exchange_stats = ExchangeStats(
        label, node.mode, node.shards, rows_shipped, bytes_shipped,
        transport=config.transport, shard_health=health,
    )
    if rpc_before is not None and rpc_after is not None:
        exchange_stats.rpc_retries = rpc_after["retries"] - rpc_before["retries"]
        exchange_stats.rpc_timeouts = (
            rpc_after["timeouts"] - rpc_before["timeouts"]
        )
        exchange_stats.rpc_failovers = (
            rpc_after["failovers"] - rpc_before["failovers"]
        )
        exchange_stats.wire_bytes = (
            rpc_after["wire_bytes"] - rpc_before["wire_bytes"]
        )
    stats.exchanges.append(exchange_stats)
    stats.record(
        id(node),
        NodeStats(label, "exchange", (received,), merged.cardinality, rows_shipped),
    )
    return merged


def _merge_ordinal(
    columns: Tuple[str, ...],
    ordering: Tuple[str, ...],
    deliveries: List[List[tuple]],
    ordinal_column: str,
    keep_rowids: bool,
) -> DataSet:
    """Interleave shard streams back into base-scan (RowID) order."""
    try:
        ordinal_index = columns.index(ordinal_column)
    except ValueError:
        raise ExecutionError(
            f"shard output lost the ordinal column {ordinal_column!r}"
        ) from None
    rows = [row for delivery in deliveries for row in delivery]
    rows.sort(key=lambda row: row[ordinal_index])
    if keep_rowids:
        return DataSet(columns, rows, ordering=ordering)
    kept = [i for i in range(len(columns)) if i != ordinal_index]
    out_columns = tuple(columns[i] for i in kept)
    out_rows = [tuple(row[i] for i in kept) for row in rows]
    out_ordering = tuple(name for name in ordering if name != ordinal_column)
    return DataSet(out_columns, out_rows, ordering=out_ordering)


def _merge_two_phase(
    original: GroupApply,
    columns: Tuple[str, ...],
    deliveries: List[List[tuple]],
    merged_specs: List[DecomposedSpec],
    config,
    params: Optional[Mapping[str, SqlValue]],
) -> DataSet:
    """Re-aggregate shard partials into the one-phase operator's output.

    The shard streams are interleaved into ordinal order (a partial row's
    ordinal is its group's minimum RowID within that shard, so the union
    replays groups in their base-scan first-appearance order) and then fed
    through the *requesting engine's own* grouped-aggregation operator
    with the merge aggregates: COUNT and SUM partials merge by SUM, MIN
    and MAX by themselves, AVG from its hidden SUM + COUNT pair.  Running
    the real operator rather than a hand-rolled fold is what makes the
    merged stream bit-identical to the unsharded GroupApply on either
    engine — whatever group order that engine's kernel emits over the
    original input, it emits over the ordinal-ordered union too.
    """
    index_of: Dict[str, int] = {name: i for i, name in enumerate(columns)}
    ordinal_index = index_of[ORDINAL_COLUMN]
    rows = [row for delivery in deliveries for row in delivery]
    # sort_key, not the raw value: an empty shard's scalar partial carries
    # a NULL ordinal (MIN over no rows), which collates first.
    rows.sort(key=lambda row: sort_key((row[ordinal_index],)))
    union = DataSet(columns, rows)

    merge_specs: List[AggregateSpec] = []
    avg_pairs: Dict[int, Tuple[str, str]] = {}
    for position, spec in enumerate(merged_specs):
        if spec.function == "AVG":
            sum_name, count_name = f"__m{position}s", f"__m{position}c"
            merge_specs.append(
                AggregateSpec(
                    sum_name,
                    Aggregate("SUM", ColumnRef("", spec.partial_names[0])),
                )
            )
            merge_specs.append(
                AggregateSpec(
                    count_name,
                    Aggregate("SUM", ColumnRef("", spec.partial_names[1])),
                )
            )
            avg_pairs[position] = (sum_name, count_name)
        else:
            merge_function = (
                "SUM" if spec.function in ("COUNT", "SUM") else spec.function
            )
            merge_specs.append(
                AggregateSpec(
                    spec.name,
                    Aggregate(
                        merge_function, ColumnRef("", spec.partial_names[0])
                    ),
                )
            )

    grouping = original.grouping_columns
    if config.engine == "vector":
        from repro.engine.vector import kernels
        from repro.engine.vector.batch import ColumnBatch

        batch, __ = kernels.grouped_aggregate(
            ColumnBatch.from_dataset(union),
            grouping,
            merge_specs,
            params,
            mode=config.aggregation,
        )
        merged = batch.to_dataset()
    else:
        from repro.engine.aggregation import hash_group, sort_group

        if config.aggregation == "sort":
            merged, __ = sort_group(union, grouping, merge_specs, params)
        else:
            merged, __ = hash_group(union, grouping, merge_specs, params)

    if not avg_pairs:
        return merged

    # Splice each AVG back together from its merged SUM/COUNT pair,
    # finalizing exactly as the one-phase operator does (integer totals
    # use true division, everything else the NULL-propagating sql_div).
    n_group = len(grouping)
    merged_index = {name: i for i, name in enumerate(merged.columns)}
    out_columns = merged.columns[:n_group] + tuple(
        spec.name for spec in merged_specs
    )
    out_rows: List[Tuple[SqlValue, ...]] = []
    for row in merged.rows:
        values: List[SqlValue] = list(row[:n_group])
        for position, spec in enumerate(merged_specs):
            if spec.function == "AVG":
                sum_name, count_name = avg_pairs[position]
                total = row[merged_index[sum_name]]
                count = row[merged_index[count_name]]
                if is_null(count) or count == 0:
                    values.append(NULL)
                elif isinstance(total, int) and not isinstance(total, bool):
                    values.append(total / count)
                else:
                    values.append(sql_div(total, count))
            else:
                values.append(row[merged_index[spec.name]])
        out_rows.append(tuple(values))
    out_ordering = tuple(
        name for name in merged.ordering if name in out_columns
    )
    return DataSet(out_columns, out_rows, ordering=out_ordering)
