"""Physical execution: datasets, operators, executor, and statistics."""

from repro.engine.dataset import DataSet
from repro.engine.executor import Executor, ExecutorConfig, execute, rowid_column
from repro.engine.stats import ExecutionStats, NodeStats

__all__ = [
    "DataSet", "Executor", "ExecutorConfig", "execute", "rowid_column",
    "ExecutionStats", "NodeStats",
]
