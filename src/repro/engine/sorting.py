"""Sorting of datasets (NULLS FIRST, ``=ⁿ``-consistent collation)."""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.engine.dataset import DataSet
from repro.engine.governor import (
    ResourceGovernor,
    _ReverseKey,
    estimate_table_bytes,
    external_sort_rows,
)
from repro.sqltypes.values import sort_key


def sort_dataset(
    dataset: DataSet,
    columns: Sequence[str],
    descending: Optional[Sequence[bool]] = None,
    governor: Optional[ResourceGovernor] = None,
) -> Tuple[DataSet, int]:
    """Sort rows on ``columns``; NULLs first, all NULLs collating equal.

    ``descending`` gives a per-column direction (default all ascending);
    mixed directions are handled with a stable multi-pass sort.  Under
    memory pressure the sort runs externally with one composite key
    (descending components comparison-inverted), which yields the same
    permutation as the stable multi-pass form.
    Returns (sorted dataset, work units ≈ n·log₂n comparisons).
    """
    indexes = dataset.indexes_of(columns)
    flags = tuple(descending) if descending else tuple(False for __ in columns)
    n = dataset.cardinality
    if governor is not None and governor.should_spill(
        estimate_table_bytes(n, len(dataset.columns)), "sort"
    ):
        directed = tuple(zip(indexes, flags))

        def composite(row):
            return tuple(
                _ReverseKey(sort_key((row[i],))) if desc else sort_key((row[i],))
                for i, desc in directed
            )

        ordered = external_sort_rows(
            dataset.rows, composite, len(dataset.columns), governor, "sort"
        )
    else:
        ordered = list(dataset.rows)
        # Stable sorts compose: apply keys from least to most significant.
        for index, desc in reversed(list(zip(indexes, flags))):
            ordered.sort(key=lambda row: sort_key((row[index],)), reverse=desc)
    work = n * max(1, math.ceil(math.log2(n))) if n > 1 else n
    # Record the order property only for the all-ascending case (the form
    # downstream operators can exploit).
    ordering = (
        tuple(dataset.columns[i] for i in indexes) if not any(flags) else ()
    )
    return DataSet(dataset.columns, ordered, ordering=ordering), work


def is_sorted_on(dataset: DataSet, columns: Sequence[str]) -> bool:
    """Does the dataset's known ordering group rows by ``columns``?

    True when ``columns`` is exactly the leading prefix of the ordering
    (as a set): rows equal on the prefix are then contiguous, which is all
    grouping and merge-joining need.
    """
    from repro.errors import BindingError

    try:
        wanted = set(dataset.indexes_of(columns))
    except BindingError:
        return False
    if not dataset.ordering or len(dataset.ordering) < len(wanted):
        return False
    prefix = set(dataset.indexes_of(dataset.ordering[: len(wanted)]))
    return prefix == wanted
