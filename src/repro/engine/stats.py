"""Execution statistics: per-operator cardinalities and work counters.

The paper's evaluation arguments are all about cardinalities flowing between
operators ("the join is reduced from 10000 × 100 to 100 × 100 while the
group-by input stays 10000").  The executor records exactly those numbers
here, and the benchmark harness prints them next to the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class PipelineStats:
    """Morsel-pipeline counters for one vector execution.

    ``segments`` counts streamed pipeline segments (fused operator chains
    bounded by pipeline breakers), ``morsels`` the chunks driven through
    them, and ``max_inflight_bytes`` the peak *deterministic* estimate of
    per-morsel state held at any one time (morsel views plus partial
    aggregation state) — the observable form of the "peak memory is
    bounded by morsel size, not input size" claim.  ``None`` on
    :class:`ExecutionStats` means the execution never streamed (row
    engine, or ``morsel_size=None``).
    """

    segments: int = 0
    morsels: int = 0
    max_inflight_bytes: int = 0

    def note_inflight(self, estimated_bytes: int) -> None:
        if estimated_bytes > self.max_inflight_bytes:
            self.max_inflight_bytes = estimated_bytes


@dataclass
class ExchangeStats:
    """Wire counters for one Exchange operator during one execution.

    ``rows_shipped``/``bytes_shipped`` are *measured* on the serialized
    stream (the spill codec is the wire format), already multiplied by the
    mode's fan-out — a broadcast of 10 rows to 4 shards ships 40.  One
    entry per Exchange node, in execution order, mirroring
    :attr:`ExecutionStats.pipelines`.
    """

    label: str
    mode: str
    partitions: int
    rows_shipped: int = 0
    bytes_shipped: int = 0
    #: ``"memory"`` or ``"socket"`` — which wire carried the deliveries.
    transport: str = "memory"
    #: RPC counters for this Exchange (socket transport only; all zero on
    #: the memory wire): backoffs taken, per-call socket timeouts,
    #: deliveries re-dispatched to a peer, and bytes on the real wire
    #: (frames in both directions, as opposed to ``bytes_shipped``'s
    #: transport-independent payload accounting).
    rpc_retries: int = 0
    rpc_timeouts: int = 0
    rpc_failovers: int = 0
    wire_bytes: int = 0
    #: Per-shard health after the exchange, e.g. ``("shard-0: healthy",)``.
    shard_health: Tuple[str, ...] = ()

    def describe(self) -> str:
        text = (
            f"{self.mode} x{self.partitions}: {self.rows_shipped} rows, "
            f"{self.bytes_shipped} bytes shipped ({self.label})"
        )
        if self.transport != "memory":
            text += (
                f" [transport={self.transport}, retries={self.rpc_retries}, "
                f"timeouts={self.rpc_timeouts}, "
                f"failovers={self.rpc_failovers}, "
                f"wire_bytes={self.wire_bytes}]"
            )
        if self.shard_health:
            text += " health: " + ", ".join(self.shard_health)
        return text


@dataclass
class NodeStats:
    """Observed behaviour of one plan operator during one execution."""

    label: str
    kind: str  # e.g. "scan", "select", "join", "groupby", "project"
    input_cardinalities: Tuple[int, ...]
    output_cardinality: int
    work: int  # algorithm-dependent unit: tuples examined / comparisons

    @property
    def join_work_product(self) -> int:
        """For binary nodes: the |L| × |R| pairing the paper quotes."""
        if len(self.input_cardinalities) == 2:
            return self.input_cardinalities[0] * self.input_cardinalities[1]
        return 0


@dataclass
class ExecutionStats:
    """All operator stats for one plan execution.

    Besides the per-operator cardinality/work records, carries the
    resilience counters: ``degradations`` (vector kernels that fell back
    to the row engine, with the operator label and cause in
    ``degradation_events``) and ``spill_count``/``spilled_rows`` (blocking
    operators that partitioned state to disk under memory pressure).
    """

    nodes: Dict[int, NodeStats] = field(default_factory=dict)
    order: List[int] = field(default_factory=list)
    degradations: int = 0
    degradation_events: List[str] = field(default_factory=list)
    spill_count: int = 0
    spilled_rows: int = 0
    pipelines: Optional[PipelineStats] = None
    exchanges: List[ExchangeStats] = field(default_factory=list)

    def record(self, node_id: int, stats: NodeStats) -> None:
        self.nodes[node_id] = stats
        self.order.append(node_id)

    def note_degradation(self, label: str, error: BaseException) -> None:
        """One vector operator retried on the row engine (and why)."""
        self.degradations += 1
        self.degradation_events.append(
            f"{label}: {type(error).__name__}: {error}"
        )

    def by_kind(self, kind: str) -> List[NodeStats]:
        return [self.nodes[i] for i in self.order if self.nodes[i].kind == kind]

    def total_work(self) -> int:
        """Sum of per-operator work: the engine's machine-independent cost."""
        return sum(self.nodes[i].work for i in self.order)

    def join_input_sizes(self) -> List[Tuple[int, int]]:
        """(|L|, |R|) of every join/product in execution order."""
        return [
            (s.input_cardinalities[0], s.input_cardinalities[1])
            for s in (self.nodes[i] for i in self.order)
            if len(s.input_cardinalities) == 2
        ]

    def groupby_input_rows(self) -> int:
        """Total rows fed to grouping operators (the Figure 8 quantity)."""
        return sum(s.input_cardinalities[0] for s in self.by_kind("groupby"))

    def rows_shipped(self) -> int:
        """Total rows crossing Exchange wires (mode fan-out included)."""
        return sum(exchange.rows_shipped for exchange in self.exchanges)

    def bytes_shipped(self) -> int:
        """Total serialized bytes crossing Exchange wires."""
        return sum(exchange.bytes_shipped for exchange in self.exchanges)

    def cardinality_map(self) -> Dict[int, Tuple[Tuple[int, ...], int]]:
        """The shape :func:`repro.algebra.display.render_annotated` wants."""
        return {
            node_id: (s.input_cardinalities, s.output_cardinality)
            for node_id, s in self.nodes.items()
        }

    def summary(self) -> str:
        lines = []
        for node_id in self.order:
            s = self.nodes[node_id]
            inputs = " x ".join(str(c) for c in s.input_cardinalities) or "-"
            lines.append(
                f"{s.kind:<8} {inputs:>15} -> {s.output_cardinality:<8} "
                f"work={s.work:<10} {s.label}"
            )
        lines.append(f"total work: {self.total_work()}")
        if self.pipelines is not None:
            p = self.pipelines
            lines.append(
                f"pipelines: {p.segments} segments, {p.morsels} morsels, "
                f"max in-flight ~{p.max_inflight_bytes} bytes"
            )
        for exchange in self.exchanges:
            lines.append(f"exchange: {exchange.describe()}")
        if self.spill_count:
            lines.append(
                f"spills: {self.spill_count} ({self.spilled_rows} rows to disk)"
            )
        if self.degradations:
            lines.append(f"degradations: {self.degradations}")
            lines.extend(f"  {event}" for event in self.degradation_events)
        return "\n".join(lines)
