"""Join algorithms: nested-loop, hash, and sort-merge.

All three produce identical results (σ[C](L × R) with WHERE semantics:
a pair qualifies only when the condition is TRUE); they differ in the work
they report, which is what the cost study consumes.

Equi-join keys are extracted from the conjuncts of the join condition;
non-equality residue is applied as a post-filter.  NULL join keys never
match under ``=`` (UNKNOWN ⇒ drop), per SQL2 — this differs from the
grouping semantics and both are exercised by tests.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

from repro.engine.dataset import DataSet
from repro.engine.governor import (
    PartitionedSpill,
    ResourceGovernor,
    estimate_table_bytes,
    external_sort_rows,
)
from repro.expressions.analysis import classify_atomic, Type2Condition
from repro.expressions.ast import Expression
from repro.expressions.eval import ReusableRowScope, evaluate_predicate
from repro.expressions.normalize import conjoin, split_conjuncts
from repro.sqltypes.values import SqlValue, is_null, sort_key


def _combined(left: DataSet, right: DataSet) -> Tuple[str, ...]:
    return left.columns + right.columns


def _side_index(dataset: DataSet, name: str) -> Optional[int]:
    """The column's index when it binds on this side, else ``None``."""
    from repro.errors import BindingError

    try:
        return dataset.index_of(name)
    except BindingError:
        return None


def extract_equi_keys(
    condition: Optional[Expression], left: DataSet, right: DataSet
) -> Tuple[List[Tuple[int, int]], Optional[Expression]]:
    """Split a join condition into equi-key index pairs and a residual.

    Returns ``(pairs, residual)`` where each pair is ``(left_index,
    right_index)`` and ``residual`` is the conjunction of everything that is
    not a cross-input column equality.  An equality is a join key only when
    its two columns bind on *opposite* sides, each unambiguously: an
    equality between two columns of the same side (e.g. ``A.X = A.Y``) is
    a per-row filter, not a key, and stays in the residual.
    """
    pairs: List[Tuple[int, int]] = []
    residual: List[Expression] = []
    for conjunct in split_conjuncts(condition):
        classified = classify_atomic(conjunct)
        matched = False
        if isinstance(classified, Type2Condition):
            first = classified.left.qualified
            second = classified.right.qualified
            first_left = _side_index(left, first)
            first_right = _side_index(right, first)
            second_left = _side_index(left, second)
            second_right = _side_index(right, second)
            if (
                first_left is not None
                and first_right is None
                and second_right is not None
                and second_left is None
            ):
                pairs.append((first_left, second_right))
                matched = True
            elif (
                second_left is not None
                and second_right is None
                and first_right is not None
                and first_left is None
            ):
                pairs.append((second_left, first_right))
                matched = True
        if not matched:
            residual.append(conjunct)
    return pairs, conjoin(residual)


def nested_loop_join(
    left: DataSet,
    right: DataSet,
    condition: Optional[Expression],
    params: Optional[Mapping[str, SqlValue]] = None,
    governor: Optional[ResourceGovernor] = None,
) -> Tuple[DataSet, int]:
    """Examine every pair; work = |L| × |R| (the paper's join-size metric)."""
    columns = _combined(left, right)
    out_rows: List[Tuple[SqlValue, ...]] = []
    scope = ReusableRowScope(columns)
    for left_row in left.rows:
        for right_row in right.rows:
            if governor is not None:
                governor.tick("nested loop join")
            combined = left_row + right_row
            if condition is None or evaluate_predicate(
                condition, scope.bind(combined), params
            ).is_true():
                out_rows.append(combined)
    work = left.cardinality * right.cardinality
    return DataSet(columns, out_rows), work


def hash_join(
    left: DataSet,
    right: DataSet,
    condition: Optional[Expression],
    params: Optional[Mapping[str, SqlValue]] = None,
    governor: Optional[ResourceGovernor] = None,
) -> Tuple[DataSet, int]:
    """Hash join on extracted equi-keys; falls back to nested loop when the
    condition has no usable equality.  Work = |L| + |R| + matches examined.

    When a governor signals memory pressure on the build side, the join
    switches to a grace (partitioned) strategy that spills both inputs to
    disk and joins partition-by-partition — producing the identical output
    rows in the identical order, with the identical work count.
    """
    pairs, residual = extract_equi_keys(condition, left, right)
    if not pairs:
        return nested_loop_join(left, right, condition, params, governor)

    columns = _combined(left, right)
    left_keys = [p[0] for p in pairs]
    right_keys = [p[1] for p in pairs]

    if governor is not None:
        build_bytes = estimate_table_bytes(
            right.cardinality, len(right.columns)
        )
        if governor.should_spill(build_bytes, "hash join build"):
            return _grace_hash_join(
                left, right, columns, left_keys, right_keys,
                residual, params, governor, build_bytes,
            )

    table: dict = {}
    for right_row in right.rows:
        key_values = tuple(right_row[i] for i in right_keys)
        if any(is_null(v) for v in key_values):
            continue  # NULL keys never match under `=`
        table.setdefault(key_values, []).append(right_row)

    out_rows: List[Tuple[SqlValue, ...]] = []
    probes = 0
    scope = ReusableRowScope(columns)
    for left_row in left.rows:
        if governor is not None:
            governor.tick("hash join probe")
        key_values = tuple(left_row[i] for i in left_keys)
        if any(is_null(v) for v in key_values):
            continue
        for right_row in table.get(key_values, ()):
            probes += 1
            combined = left_row + right_row
            if residual is None or evaluate_predicate(
                residual, scope.bind(combined), params
            ).is_true():
                out_rows.append(combined)
    work = left.cardinality + right.cardinality + probes
    return DataSet(columns, out_rows), work


def _grace_hash_join(
    left: DataSet,
    right: DataSet,
    columns: Tuple[str, ...],
    left_keys: List[int],
    right_keys: List[int],
    residual: Optional[Expression],
    params: Optional[Mapping[str, SqlValue]],
    governor: ResourceGovernor,
    build_bytes: int,
) -> Tuple[DataSet, int]:
    """Grace hash join: partition both sides to disk, join per partition.

    Equal keys hash to the same partition, so every left row meets exactly
    the right rows it would have met in memory, in right-input order.
    Each probe row is tagged with its original left index and the merged
    output is stably re-sorted on that index, reproducing the in-memory
    probe order exactly.  Probe counts (and hence work) are unchanged.
    """
    partitions = governor.spill_partitions(build_bytes)
    spill = governor.spill_manager()
    chunk = max(16, governor.rows_per_run(len(columns)) // partitions)

    build = PartitionedSpill(spill, partitions, chunk, "join-build")
    for right_row in right.rows:
        governor.tick("hash join partition")
        key_values = tuple(right_row[i] for i in right_keys)
        if any(is_null(v) for v in key_values):
            continue  # NULL keys never match under `=`
        build.add(hash(key_values) % partitions, right_row)

    probe = PartitionedSpill(spill, partitions, chunk, "join-probe")
    for index, left_row in enumerate(left.rows):
        governor.tick("hash join partition")
        key_values = tuple(left_row[i] for i in left_keys)
        if any(is_null(v) for v in key_values):
            continue
        probe.add(hash(key_values) % partitions, (index, left_row))
    governor.note_spill(build.rows_added + probe.rows_added, "hash join")

    tagged: List[Tuple[int, Tuple[SqlValue, ...]]] = []
    probes = 0
    scope = ReusableRowScope(columns)
    for partition in range(partitions):
        table: dict = {}
        for right_row in build.read(partition):
            governor.tick("hash join build")
            key_values = tuple(right_row[i] for i in right_keys)
            table.setdefault(key_values, []).append(right_row)
        for index, left_row in probe.read(partition):
            governor.tick("hash join probe")
            key_values = tuple(left_row[i] for i in left_keys)
            for right_row in table.get(key_values, ()):
                probes += 1
                combined = left_row + right_row
                if residual is None or evaluate_predicate(
                    residual, scope.bind(combined), params
                ).is_true():
                    tagged.append((index, combined))
    tagged.sort(key=lambda item: item[0])
    out_rows = [row for __, row in tagged]
    work = left.cardinality + right.cardinality + probes
    return DataSet(columns, out_rows), work


def sort_merge_join(
    left: DataSet,
    right: DataSet,
    condition: Optional[Expression],
    params: Optional[Mapping[str, SqlValue]] = None,
    governor: Optional[ResourceGovernor] = None,
) -> Tuple[DataSet, int]:
    """Sort-merge join on extracted equi-keys (nested-loop fallback).

    Rows with NULL keys are skipped before the merge (they cannot match).
    Work = sort costs (n log n approximations) + merge scan + matches.
    Under memory pressure each sort phase runs as an external merge sort
    (same stable permutation, so identical output), signalled per side.
    """
    import math

    pairs, residual = extract_equi_keys(condition, left, right)
    if not pairs:
        return nested_loop_join(left, right, condition, params, governor)

    columns = _combined(left, right)
    left_keys = [p[0] for p in pairs]
    right_keys = [p[1] for p in pairs]

    # Exploit interesting orders (§7): an input already sorted on its join
    # keys — e.g. the output of an eager aggregation on GA1+ — skips its
    # sort phase.  NULL-key filtering preserves order.
    from repro.engine.sorting import is_sorted_on

    left_presorted = is_sorted_on(left, [left.columns[i] for i in left_keys])
    right_presorted = is_sorted_on(right, [right.columns[i] for i in right_keys])

    left_filtered = [
        row for row in left.rows if not any(is_null(row[i]) for i in left_keys)
    ]
    right_filtered = [
        row for row in right.rows if not any(is_null(row[i]) for i in right_keys)
    ]
    def sorted_side(filtered, keys, presorted, arity, side):
        if presorted:
            return filtered
        key = lambda row: sort_key(tuple(row[i] for i in keys))
        if governor is not None and governor.should_spill(
            estimate_table_bytes(len(filtered), arity), f"sort-merge {side}"
        ):
            return external_sort_rows(
                filtered, key, arity, governor, f"merge-{side}"
            )
        return sorted(filtered, key=key)

    left_sorted = sorted_side(
        left_filtered, left_keys, left_presorted, len(left.columns), "left"
    )
    right_sorted = sorted_side(
        right_filtered, right_keys, right_presorted, len(right.columns), "right"
    )

    out_rows: List[Tuple[SqlValue, ...]] = []
    matches = 0
    scope = ReusableRowScope(columns)
    i = j = 0
    while i < len(left_sorted) and j < len(right_sorted):
        if governor is not None:
            governor.tick("sort-merge join")
        left_key = sort_key(tuple(left_sorted[i][k] for k in left_keys))
        right_key = sort_key(tuple(right_sorted[j][k] for k in right_keys))
        if left_key < right_key:
            i += 1
        elif right_key < left_key:
            j += 1
        else:
            # Collect the equal-key run on the right, pair with the run on
            # the left.
            j_end = j
            while j_end < len(right_sorted) and sort_key(
                tuple(right_sorted[j_end][k] for k in right_keys)
            ) == right_key:
                j_end += 1
            i_run = i
            while i_run < len(left_sorted) and sort_key(
                tuple(left_sorted[i_run][k] for k in left_keys)
            ) == left_key:
                for right_row in right_sorted[j:j_end]:
                    matches += 1
                    combined = left_sorted[i_run] + right_row
                    if residual is None or evaluate_predicate(
                        residual, scope.bind(combined), params
                    ).is_true():
                        out_rows.append(combined)
                i_run += 1
            i = i_run
            j = j_end

    def sort_cost(n: int) -> int:
        return n * max(1, math.ceil(math.log2(n))) if n > 1 else n

    work = (
        (0 if left_presorted else sort_cost(left.cardinality))
        + (0 if right_presorted else sort_cost(right.cardinality))
        + left.cardinality
        + right.cardinality
        + matches
    )
    # The merge emits runs in left-key order.
    ordering = tuple(left.columns[i] for i in left_keys)
    return DataSet(columns, out_rows, ordering=ordering), work


def cartesian_product(
    left: DataSet,
    right: DataSet,
    governor: Optional[ResourceGovernor] = None,
) -> Tuple[DataSet, int]:
    """L × R with no condition; work = |L| × |R|."""
    columns = _combined(left, right)
    if governor is None:
        out_rows = [
            left_row + right_row
            for left_row in left.rows
            for right_row in right.rows
        ]
    else:
        out_rows = []
        for left_row in left.rows:
            for right_row in right.rows:
                governor.tick("cartesian product")
                out_rows.append(left_row + right_row)
    return DataSet(columns, out_rows), left.cardinality * right.cardinality
