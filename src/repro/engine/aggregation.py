"""Grouping and aggregation with strict SQL2 semantics.

Grouping uses the ``=ⁿ`` duplicate semantics (NULL groups with NULL).  Two
physical strategies are provided:

* :func:`hash_group` — one pass, hash on the group key;
* :func:`sort_group` — sort then scan, with the aggregation *pipelined* into
  the scan (the technique §2 of the paper attributes to the folklore and to
  Klug [9]: aggregation can be computed while grouping).

Aggregate functions follow SQL2: NULL inputs are skipped; ``COUNT(col)``
counts non-NULLs; ``COUNT(*)`` counts rows; SUM/AVG/MIN/MAX over an empty
bag yield NULL.  ``F(AA)`` may be any arithmetic over aggregates
(``COUNT(A1) + SUM(A2 + A3)``); each spec yields exactly one value per
group.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.ops import AggregateSpec
from repro.engine.dataset import DataSet
from repro.engine.governor import (
    PartitionedSpill,
    ResourceGovernor,
    estimate_table_bytes,
    external_sort_rows,
)
from repro.errors import ExecutionError
from repro.expressions.ast import (
    Aggregate,
    Arithmetic,
    ColumnRef,
    Expression,
    HostVariable,
    Literal,
    Negate,
    aggregates as collect_aggregates,
)
from repro.expressions.eval import ReusableRowScope, evaluate_scalar
from repro.sqltypes.values import (
    NULL,
    SqlValue,
    group_key,
    is_null,
    sort_key,
    sql_add,
    sql_div,
    sql_mul,
    sql_neg,
    sql_sub,
)

_ARITHMETIC = {"+": sql_add, "-": sql_sub, "*": sql_mul, "/": sql_div}


def _values_extractor(indexes: Sequence[int]):
    """A precompiled ``row -> tuple(row[i] for i in indexes)``.

    Hoisted out of per-row loops: the closure (or ``itemgetter``) avoids
    re-creating a generator and tuple-comprehension frame per row.
    """
    if not indexes:
        return lambda row: ()
    if len(indexes) == 1:
        index = indexes[0]
        return lambda row: (row[index],)
    from operator import itemgetter

    return itemgetter(*indexes)


def compute_aggregate(
    aggregate: Aggregate,
    dataset: DataSet,
    group_rows: Sequence[Tuple[SqlValue, ...]],
    params: Optional[Mapping[str, SqlValue]] = None,
) -> SqlValue:
    """Evaluate one aggregate function over the rows of one group."""
    if aggregate.argument is None:  # COUNT(*)
        return len(group_rows)

    values: List[SqlValue] = []
    scope = ReusableRowScope(dataset.columns)
    for row in group_rows:
        value = evaluate_scalar(aggregate.argument, scope.bind(row), params)
        if not is_null(value):
            values.append(value)
    if aggregate.distinct:
        seen: Dict[Tuple, SqlValue] = {}
        for value in values:
            seen.setdefault(group_key((value,)), value)
        values = list(seen.values())

    function = aggregate.function
    if function == "COUNT":
        return len(values)
    if not values:
        return NULL
    if function == "SUM":
        total = values[0]
        for value in values[1:]:
            total = sql_add(total, value)
        return total
    if function == "AVG":
        total = values[0]
        for value in values[1:]:
            total = sql_add(total, value)
        return sql_div(total, len(values)) if not isinstance(total, int) else total / len(values)
    if function == "MIN":
        return min(values, key=lambda v: sort_key((v,)))
    if function == "MAX":
        return max(values, key=lambda v: sort_key((v,)))
    raise ExecutionError(f"unknown aggregate function {function}")


def evaluate_aggregate_expression(
    expression: Expression,
    dataset: DataSet,
    group_rows: Sequence[Tuple[SqlValue, ...]],
    params: Optional[Mapping[str, SqlValue]] = None,
) -> SqlValue:
    """Evaluate an ``fᵢ(AA)`` — arithmetic over aggregates — for one group.

    Column references outside aggregates resolve against the group's first
    row; this is only sound for grouping columns (identical across the
    group), which is all SQL permits there anyway.
    """
    if isinstance(expression, Aggregate):
        return compute_aggregate(expression, dataset, group_rows, params)
    if isinstance(expression, Arithmetic):
        left = evaluate_aggregate_expression(expression.left, dataset, group_rows, params)
        right = evaluate_aggregate_expression(expression.right, dataset, group_rows, params)
        return _ARITHMETIC[expression.op](left, right)
    if isinstance(expression, Negate):
        return sql_neg(
            evaluate_aggregate_expression(expression.operand, dataset, group_rows, params)
        )
    if isinstance(expression, (Literal, HostVariable, ColumnRef)):
        if not group_rows:
            return NULL
        return evaluate_scalar(expression, dataset.scope(group_rows[0]), params)
    raise ExecutionError(
        f"unsupported node in aggregation expression: {type(expression).__name__}"
    )


def _output_columns(
    grouping_columns: Sequence[str],
    dataset: DataSet,
    specs: Sequence[AggregateSpec],
) -> Tuple[str, ...]:
    group_indexes = dataset.indexes_of(grouping_columns)
    named = tuple(dataset.columns[i] for i in group_indexes)
    return named + tuple(spec.name for spec in specs)


def hash_group(
    dataset: DataSet,
    grouping_columns: Sequence[str],
    specs: Sequence[AggregateSpec],
    params: Optional[Mapping[str, SqlValue]] = None,
    governor: Optional[ResourceGovernor] = None,
) -> Tuple[DataSet, int]:
    """Hash-based GROUP BY + F(AA).  Returns (result, work units).

    Work is one unit per input row (hashing) plus one per produced group.
    With no grouping columns, the whole input is one group and exactly one
    output row is produced (SQL scalar-aggregate semantics).

    When a governor signals pressure on the grouping state, the input is
    hash-partitioned to disk and each partition is aggregated separately;
    first-appearance indexes restore the exact in-memory group order.
    """
    # GROUP BY semantics, including GROUP BY () with empty grouping columns:
    # an empty input yields zero groups, hence zero output rows.  This is
    # what the paper's G[GA]/F[AA] algebra requires for the degenerate cases
    # of the Main Theorem (Section 5, Case 1).
    group_indexes = dataset.indexes_of(grouping_columns)
    extract = _values_extractor(group_indexes)
    if governor is not None:
        state_bytes = estimate_table_bytes(
            dataset.cardinality, len(dataset.columns)
        )
        if governor.should_spill(state_bytes, "group by"):
            return _spilled_hash_group(
                dataset, grouping_columns, specs, params,
                governor, group_indexes, extract, state_bytes,
            )
    groups: Dict[Tuple, List[Tuple[SqlValue, ...]]] = {}
    for row in dataset.rows:
        if governor is not None:
            governor.tick("group by")
        key = group_key(extract(row))
        groups.setdefault(key, []).append(row)

    out_rows: List[Tuple[SqlValue, ...]] = []
    for rows in groups.values():
        representative = rows[0]
        group_values = tuple(representative[i] for i in group_indexes)
        agg_values = tuple(
            evaluate_aggregate_expression(spec.expression, dataset, rows, params)
            for spec in specs
        )
        out_rows.append(group_values + agg_values)

    result = DataSet(_output_columns(grouping_columns, dataset, specs), out_rows)
    work = dataset.cardinality + len(out_rows)
    return result, work


def _spilled_hash_group(
    dataset: DataSet,
    grouping_columns: Sequence[str],
    specs: Sequence[AggregateSpec],
    params: Optional[Mapping[str, SqlValue]],
    governor: ResourceGovernor,
    group_indexes: Sequence[int],
    extract,
    state_bytes: int,
) -> Tuple[DataSet, int]:
    """Partitioned GROUP BY: spill input by group-key hash, aggregate each
    partition in memory.

    All rows of a group land in one partition (same key, same hash), so
    per-group aggregation is exact.  Each group remembers the input index
    of its first row; sorting the output on that index reproduces the
    in-memory dict's insertion (first-appearance) order exactly.
    """
    partitions = governor.spill_partitions(state_bytes)
    spill = governor.spill_manager()
    chunk = max(16, governor.rows_per_run(len(dataset.columns)) // partitions)
    parts = PartitionedSpill(spill, partitions, chunk, "group")
    for index, row in enumerate(dataset.rows):
        governor.tick("group by partition")
        parts.add(hash(group_key(extract(row))) % partitions, (index, row))
    governor.note_spill(parts.rows_added, "group by")

    keyed_out: List[Tuple[int, Tuple[SqlValue, ...]]] = []
    for partition in range(partitions):
        groups: Dict[Tuple, Tuple[int, List[Tuple[SqlValue, ...]]]] = {}
        for index, row in parts.read(partition):
            governor.tick("group by")
            key = group_key(extract(row))
            entry = groups.get(key)
            if entry is None:
                groups[key] = (index, [row])
            else:
                entry[1].append(row)
        for first_index, rows in groups.values():
            representative = rows[0]
            group_values = tuple(representative[i] for i in group_indexes)
            agg_values = tuple(
                evaluate_aggregate_expression(spec.expression, dataset, rows, params)
                for spec in specs
            )
            keyed_out.append((first_index, group_values + agg_values))
    keyed_out.sort(key=lambda item: item[0])
    out_rows = [row for __, row in keyed_out]
    result = DataSet(_output_columns(grouping_columns, dataset, specs), out_rows)
    work = dataset.cardinality + len(out_rows)
    return result, work


def sort_group(
    dataset: DataSet,
    grouping_columns: Sequence[str],
    specs: Sequence[AggregateSpec],
    params: Optional[Mapping[str, SqlValue]] = None,
    presorted: bool = False,
    governor: Optional[ResourceGovernor] = None,
) -> Tuple[DataSet, int]:
    """Sort-based GROUP BY with pipelined aggregation.

    Sorting on the grouping columns brings ``=ⁿ``-equivalent rows together
    (our sort key collates all NULLs equal and first), then a single scan
    emits one row per group.  Work counts sort comparisons (n log2 n
    approximation) plus the scan.

    With ``presorted=True`` the input is already grouped on the grouping
    columns (an *interesting order*): the sort is skipped entirely and the
    aggregation pipelines over the scan — the Klug [9] observation the
    paper's §2 recounts.  Work is then just the scan.
    """
    import math

    group_indexes = dataset.indexes_of(grouping_columns)
    extract = _values_extractor(group_indexes)
    if presorted:
        ordered = dataset.rows
    else:
        sort_by = lambda row: sort_key(extract(row))
        if governor is not None and governor.should_spill(
            estimate_table_bytes(dataset.cardinality, len(dataset.columns)),
            "sort group",
        ):
            # External runs + stable merge: the identical permutation an
            # in-memory stable sort produces, so identical group order.
            ordered = external_sort_rows(
                dataset.rows, sort_by, len(dataset.columns), governor,
                "group-sort",
            )
        else:
            ordered = sorted(dataset.rows, key=sort_by)

    out_rows: List[Tuple[SqlValue, ...]] = []
    current_key: Optional[Tuple] = None
    current_rows: List[Tuple[SqlValue, ...]] = []

    def flush() -> None:
        if current_key is None:
            return
        representative = current_rows[0]
        group_values = tuple(representative[i] for i in group_indexes)
        agg_values = tuple(
            evaluate_aggregate_expression(spec.expression, dataset, current_rows, params)
            for spec in specs
        )
        out_rows.append(group_values + agg_values)

    for row in ordered:
        if governor is not None:
            governor.tick("sort group")
        key = group_key(extract(row))
        if key != current_key:
            flush()
            current_key = key
            current_rows = []
        current_rows.append(row)
    flush()

    # The output is ordered by the grouping columns — the §7 remark about
    # the grouped result "normally sorted based on the grouping columns".
    output_columns = _output_columns(grouping_columns, dataset, specs)
    result = DataSet(
        output_columns, out_rows,
        ordering=output_columns[: len(grouping_columns)],
    )
    n = dataset.cardinality
    if presorted:
        work = n + len(out_rows)
    else:
        work = (n * max(1, math.ceil(math.log2(n))) if n > 1 else n) + n
    return result, work


def distinct(
    dataset: DataSet,
    governor: Optional[ResourceGovernor] = None,
) -> Tuple[DataSet, int]:
    """π^D duplicate elimination under ``=ⁿ`` semantics (hash-based)."""
    seen: Dict[Tuple, Tuple[SqlValue, ...]] = {}
    for row in dataset.rows:
        if governor is not None:
            governor.tick("distinct")
        seen.setdefault(group_key(row), row)
    result = DataSet(dataset.columns, seen.values())
    return result, dataset.cardinality
