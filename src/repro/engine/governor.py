"""The resource governor: per-query budgets, cancellation, spill signals.

Every execution — row or vector backend — runs under a
:class:`ResourceGovernor` built from the :class:`ExecutorConfig` budget
(``memory_limit_bytes``, ``timeout_seconds``, ``max_rows``, an optional
:class:`CancellationToken`).  Operators cooperate with it three ways:

* :meth:`~ResourceGovernor.check` / :meth:`~ResourceGovernor.tick` at
  batch and row-loop boundaries — these raise the typed
  :class:`~repro.errors.QueryTimeout` / :class:`~repro.errors.QueryCancelled`
  the resilience contract promises (never a hang, never a bare error);
* :meth:`~ResourceGovernor.charge_rows` on every materialized operator
  output — the ``max_rows`` backstop against runaway joins;
* :meth:`~ResourceGovernor.should_spill` before building blocking state
  (hash-join build sides, grouping state, sort buffers) — ``True`` tells
  the operator to partition to disk; if spilling is disabled
  (``spill=False``) the governor raises
  :class:`~repro.errors.MemoryLimitExceeded` instead.

Memory is metered by a *deterministic estimate* (:func:`estimate_table_bytes`),
not by live allocator probes: both backends compute the same estimate from
(cardinality, arity) alone, so they make identical spill decisions and stay
result- and stats-identical — the differential harness depends on that.

The governor is per-execution state (created in ``Executor.run``); the
:class:`CancellationToken` is the long-lived handle a controlling thread or
signal handler flips.
"""

from __future__ import annotations

import heapq
import os
import pickle
import shutil
import tempfile
import threading
import time
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    MemoryLimitExceeded,
    QueryCancelled,
    QueryTimeout,
    RowLimitExceeded,
)

#: Deterministic per-value and per-row cost of a materialized Python row.
#: Chosen to approximate CPython's real footprint (pointer-sized slots plus
#: boxed values) while staying platform-independent, so spill decisions are
#: reproducible everywhere.
VALUE_BYTES = 56
ROW_OVERHEAD_BYTES = 64

#: How many row-loop iterations pass between two real budget checks in
#: :meth:`ResourceGovernor.tick` — cancellation/timeout latency is bounded
#: by this many rows of work.
TICK_INTERVAL = 256


def estimate_row_bytes(arity: int) -> int:
    """Deterministic estimate of one materialized row of ``arity`` values."""
    return ROW_OVERHEAD_BYTES + VALUE_BYTES * max(arity, 1)


def estimate_table_bytes(cardinality: int, arity: int) -> int:
    """Deterministic estimate of a materialized (rows × columns) relation."""
    return cardinality * estimate_row_bytes(arity)


class CancellationToken:
    """A cooperative cancellation handle.

    ``cancel()`` may be called from any thread (or a signal handler); the
    executing query observes it at its next batch/row-loop boundary and
    raises :class:`~repro.errors.QueryCancelled`.  Tokens are one-shot but
    may be shared across several queries of a session.
    """

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = False
        self.reason: str = ""

    def cancel(self, reason: str = "") -> None:
        self.reason = reason or self.reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CancellationToken(cancelled={self._cancelled})"


class SpillManager:
    """Owns a query's spill directory and its temporary run files.

    Created lazily by the governor on the first spill; removed (with all
    spill files) when the governor is closed at the end of the execution,
    successful or not.
    """

    def __init__(self, base_dir: Optional[str] = None) -> None:
        self.directory = tempfile.mkdtemp(prefix="repro-spill-", dir=base_dir)
        self._counter = 0
        self.files_written = 0
        self.rows_spilled = 0

    def new_path(self, hint: str = "run") -> str:
        self._counter += 1
        return os.path.join(self.directory, f"{hint}-{self._counter:05d}.bin")

    def write_rows(self, rows: Sequence[tuple], hint: str = "run") -> str:
        """Persist a chunk of rows; returns the file path."""
        path = self.new_path(hint)
        with open(path, "wb") as handle:
            pickle.dump(list(rows), handle, protocol=pickle.HIGHEST_PROTOCOL)
        self.files_written += 1
        self.rows_spilled += len(rows)
        return path

    @staticmethod
    def read_rows(path: str) -> List[tuple]:
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def close(self) -> None:
        shutil.rmtree(self.directory, ignore_errors=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpillManager({self.directory}, {self.files_written} files)"


class PartitionedSpill:
    """Hash-partitioned spill writer: buffers rows per partition, flushing
    full buffers to disk as sequential chunks.

    Reading a partition back replays its chunks in write order, so the
    per-partition row order is exactly the input order — the property the
    grace hash join and spilled grouping rely on to reproduce in-memory
    output order bit-for-bit.
    """

    def __init__(
        self,
        spill: SpillManager,
        partitions: int,
        chunk_rows: int,
        hint: str = "part",
    ) -> None:
        self.spill = spill
        self.partitions = partitions
        self.chunk_rows = max(16, chunk_rows)
        self.hint = hint
        self._buffers: List[List[tuple]] = [[] for __ in range(partitions)]
        self._paths: List[List[str]] = [[] for __ in range(partitions)]
        self.rows_added = 0

    def add(self, partition: int, row: tuple) -> None:
        self.rows_added += 1
        buffer = self._buffers[partition]
        buffer.append(row)
        if len(buffer) >= self.chunk_rows:
            self._paths[partition].append(
                self.spill.write_rows(buffer, self.hint)
            )
            buffer.clear()

    def read(self, partition: int) -> Iterator[tuple]:
        """All rows of one partition, in the order they were added.

        The final partial buffer is served from memory — it never grew
        past ``chunk_rows``, so it is within the budget by construction.
        """
        for path in self._paths[partition]:
            for row in self.spill.read_rows(path):
                yield row
        for row in self._buffers[partition]:
            yield row


class ResourceGovernor:
    """Meters one execution against its declared budget.

    All limits are optional; with none set every method is a cheap no-op
    check.  ``clock`` is injectable for deterministic timeout tests.
    """

    def __init__(
        self,
        memory_limit_bytes: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
        max_rows: Optional[int] = None,
        spill_enabled: bool = True,
        spill_dir: Optional[str] = None,
        token: Optional[CancellationToken] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.memory_limit_bytes = memory_limit_bytes
        self.timeout_seconds = timeout_seconds
        self.max_rows = max_rows
        self.spill_enabled = spill_enabled
        self.spill_dir = spill_dir
        self.token = token
        self.clock = clock
        self.started = clock()
        self.deadline = (
            self.started + timeout_seconds if timeout_seconds is not None else None
        )
        self.rows_emitted = 0
        self.spill_count = 0
        self.spilled_rows = 0
        self.transfer_rows = 0
        self.transfer_bytes = 0
        self._ticks = 0
        self._spill_manager: Optional[SpillManager] = None

    @classmethod
    def from_config(cls, config) -> "ResourceGovernor":
        """Build a governor from an ``ExecutorConfig``."""
        return cls(
            memory_limit_bytes=config.memory_limit_bytes,
            timeout_seconds=config.timeout_seconds,
            max_rows=config.max_rows,
            spill_enabled=config.spill,
            spill_dir=config.spill_dir,
            token=config.cancellation,
        )

    # -- cancellation and time ----------------------------------------------

    def check(self, label: str = "") -> None:
        """A full budget check: cancellation first, then the deadline.

        Called at operator boundaries (and by every :meth:`tick`-th loop
        iteration); raising here is what makes cancellation and timeouts
        *cooperative* rather than preemptive.
        """
        token = self.token
        if token is not None and token.cancelled:
            reason = f" ({token.reason})" if token.reason else ""
            raise QueryCancelled(f"query cancelled{reason}")
        if self.deadline is not None and self.clock() > self.deadline:
            raise QueryTimeout(
                f"query exceeded timeout of {self.timeout_seconds}s"
            )

    def tick(self, label: str = "") -> None:
        """A row-loop boundary: every :data:`TICK_INTERVAL` calls does a
        real :meth:`check`; the rest cost one integer increment."""
        self._ticks += 1
        if self._ticks % TICK_INTERVAL == 0:
            self.check(label)

    def remaining_seconds(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.clock())

    # -- rows ----------------------------------------------------------------

    def charge_rows(self, produced: int, label: str = "") -> None:
        """Account an operator's materialized output against ``max_rows``."""
        self.rows_emitted += produced
        if self.max_rows is not None and produced > self.max_rows:
            where = f" at {label}" if label else ""
            raise RowLimitExceeded(
                f"operator produced {produced} rows, over the max_rows "
                f"budget of {self.max_rows}{where}"
            )

    # -- network transfer ----------------------------------------------------

    def charge_transfer(self, rows: int, size_bytes: int, label: str = "") -> None:
        """Meter rows/bytes crossing an Exchange wire.

        Pure accounting (no enforcement): shipped rows were already charged
        by the operators that produced them, so the wire adds observability
        — the measured quantity the §7 communication argument is about —
        without double-billing ``max_rows``.
        """
        self.transfer_rows += rows
        self.transfer_bytes += size_bytes

    # -- memory and spilling -------------------------------------------------

    def should_spill(self, estimated_bytes: int, label: str = "") -> bool:
        """Must a blocking operator partition ``estimated_bytes`` of state
        to disk?  Raises :class:`MemoryLimitExceeded` when over budget with
        spilling disabled — the typed, attributable failure mode."""
        if self.memory_limit_bytes is None:
            return False
        if estimated_bytes <= self.memory_limit_bytes:
            return False
        if not self.spill_enabled:
            where = f" at {label}" if label else ""
            raise MemoryLimitExceeded(
                f"operator state of ~{estimated_bytes} bytes exceeds the "
                f"memory budget of {self.memory_limit_bytes} bytes and "
                f"spilling is disabled{where}"
            )
        return True

    def spill_partitions(self, estimated_bytes: int) -> int:
        """How many disk partitions bring ``estimated_bytes`` under budget.

        One extra partition of headroom so hash skew rarely re-overflows;
        deterministic, so both backends partition identically.
        """
        limit = self.memory_limit_bytes or estimated_bytes
        return max(2, -(-estimated_bytes // max(limit, 1)) + 1)

    def rows_per_run(self, arity: int) -> int:
        """External-sort run length that fits the memory budget."""
        if self.memory_limit_bytes is None:
            return 1 << 30
        return max(16, self.memory_limit_bytes // estimate_row_bytes(arity))

    def note_spill(self, rows: int, label: str = "") -> None:
        """Record that an operator spilled ``rows`` rows to disk."""
        self.spill_count += 1
        self.spilled_rows += rows

    def spill_manager(self) -> SpillManager:
        if self._spill_manager is None:
            self._spill_manager = SpillManager(self.spill_dir)
        return self._spill_manager

    def close(self) -> None:
        """Release spill files; called when the execution finishes."""
        if self._spill_manager is not None:
            self._spill_manager.close()
            self._spill_manager = None


#: A governor with no limits: the default for direct operator-function
#: calls (tests, library use) that never constructed an Executor.
def unlimited() -> ResourceGovernor:
    return ResourceGovernor()


class BudgetPool:
    """A thread-safe server-level budget pool: query slots plus bytes.

    Where :class:`ResourceGovernor` meters *one* execution against its
    declared budget, a :class:`BudgetPool` is the shared reservoir those
    budgets are carved from: the server's admission controller reserves a
    (slot, bytes) pair per query before it starts and releases it when
    the query finishes, so the sum of concurrently-granted budgets never
    exceeds the pool.  Reservation is non-blocking by design — admission
    *rejects* rather than queues (the typed
    :class:`~repro.errors.AdmissionRejected` carries a retry hint and the
    client backs off), so no reader or writer ever blocks inside the
    server on another tenant's work.

    ``None`` limits disable that dimension.  ``waiting`` counts rejected
    reservations since the last successful release — the admission
    controller's deterministic load signal for ``retry_after`` hints.
    """

    def __init__(
        self,
        max_slots: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_slots is not None and max_slots < 1:
            raise ValueError("max_slots must be at least 1")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_slots = max_slots
        self.max_bytes = max_bytes
        self.used_slots = 0
        self.used_bytes = 0
        self.waiting = 0
        self.rejections = 0
        self.peak_slots = 0
        self._lock = threading.Lock()

    def try_reserve(self, nbytes: int = 0) -> Optional[str]:
        """Reserve one slot and ``nbytes``; returns ``None`` on success or
        the exhausted resource name (``"slots"`` / ``"memory"``)."""
        with self._lock:
            if self.max_slots is not None and self.used_slots >= self.max_slots:
                self.waiting += 1
                self.rejections += 1
                return "slots"
            if (
                self.max_bytes is not None
                and self.used_bytes + nbytes > self.max_bytes
            ):
                self.waiting += 1
                self.rejections += 1
                return "memory"
            self.used_slots += 1
            self.used_bytes += nbytes
            if self.used_slots > self.peak_slots:
                self.peak_slots = self.used_slots
            return None

    def release(self, nbytes: int = 0) -> None:
        with self._lock:
            self.used_slots = max(0, self.used_slots - 1)
            self.used_bytes = max(0, self.used_bytes - nbytes)
            self.waiting = 0

    def load(self) -> int:
        """Rejected reservations since the last release (retry pressure)."""
        with self._lock:
            return self.waiting

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BudgetPool(slots={self.used_slots}/{self.max_slots}, "
            f"bytes={self.used_bytes}/{self.max_bytes})"
        )


# -- external merge ----------------------------------------------------------


class _ReverseKey:
    """Inverts comparison, turning a descending sort key into an ascending
    one — so one composite-key sort reproduces the engine's multi-pass
    stable mixed-direction sort exactly."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other: "_ReverseKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReverseKey) and other.key == self.key


def merge_sorted_runs(
    run_paths: Sequence[str],
    key: Callable[[tuple], object],
    spill: SpillManager,
) -> Iterator[tuple]:
    """K-way merge of sorted spill runs, stable across run order.

    ``heapq.merge`` breaks key ties by iterator position, and runs are
    supplied in input order — so the merged sequence is exactly the
    permutation a single stable in-memory sort would produce.
    """
    iterators: List[Iterator[tuple]] = [
        iter(spill.read_rows(path)) for path in run_paths
    ]
    return heapq.merge(*iterators, key=key)


def external_sort_rows(
    rows: Iterable[tuple],
    key: Callable[[tuple], object],
    arity: int,
    governor: ResourceGovernor,
    label: str = "sort",
) -> List[tuple]:
    """Sort ``rows`` by ``key`` through bounded-memory disk runs.

    Splits the input into governor-sized runs, sorts each with the same
    stable sort the in-memory path uses, spills them, and k-way merges —
    producing the *identical* row order as ``sorted(rows, key=key)``.
    The merged output is materialized (the engine's operators exchange
    materialized relations); what the budget bounds is the working set of
    the sort itself.
    """
    spill = governor.spill_manager()
    run_length = governor.rows_per_run(arity)
    run_paths: List[str] = []
    run: List[tuple] = []
    total = 0
    for row in rows:
        governor.tick(label)
        run.append(row)
        if len(run) >= run_length:
            run.sort(key=key)
            run_paths.append(spill.write_rows(run, label))
            total += len(run)
            run = []
    if run:
        run.sort(key=key)
        if not run_paths:  # everything fit in one run after all
            return run
        run_paths.append(spill.write_rows(run, label))
        total += len(run)
    governor.note_spill(total, label)
    merged = list(merge_sorted_runs(run_paths, key, spill))
    return merged
