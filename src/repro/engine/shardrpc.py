"""Fault-tolerant shard RPC: worker pool, health ledger, retry + failover.

:mod:`repro.server.transport` defines *how* bytes move (framing,
restricted unpickling, the worker loop); this module decides *when and
where* they move.  The :class:`ShardPool` owns one OS worker process per
shard slot — spawn (``repro shard-worker`` as a subprocess, parsing its
``READY`` line for the ephemeral port), handshake (``hello`` with a
wire-version check), heartbeat (``ping`` RTTs feed the planner's
per-site latency term), drain (``shutdown``) and kill.

Every Exchange delivery goes through :meth:`ShardPool.execute`, which
layers the fault-tolerance contract over the raw wire:

* **per-call deadline** — each RPC gets ``rpc_timeout_seconds`` of
  socket time; a silent worker raises
  :class:`~repro.errors.ShardUnavailable` instead of hanging the query;
* **jittered-exponential retries** — via the same
  :func:`repro.server.retry.call_with_backoff` helper the admission
  client uses, with ``retry_on=(ShardUnavailable, WireFormatError)``
  and an ``on_retry`` hook metering every backoff into the RPC counters;
* **idempotent request IDs** — each delivery carries a UUID; the worker
  caches completed responses by ID, so a retransmitted request (retry
  after a lost reply, or an injected duplicate) is answered from the
  cache without re-running the shard plan — retried partials can never
  double-count;
* **health ledger** — consecutive failures move a shard healthy →
  suspect → dead (:data:`SUSPECT_AFTER` / :data:`DEAD_AFTER`); any
  success snaps it back to healthy; a respawn marks it recovered;
* **failover** — when a shard's own worker is dead (or dies mid-call),
  the delivery is re-dispatched to a live peer: requests are
  self-contained (they ship the frozen partition with the plan), so any
  worker computes the identical partial.  Only when *no* worker is live
  does :meth:`execute` raise :class:`~repro.engine.faults.KernelFault`,
  handing the query to the existing degrade ladder in
  :mod:`repro.engine.exchange` — single-site fallback, answer unchanged.

The deterministic network fault injector hooks in one layer down:
:meth:`WorkerHandle.call` asks :func:`repro.engine.faults.network_actions`
for this message's planted faults and applies them coordinator-side
(drop the send and wait out the timeout; sleep on delay; double-send on
duplicate and drain both replies; flip a payload byte on garble;
short-circuit to :class:`~repro.errors.ShardUnavailable` on partition).
Applying faults at the call site keeps the schedule deterministic — the
spec's occurrence counter observes messages in coordinator order — while
still driving every real code path above it: timeouts, CRC rejections,
the duplicate cache, the health ledger, failover.
"""

from __future__ import annotations

import atexit
import socket
import subprocess
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine import faults
from repro.errors import ShardUnavailable, WireFormatError
from repro.server.retry import call_with_backoff
from repro.server.transport import (
    READY_PREFIX,
    WIRE_VERSION,
    pack_frame,
    recv_frame,
    send_frame,
)

#: Consecutive failures that move a shard healthy → suspect.
SUSPECT_AFTER = 1
#: Consecutive failures that move a shard suspect → dead.
DEAD_AFTER = 3

HEALTH_STATES = ("healthy", "suspect", "dead")


@dataclass
class RpcCounters:
    """Aggregate transport counters for one pool (coordinator side)."""

    calls: int = 0
    retries: int = 0
    timeouts: int = 0
    failovers: int = 0
    duplicates: int = 0
    wire_bytes: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "calls": self.calls,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failovers": self.failovers,
            "duplicates": self.duplicates,
            "wire_bytes": self.wire_bytes,
        }


@dataclass
class WorkerHandle:
    """One shard worker process: socket endpoint + health record."""

    label: str
    port: int = 0
    process: Optional[subprocess.Popen] = None
    health: str = "healthy"
    consecutive_failures: int = 0
    heartbeat_rtt: float = 0.0
    respawns: int = 0
    transitions: List[str] = field(default_factory=list)
    _sock: Optional[socket.socket] = None
    _reader: Any = None
    _writer: Any = None
    #: Serializes request/response pairs on this worker's connection —
    #: concurrent sessions share the pool, and interleaved frames on one
    #: socket would desynchronize both callers.
    _call_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    # -- health ledger ----------------------------------------------------

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.health != "healthy":
            self._transition("healthy")

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= DEAD_AFTER:
            if self.health != "dead":
                self._transition("dead")
        elif self.consecutive_failures >= SUSPECT_AFTER:
            if self.health == "healthy":
                self._transition("suspect")

    def mark_recovered(self) -> None:
        self.consecutive_failures = 0
        self.respawns += 1
        self._transition("recovered")
        self.health = "healthy"

    def _transition(self, state: str) -> None:
        self.transitions.append(state)
        if state in HEALTH_STATES:
            self.health = state

    @property
    def alive(self) -> bool:
        return (
            self.health != "dead"
            and self.process is not None
            and self.process.poll() is None
        )

    # -- connection -------------------------------------------------------

    def connect(self, timeout: float) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(("127.0.0.1", self.port), timeout=timeout)
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._writer = sock.makefile("wb")

    def disconnect(self) -> None:
        for stream in (self._reader, self._writer, self._sock):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass
        self._sock = self._reader = self._writer = None

    def call(
        self,
        payload: Dict[str, Any],
        timeout: float,
        counters: Optional[RpcCounters] = None,
    ) -> Dict[str, Any]:
        """One framed request/response on this worker's connection.

        Applies the armed network faults for this message (see module
        doc), meters wire bytes, and converts every socket-level failure
        into :class:`~repro.errors.ShardUnavailable` after dropping the
        (possibly desynchronized) connection.
        """
        with self._call_lock:
            return self._call_locked(payload, timeout, counters)

    def _call_locked(
        self,
        payload: Dict[str, Any],
        timeout: float,
        counters: Optional[RpcCounters] = None,
    ) -> Dict[str, Any]:
        op = str(payload.get("op"))
        actions = faults.network_actions(self.label, op)
        kinds = [spec.kind for spec in actions]
        if "partition" in kinds:
            self.disconnect()
            raise ShardUnavailable(
                f"{self.label}: network partition (injected)"
            )
        for spec in actions:
            if spec.kind == "delay":
                time.sleep(spec.delay_seconds)
        sends = 2 if "duplicate" in kinds else 1
        try:
            self.connect(timeout)
            assert self._sock is not None
            self._sock.settimeout(timeout)
            if "drop" in kinds:
                # Lose the request on the floor: nothing is sent, so the
                # recv below times out and the caller retries.
                pass
            elif "garble" in kinds:
                frame = bytearray(pack_frame(payload))
                frame[-1] ^= 0xFF  # corrupt the last payload byte in transit
                self._writer.write(bytes(frame))
                self._writer.flush()
                if counters is not None:
                    counters.wire_bytes += len(frame)
            else:
                for __ in range(sends):
                    sent = send_frame(self._writer, payload)
                    if counters is not None:
                        counters.wire_bytes += sent
            # Read as many replies as requests hit the wire, keeping the
            # connection in sync; the last reply wins (for a duplicate,
            # both are byte-identical — the second comes from the
            # worker's request-ID cache).
            response: Optional[Dict[str, Any]] = None
            for __ in range(sends):
                response, nbytes = recv_frame(self._reader)
                if counters is not None:
                    counters.wire_bytes += nbytes
            assert response is not None
        except (socket.timeout, TimeoutError) as error:
            self.disconnect()
            if counters is not None:
                counters.timeouts += 1
            raise ShardUnavailable(
                f"{self.label}: no reply within {timeout:.3f}s"
            ) from error
        except (OSError, EOFError) as error:
            self.disconnect()
            raise ShardUnavailable(f"{self.label}: {error}") from error
        if response.get("op") == "error":
            if response.get("error_type") == "WireFormatError":
                raise WireFormatError(str(response.get("message")))
            from repro.engine.faults import KernelFault

            raise KernelFault(
                f"{self.label}: {response.get('error_type')}: "
                f"{response.get('message')}"
            )
        return response


class ShardPool:
    """Owns the shard worker processes and the fault-tolerant RPC layer."""

    def __init__(
        self,
        size: int,
        *,
        timeout_seconds: float = 5.0,
        attempts: int = 3,
        python: Optional[str] = None,
        spawn_timeout: float = 20.0,
    ) -> None:
        self.size = size
        self.timeout_seconds = timeout_seconds
        self.attempts = attempts
        self.counters = RpcCounters()
        self._python = python or sys.executable
        self._spawn_timeout = spawn_timeout
        self._lock = threading.Lock()
        self.workers: List[WorkerHandle] = [
            WorkerHandle(label=f"shard-{i}") for i in range(size)
        ]

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        for worker in self.workers:
            if not worker.alive:
                self._spawn(worker)

    def ensure(self) -> None:
        """Respawn any dead workers (between queries): dead → recovered."""
        for worker in self.workers:
            if not worker.alive:
                self._respawn(worker)

    def _spawn(self, worker: WorkerHandle) -> None:
        process = subprocess.Popen(
            [self._python, "-m", "repro", "shard-worker", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        assert process.stdout is not None
        deadline = time.monotonic() + self._spawn_timeout
        line = ""
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if line.startswith(READY_PREFIX) or not line:
                break
        if not line.startswith(READY_PREFIX):
            process.kill()
            raise ShardUnavailable(
                f"{worker.label}: worker did not announce READY"
            )
        fields = dict(
            part.split("=", 1) for part in line.split() if "=" in part
        )
        worker.port = int(fields["port"])
        worker.process = process
        worker.disconnect()
        # Handshake: pin the wire version before the first delivery.
        hello = worker.call(
            {"op": "hello", "version": WIRE_VERSION}, self.timeout_seconds
        )
        if hello.get("version") != WIRE_VERSION:
            raise WireFormatError(
                f"{worker.label}: handshake returned wire "
                f"v{hello.get('version')}, expected v{WIRE_VERSION}"
            )

    def _respawn(self, worker: WorkerHandle) -> None:
        if worker.process is not None and worker.process.poll() is None:
            worker.process.kill()
            worker.process.wait()
        worker.disconnect()
        self._spawn(worker)
        worker.mark_recovered()

    def heartbeat(self) -> Dict[str, float]:
        """Ping every live worker; RTTs feed the planner's latency term."""
        rtts: Dict[str, float] = {}
        for worker in self.workers:
            if not worker.alive:
                continue
            started = time.monotonic()
            try:
                worker.call({"op": "ping"}, self.timeout_seconds, self.counters)
            except (ShardUnavailable, WireFormatError):
                worker.record_failure()
                continue
            worker.heartbeat_rtt = time.monotonic() - started
            worker.record_success()
            rtts[worker.label] = worker.heartbeat_rtt
        return rtts

    def measured_latency(self) -> float:
        """Mean heartbeat RTT over live workers (seconds; 0 when unknown)."""
        rtts = [w.heartbeat_rtt for w in self.workers if w.heartbeat_rtt > 0]
        return sum(rtts) / len(rtts) if rtts else 0.0

    def drain(self) -> None:
        """Politely shut every worker down, then reap.

        A worker the ledger already wrote off (dead health, or the RPC
        shutdown itself failing) gets no grace period — its process is
        killed outright rather than waited on, so draining a degraded
        pool never stalls."""
        for worker in self.workers:
            polite = worker.alive
            if polite:
                try:
                    worker.call({"op": "shutdown"}, self.timeout_seconds)
                except (ShardUnavailable, WireFormatError):
                    polite = False
            worker.disconnect()
            if worker.process is not None:
                if not polite:
                    worker.process.kill()
                try:
                    worker.process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    worker.process.kill()
                    worker.process.wait()

    def kill(self, index: int) -> None:
        """SIGKILL one worker (chaos harness); the ledger learns via RPC."""
        worker = self.workers[index]
        if worker.process is not None and worker.process.poll() is None:
            worker.process.kill()
            worker.process.wait()
        worker.disconnect()

    # -- the RPC layer ----------------------------------------------------

    def execute(
        self,
        index: int,
        request: Dict[str, Any],
        *,
        session: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Deliver one shard execution, retrying and failing over.

        ``request`` must be self-contained (table + plan + config) and is
        stamped with a fresh idempotency UUID here — retries and injected
        duplicates reuse the same ID, so the worker's response cache
        guarantees at-most-once execution per delivery.
        """
        request = dict(request)
        request.setdefault("op", "execute")
        request.setdefault("request_id", uuid.uuid4().hex)
        # Try the assigned worker first, then every live peer (requests
        # are self-contained, so any worker computes the same partial).
        order = [self.workers[index]] + [
            w for i, w in enumerate(self.workers) if i != index
        ]
        last_error: Optional[Exception] = None
        for attempt_index, worker in enumerate(order):
            if not worker.alive:
                continue
            if attempt_index > 0:
                self.counters.failovers += 1
            try:
                response = self._call_with_retries(worker, request)
            except (ShardUnavailable, WireFormatError) as error:
                last_error = error
                continue
            worker.record_success()
            if response.get("op") == "pong":
                return response
            return response
        from repro.engine.faults import KernelFault

        raise KernelFault(
            f"shard-{index}: no live worker could serve the delivery "
            f"({last_error})"
        )

    def _call_with_retries(
        self, worker: WorkerHandle, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        def meter(_error: BaseException, _delay: float) -> None:
            self.counters.retries += 1

        self.counters.calls += 1

        def attempt() -> Dict[str, Any]:
            try:
                return worker.call(
                    request, self.timeout_seconds, self.counters
                )
            except (ShardUnavailable, WireFormatError):
                worker.record_failure()
                raise

        try:
            response = call_with_backoff(
                attempt,
                attempts=self.attempts,
                base_delay=0.005,
                max_delay=0.1,
                deadline_seconds=self.timeout_seconds * self.attempts,
                seed=0,
                retry_on=(ShardUnavailable, WireFormatError),
                on_retry=meter,
            )
        except (ShardUnavailable, WireFormatError):
            raise
        worker.record_success()
        return response

    # -- introspection ----------------------------------------------------

    def health(self) -> List[Dict[str, Any]]:
        """Per-shard health for ``.shards`` and ``repro explain``."""
        report = []
        for worker in self.workers:
            state = worker.health
            if state != "dead" and not worker.alive and worker.process:
                state = "dead"  # process gone but no RPC has noticed yet
            report.append({
                "shard": worker.label,
                "health": state,
                "rtt": worker.heartbeat_rtt,
                "respawns": worker.respawns,
                "failures": worker.consecutive_failures,
                "transitions": tuple(worker.transitions),
            })
        return report


# -- the process-wide pool (one per coordinator) -----------------------------

_POOL: Optional[ShardPool] = None
_POOL_LOCK = threading.Lock()


def get_pool(
    size: int, *, timeout_seconds: float = 5.0, attempts: int = 3
) -> ShardPool:
    """The shared pool, grown to at least ``size`` live workers.

    One pool per coordinator process: spawning workers per query would
    hide exactly the lifecycle failures (flaps, stale connections) this
    layer exists to survive.  A dead worker is respawned here — between
    queries — which is what drives the dead → recovered transition.
    """
    global _POOL
    with _POOL_LOCK:
        if _POOL is None or _POOL.size < size:
            previous = _POOL
            if previous is not None:
                previous.drain()
            _POOL = ShardPool(
                size, timeout_seconds=timeout_seconds, attempts=attempts
            )
            _POOL.start()
        else:
            _POOL.timeout_seconds = timeout_seconds
            _POOL.attempts = attempts
            _POOL.ensure()
        return _POOL


def active_pool() -> Optional[ShardPool]:
    return _POOL


def shutdown_pool() -> None:
    """Drain and forget the shared pool (tests, CLI exit)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.drain()
            _POOL = None


# Whatever entry point spawned the pool (shell, bench, a test run that
# skipped its own teardown), the coordinator exiting must not strand
# worker processes.
atexit.register(shutdown_pool)
