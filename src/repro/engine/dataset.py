"""In-flight relations: named columns plus a multiset of value tuples.

A :class:`DataSet` is what physical operators produce and consume.  Columns
carry qualified names (``"E.DeptID"``); derived columns (aggregate outputs)
may be bare names.  Rows are plain tuples of SQL values.

Multiset comparison uses the ``=ⁿ`` duplicate semantics of the paper
(:func:`repro.sqltypes.values.group_key`), which is exactly what "E1 and E2
produce the same result" means in the theorems.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import BindingError
from repro.expressions.eval import RowScope
from repro.sqltypes.values import SqlValue, group_key


class DataSet:
    """A bag of rows under a fixed column layout.

    ``ordering`` is a *physical property*: the columns the rows are known
    to be sorted by (ascending, NULLS FIRST), empty when unknown.  The
    executor propagates it so downstream operators can exploit interesting
    orders — the §2 pipelining observation and §7's "the resulting table is
    normally sorted based on the grouping columns" remark.
    """

    __slots__ = ("columns", "rows", "_index", "ordering")

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterable[Tuple[SqlValue, ...]] = (),
        ordering: Sequence[str] = (),
    ) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        self.rows: List[Tuple[SqlValue, ...]] = [tuple(row) for row in rows]
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self.columns)}
        self.ordering: Tuple[str, ...] = tuple(ordering)

    # -- shape -------------------------------------------------------------

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[SqlValue, ...]]:
        return iter(self.rows)

    def index_of(self, column: str) -> int:
        """Resolve a column name; bare names match a unique qualified one."""
        if column in self._index:
            return self._index[column]
        matches = [
            i
            for name, i in self._index.items()
            if name.rsplit(".", 1)[-1] == column
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise BindingError(f"dataset has no column {column!r}: {self.columns}")
        raise BindingError(f"ambiguous column {column!r} in {self.columns}")

    def indexes_of(self, columns: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.index_of(column) for column in columns)

    # -- row access ----------------------------------------------------------

    def scope(self, row: Tuple[SqlValue, ...]) -> RowScope:
        return RowScope.from_pairs(self.columns, row)

    def values_at(
        self, row: Tuple[SqlValue, ...], indexes: Sequence[int]
    ) -> Tuple[SqlValue, ...]:
        return tuple(row[i] for i in indexes)

    def project(self, columns: Sequence[str]) -> "DataSet":
        """π^A: positional projection without duplicate elimination.

        The ordering property survives up to the longest prefix whose
        columns are all retained.
        """
        indexes = self.indexes_of(columns)
        kept = {self.columns[i] for i in indexes}
        surviving: list[str] = []
        for column in self.ordering:
            if column in kept:
                surviving.append(column)
            else:
                break
        return DataSet(
            [self.columns[i] for i in indexes],
            (tuple(row[i] for i in indexes) for row in self.rows),
            ordering=surviving,
        )

    def rename(self, mapping: Dict[str, str]) -> "DataSet":
        """Rename columns (old qualified name -> new name)."""
        renamed = tuple(mapping.get(name, name) for name in self.columns)
        result = DataSet(renamed)
        result.rows = self.rows  # safe: rows are immutable tuples
        return result

    # -- comparison ------------------------------------------------------------

    def multiset_key(self) -> Counter:
        """A canonical multiset fingerprint under ``=ⁿ`` duplicate semantics."""
        return Counter(group_key(row) for row in self.rows)

    def equals_multiset(self, other: "DataSet") -> bool:
        """Bag equality with NULL=NULL duplicate semantics.

        Column *names* are not compared (E1 and E2 may label the aggregate
        output differently); arity and content are.
        """
        if len(self.columns) != len(other.columns):
            return False
        return self.multiset_key() == other.multiset_key()

    def sorted_rows(self) -> List[Tuple[SqlValue, ...]]:
        """Rows in a deterministic order (NULLS FIRST) for display/tests."""
        from repro.sqltypes.values import sort_key

        return sorted(self.rows, key=sort_key)

    def to_pretty(self, limit: int = 20) -> str:
        """A small fixed-width table rendering for examples and debugging.

        Rows print in their current order (so ORDER BY results display as
        ordered); use :meth:`sorted_rows` for a canonical order.
        """
        header = list(self.columns)
        body = [
            ["NULL" if repr(v) == "NULL" else str(v) for v in row]
            for row in self.rows[:limit]
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(v.ljust(w) for v, w in zip(row, widths)) for row in body
        )
        if self.cardinality > limit:
            lines.append(f"... ({self.cardinality - limit} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"DataSet({self.columns}, {self.cardinality} rows)"
