"""Deterministic fault injection at operator boundaries.

The resilience contract ("every execution completes within budget or
degrades/fails in a typed, attributable way") is only testable if faults
can be *planted*: this module lets tests arm a process-wide
:class:`FaultInjector` that fires at exactly one operator dispatch of one
engine, chosen by (engine, operator label, occurrence).  Both executors
call :func:`injection_point` at every operator — the row engine before
running an operator's body, the vector engine inside the kernel guard
(after the children, so a fault exercises the degradation ladder rather
than re-running the subtree).  The multi-session server adds a third
engine string: ``"write"`` injection points fire on the commit path of
:class:`repro.server.snapshot.VersionedCatalog`, *after* the shadow
mutation and *before* the atomic publish — a fault there models a
mid-write crash, and the contract is that the version bump rolls back
(the cloned table is discarded, readers never observe it).

Three fault kinds, mirroring the failure modes production engines see:

* ``"kernel"`` — an operator implementation blows up
  (:class:`KernelFault`): the vector engine must degrade the operator to
  the row engine; the row engine must surface a typed error carrying the
  operator breadcrumb.
* ``"alloc"`` — an allocation fails (raises :class:`MemoryError`): the
  executor frame converts it to the typed
  :class:`~repro.errors.MemoryLimitExceeded`; never degradable.
* ``"timeout"`` — the operator overruns its wall-clock budget (raises
  :class:`~repro.errors.QueryTimeout` directly); never degradable.

Injection is deterministic (no randomness, no clocks): the Nth matching
visit fires, so a test matrix can hit every operator of every plan
exactly once.  Use the :func:`inject` context manager; nesting is not
supported (one active injector per process).

Concurrency-aware injection: a :class:`FaultSpec` may be *scoped* to one
session (``session="s3"``).  Executing threads declare their scope with
the :func:`scope` context manager (the server session does this around
every query and write); a scoped spec only matches visits from threads
inside a matching scope, so a chaos test can crash exactly one session's
queries while every concurrent session proceeds untouched.  The injector
itself is thread-safe — occurrence counting is serialized under a lock —
and specs can be armed while other threads run (:meth:`FaultInjector.arm`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import ExecutionError, QueryTimeout


class KernelFault(ExecutionError):
    """An injected operator-kernel failure (see :mod:`repro.engine.faults`)."""


_SCOPE = threading.local()


@contextmanager
def scope(session: Optional[str]) -> Iterator[None]:
    """Tag the current thread's injection-point visits with a session id.

    Scoped :class:`FaultSpec`\\ s (``session=...``) only fire inside a
    matching scope; unscoped specs fire regardless.  Scopes nest — the
    innermost wins — and always restore on exit.
    """
    previous = getattr(_SCOPE, "session", None)
    _SCOPE.session = session
    try:
        yield
    finally:
        _SCOPE.session = previous


def current_scope() -> Optional[str]:
    """The session id the current thread's visits are tagged with."""
    return getattr(_SCOPE, "session", None)


@dataclass
class FaultSpec:
    """One planted fault: fire ``kind`` at the ``occurrence``-th visit of a
    matching injection point.

    ``engine`` is ``"row"``, ``"vector"``, ``"write"`` (the server's
    commit path), or ``None`` (any); ``label`` is the exact operator
    label (``None`` matches any operator); ``session`` restricts the
    spec to visits from threads inside a matching :func:`scope` (``None``
    matches every thread).  Occurrences are counted per spec across all
    matching visits, whole-injector-serialized, so concurrent sessions
    cannot double-fire a single-occurrence spec.
    """

    kind: str  # "kernel" | "alloc" | "timeout"
    engine: Optional[str] = None
    label: Optional[str] = None
    occurrence: int = 0
    session: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("kernel", "alloc", "timeout"):
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def matches(
        self, engine: str, label: str, session: Optional[str] = None
    ) -> bool:
        if self.engine is not None and self.engine != engine:
            return False
        if self.label is not None and self.label != label:
            return False
        if self.session is not None and self.session != session:
            return False
        return True


#: Network fault kinds the shard transport understands.  ``drop`` loses
#: the request (the caller times out and retries), ``delay`` stalls it,
#: ``duplicate`` sends it twice (the worker's idempotent request-ID cache
#: must serve the second copy without re-executing), ``garble`` corrupts
#: the frame bytes in transit (the checksum must catch it and the caller
#: re-send clean bytes), and ``partition`` makes the shard unreachable for
#: ``count`` consecutive messages (driving the health ledger through
#: suspect → dead and the delivery over to a live peer).
NETWORK_FAULT_KINDS: Tuple[str, ...] = (
    "drop", "delay", "duplicate", "garble", "partition",
)


@dataclass
class NetFaultSpec:
    """One planted *network* fault on the shard transport.

    Deterministic like :class:`FaultSpec`, but matched against transport
    messages instead of operator dispatches: ``shard`` is the worker
    label (``"shard-0"``; ``None`` matches any), ``op`` the RPC operation
    (``"execute"``, ``"ping"``; ``None`` any), ``session`` the usual
    :func:`scope` restriction.  Two firing modes:

    * **occurrence window** (default): the ``occurrence``-th matching
      message fires, and so do the next ``count - 1`` after it — a
      ``partition`` with ``count=3`` blacks the shard out for exactly
      three messages, then heals.
    * **seeded rate** (``rate=0.1, seed=7``): each matching message draws
      from a per-spec ``random.Random(seed)`` and fires when the draw is
      below ``rate``.  Deterministic replay — same seed, same schedule —
      while exercising retries at realistic, uncorrelated points.
    """

    kind: str
    shard: Optional[str] = None
    op: Optional[str] = None
    occurrence: int = 0
    count: int = 1
    rate: Optional[float] = None
    seed: int = 0
    delay_seconds: float = 0.005
    session: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in NETWORK_FAULT_KINDS:
            raise ValueError(f"unknown network fault kind {self.kind!r}")
        if self.count < 1:
            raise ValueError("count must be at least 1")
        if self.rate is not None and not (0.0 <= self.rate <= 1.0):
            raise ValueError("rate must be within [0, 1]")

    def matches(
        self, shard: str, op: str, session: Optional[str] = None
    ) -> bool:
        if self.shard is not None and self.shard != shard:
            return False
        if self.op is not None and self.op != op:
            return False
        if self.session is not None and self.session != session:
            return False
        return True


@dataclass
class FaultInjector:
    """Counts injection-point visits and fires armed specs (thread-safe)."""

    specs: Tuple[FaultSpec, ...]
    visits: List[Tuple[str, str]] = field(default_factory=list)
    fired: List[Tuple[FaultSpec, str, str]] = field(default_factory=list)
    _matched: List[int] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    net_specs: Tuple[NetFaultSpec, ...] = ()
    net_fired: List[Tuple[NetFaultSpec, str, str]] = field(default_factory=list)
    _net_matched: List[int] = field(default_factory=list)
    _net_rngs: List[Optional[object]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._matched = [0] * len(self.specs)
        self._init_net_state()

    def _init_net_state(self) -> None:
        import random

        self._net_matched = [0] * len(self.net_specs)
        self._net_rngs = [
            random.Random(spec.seed) if spec.rate is not None else None
            for spec in self.net_specs
        ]

    def arm(self, spec: FaultSpec) -> FaultSpec:
        """Add one more spec while the injector is live (chaos schedules)."""
        with self._lock:
            self.specs = self.specs + (spec,)
            self._matched.append(0)
        return spec

    def arm_net(self, spec: NetFaultSpec) -> NetFaultSpec:
        """Add one more network spec while the injector is live."""
        import random

        with self._lock:
            self.net_specs = self.net_specs + (spec,)
            self._net_matched.append(0)
            self._net_rngs.append(
                random.Random(spec.seed) if spec.rate is not None else None
            )
        return spec

    def network_actions(self, shard: str, op: str) -> List[NetFaultSpec]:
        """The network faults firing on this transport message, in arm
        order.  Occurrence counting and rate draws are serialized under
        the injector lock, exactly like operator faults."""
        session = current_scope()
        actions: List[NetFaultSpec] = []
        with self._lock:
            for i, spec in enumerate(self.net_specs):
                if not spec.matches(shard, op, session):
                    continue
                if spec.rate is not None:
                    rng = self._net_rngs[i]
                    if rng.random() >= spec.rate:  # type: ignore[union-attr]
                        continue
                else:
                    seen = self._net_matched[i]
                    self._net_matched[i] = seen + 1
                    if not (
                        spec.occurrence <= seen < spec.occurrence + spec.count
                    ):
                        continue
                self.net_fired.append((spec, shard, op))
                actions.append(spec)
        return actions

    def visit(self, engine: str, label: str) -> None:
        session = current_scope()
        to_fire: Optional[FaultSpec] = None
        with self._lock:
            self.visits.append((engine, label))
            for i, spec in enumerate(self.specs):
                if not spec.matches(engine, label, session):
                    continue
                seen = self._matched[i]
                self._matched[i] = seen + 1
                if seen != spec.occurrence:
                    continue
                self.fired.append((spec, engine, label))
                to_fire = spec
                break
        if to_fire is None:
            return
        if to_fire.kind == "kernel":
            raise KernelFault(f"injected kernel fault in {engine} engine")
        if to_fire.kind == "alloc":
            raise MemoryError(f"injected allocation failure in {engine} engine")
        raise QueryTimeout(f"injected timeout in {engine} engine")


_ACTIVE: Optional[FaultInjector] = None


def install(injector: Optional[FaultInjector]) -> None:
    """Arm (or with ``None`` disarm) the process-wide injector."""
    global _ACTIVE
    _ACTIVE = injector


def active() -> Optional[FaultInjector]:
    return _ACTIVE


def injection_point(engine: str, label: str) -> None:
    """Called by the executors at every operator; no-op unless armed."""
    if _ACTIVE is not None:
        _ACTIVE.visit(engine, label)


def network_actions(shard: str, op: str) -> List[NetFaultSpec]:
    """Called by the shard transport per message; empty unless armed."""
    if _ACTIVE is None:
        return []
    return _ACTIVE.network_actions(shard, op)


@contextmanager
def inject(
    *specs: "FaultSpec | NetFaultSpec",
) -> Iterator[FaultInjector]:
    """Arm ``specs`` for the duration of a ``with`` block.

    Operator faults (:class:`FaultSpec`) and network faults
    (:class:`NetFaultSpec`) may be mixed freely; each kind fires at its
    own injection points.
    """
    plain = tuple(s for s in specs if isinstance(s, FaultSpec))
    net = tuple(s for s in specs if isinstance(s, NetFaultSpec))
    injector = FaultInjector(plain, net_specs=net)
    install(injector)
    try:
        yield injector
    finally:
        install(None)
