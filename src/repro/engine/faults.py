"""Deterministic fault injection at operator boundaries.

The resilience contract ("every execution completes within budget or
degrades/fails in a typed, attributable way") is only testable if faults
can be *planted*: this module lets tests arm a process-wide
:class:`FaultInjector` that fires at exactly one operator dispatch of one
engine, chosen by (engine, operator label, occurrence).  Both executors
call :func:`injection_point` at every operator — the row engine before
running an operator's body, the vector engine inside the kernel guard
(after the children, so a fault exercises the degradation ladder rather
than re-running the subtree).

Three fault kinds, mirroring the failure modes production engines see:

* ``"kernel"`` — an operator implementation blows up
  (:class:`KernelFault`): the vector engine must degrade the operator to
  the row engine; the row engine must surface a typed error carrying the
  operator breadcrumb.
* ``"alloc"`` — an allocation fails (raises :class:`MemoryError`): the
  executor frame converts it to the typed
  :class:`~repro.errors.MemoryLimitExceeded`; never degradable.
* ``"timeout"`` — the operator overruns its wall-clock budget (raises
  :class:`~repro.errors.QueryTimeout` directly); never degradable.

Injection is deterministic (no randomness, no clocks): the Nth matching
visit fires, so a test matrix can hit every operator of every plan
exactly once.  Use the :func:`inject` context manager; nesting is not
supported (one active injector per process).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import ExecutionError, QueryTimeout


class KernelFault(ExecutionError):
    """An injected operator-kernel failure (see :mod:`repro.engine.faults`)."""


@dataclass
class FaultSpec:
    """One planted fault: fire ``kind`` at the ``occurrence``-th visit of a
    matching injection point.

    ``engine`` is ``"row"``, ``"vector"``, or ``None`` (either);
    ``label`` is the exact operator label (``None`` matches any operator).
    """

    kind: str  # "kernel" | "alloc" | "timeout"
    engine: Optional[str] = None
    label: Optional[str] = None
    occurrence: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("kernel", "alloc", "timeout"):
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def matches(self, engine: str, label: str) -> bool:
        if self.engine is not None and self.engine != engine:
            return False
        if self.label is not None and self.label != label:
            return False
        return True


@dataclass
class FaultInjector:
    """Counts injection-point visits and fires armed specs."""

    specs: Tuple[FaultSpec, ...]
    visits: List[Tuple[str, str]] = field(default_factory=list)
    fired: List[Tuple[FaultSpec, str, str]] = field(default_factory=list)
    _matched: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._matched = [0] * len(self.specs)

    def visit(self, engine: str, label: str) -> None:
        self.visits.append((engine, label))
        for i, spec in enumerate(self.specs):
            if not spec.matches(engine, label):
                continue
            seen = self._matched[i]
            self._matched[i] = seen + 1
            if seen != spec.occurrence:
                continue
            self.fired.append((spec, engine, label))
            if spec.kind == "kernel":
                raise KernelFault(
                    f"injected kernel fault in {engine} engine"
                )
            if spec.kind == "alloc":
                raise MemoryError(
                    f"injected allocation failure in {engine} engine"
                )
            raise QueryTimeout(
                f"injected timeout in {engine} engine"
            )


_ACTIVE: Optional[FaultInjector] = None


def install(injector: Optional[FaultInjector]) -> None:
    """Arm (or with ``None`` disarm) the process-wide injector."""
    global _ACTIVE
    _ACTIVE = injector


def active() -> Optional[FaultInjector]:
    return _ACTIVE


def injection_point(engine: str, label: str) -> None:
    """Called by the executors at every operator; no-op unless armed."""
    if _ACTIVE is not None:
        _ACTIVE.visit(engine, label)


@contextmanager
def inject(*specs: FaultSpec) -> Iterator[FaultInjector]:
    """Arm ``specs`` for the duration of a ``with`` block."""
    injector = FaultInjector(tuple(specs))
    install(injector)
    try:
        yield injector
    finally:
        install(None)
