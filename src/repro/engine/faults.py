"""Deterministic fault injection at operator boundaries.

The resilience contract ("every execution completes within budget or
degrades/fails in a typed, attributable way") is only testable if faults
can be *planted*: this module lets tests arm a process-wide
:class:`FaultInjector` that fires at exactly one operator dispatch of one
engine, chosen by (engine, operator label, occurrence).  Both executors
call :func:`injection_point` at every operator — the row engine before
running an operator's body, the vector engine inside the kernel guard
(after the children, so a fault exercises the degradation ladder rather
than re-running the subtree).  The multi-session server adds a third
engine string: ``"write"`` injection points fire on the commit path of
:class:`repro.server.snapshot.VersionedCatalog`, *after* the shadow
mutation and *before* the atomic publish — a fault there models a
mid-write crash, and the contract is that the version bump rolls back
(the cloned table is discarded, readers never observe it).

Three fault kinds, mirroring the failure modes production engines see:

* ``"kernel"`` — an operator implementation blows up
  (:class:`KernelFault`): the vector engine must degrade the operator to
  the row engine; the row engine must surface a typed error carrying the
  operator breadcrumb.
* ``"alloc"`` — an allocation fails (raises :class:`MemoryError`): the
  executor frame converts it to the typed
  :class:`~repro.errors.MemoryLimitExceeded`; never degradable.
* ``"timeout"`` — the operator overruns its wall-clock budget (raises
  :class:`~repro.errors.QueryTimeout` directly); never degradable.

Injection is deterministic (no randomness, no clocks): the Nth matching
visit fires, so a test matrix can hit every operator of every plan
exactly once.  Use the :func:`inject` context manager; nesting is not
supported (one active injector per process).

Concurrency-aware injection: a :class:`FaultSpec` may be *scoped* to one
session (``session="s3"``).  Executing threads declare their scope with
the :func:`scope` context manager (the server session does this around
every query and write); a scoped spec only matches visits from threads
inside a matching scope, so a chaos test can crash exactly one session's
queries while every concurrent session proceeds untouched.  The injector
itself is thread-safe — occurrence counting is serialized under a lock —
and specs can be armed while other threads run (:meth:`FaultInjector.arm`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import ExecutionError, QueryTimeout


class KernelFault(ExecutionError):
    """An injected operator-kernel failure (see :mod:`repro.engine.faults`)."""


_SCOPE = threading.local()


@contextmanager
def scope(session: Optional[str]) -> Iterator[None]:
    """Tag the current thread's injection-point visits with a session id.

    Scoped :class:`FaultSpec`\\ s (``session=...``) only fire inside a
    matching scope; unscoped specs fire regardless.  Scopes nest — the
    innermost wins — and always restore on exit.
    """
    previous = getattr(_SCOPE, "session", None)
    _SCOPE.session = session
    try:
        yield
    finally:
        _SCOPE.session = previous


def current_scope() -> Optional[str]:
    """The session id the current thread's visits are tagged with."""
    return getattr(_SCOPE, "session", None)


@dataclass
class FaultSpec:
    """One planted fault: fire ``kind`` at the ``occurrence``-th visit of a
    matching injection point.

    ``engine`` is ``"row"``, ``"vector"``, ``"write"`` (the server's
    commit path), or ``None`` (any); ``label`` is the exact operator
    label (``None`` matches any operator); ``session`` restricts the
    spec to visits from threads inside a matching :func:`scope` (``None``
    matches every thread).  Occurrences are counted per spec across all
    matching visits, whole-injector-serialized, so concurrent sessions
    cannot double-fire a single-occurrence spec.
    """

    kind: str  # "kernel" | "alloc" | "timeout"
    engine: Optional[str] = None
    label: Optional[str] = None
    occurrence: int = 0
    session: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("kernel", "alloc", "timeout"):
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def matches(
        self, engine: str, label: str, session: Optional[str] = None
    ) -> bool:
        if self.engine is not None and self.engine != engine:
            return False
        if self.label is not None and self.label != label:
            return False
        if self.session is not None and self.session != session:
            return False
        return True


@dataclass
class FaultInjector:
    """Counts injection-point visits and fires armed specs (thread-safe)."""

    specs: Tuple[FaultSpec, ...]
    visits: List[Tuple[str, str]] = field(default_factory=list)
    fired: List[Tuple[FaultSpec, str, str]] = field(default_factory=list)
    _matched: List[int] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        self._matched = [0] * len(self.specs)

    def arm(self, spec: FaultSpec) -> FaultSpec:
        """Add one more spec while the injector is live (chaos schedules)."""
        with self._lock:
            self.specs = self.specs + (spec,)
            self._matched.append(0)
        return spec

    def visit(self, engine: str, label: str) -> None:
        session = current_scope()
        to_fire: Optional[FaultSpec] = None
        with self._lock:
            self.visits.append((engine, label))
            for i, spec in enumerate(self.specs):
                if not spec.matches(engine, label, session):
                    continue
                seen = self._matched[i]
                self._matched[i] = seen + 1
                if seen != spec.occurrence:
                    continue
                self.fired.append((spec, engine, label))
                to_fire = spec
                break
        if to_fire is None:
            return
        if to_fire.kind == "kernel":
            raise KernelFault(f"injected kernel fault in {engine} engine")
        if to_fire.kind == "alloc":
            raise MemoryError(f"injected allocation failure in {engine} engine")
        raise QueryTimeout(f"injected timeout in {engine} engine")


_ACTIVE: Optional[FaultInjector] = None


def install(injector: Optional[FaultInjector]) -> None:
    """Arm (or with ``None`` disarm) the process-wide injector."""
    global _ACTIVE
    _ACTIVE = injector


def active() -> Optional[FaultInjector]:
    return _ACTIVE


def injection_point(engine: str, label: str) -> None:
    """Called by the executors at every operator; no-op unless armed."""
    if _ACTIVE is not None:
        _ACTIVE.visit(engine, label)


@contextmanager
def inject(*specs: FaultSpec) -> Iterator[FaultInjector]:
    """Arm ``specs`` for the duration of a ``with`` block."""
    injector = FaultInjector(tuple(specs))
    install(injector)
    try:
        yield injector
    finally:
        install(None)
