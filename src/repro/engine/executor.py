"""The plan executor: logical algebra → materialized DataSets + statistics.

The executor walks a :class:`~repro.algebra.ops.PlanNode` tree bottom-up,
materializing each operator's output and recording per-operator
cardinalities and work in an :class:`~repro.engine.stats.ExecutionStats`.
Materialization (rather than tuple-at-a-time iteration) keeps the row
accounting exact and the engine easy to verify — the paper's claims are
about cardinalities, not pipelining latency.

Configuration knobs (join algorithm, aggregation strategy, RowID exposure)
live in :class:`ExecutorConfig`.  RowID exposure adds a ``<corr>.#rowid``
column to every base-table scan so the Main Theorem checker can test
``FD2: (GA1+, GA2) → RowID(R2)`` on real join results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.algebra.ops import (
    Apply,
    Exchange,
    Group,
    GroupApply,
    Join,
    PlanNode,
    Product,
    Project,
    Relation,
    Select,
    Sort,
    fuse_group_apply,
    walk_plan,
)
from repro.catalog.catalog import Database
from repro.engine import faults, joins
from repro.engine.aggregation import distinct, hash_group, sort_group
from repro.engine.dataset import DataSet
from repro.engine.governor import CancellationToken, ResourceGovernor
from repro.engine.sorting import sort_dataset
from repro.engine.stats import ExecutionStats, NodeStats
from repro.errors import (
    ExecutionError,
    MemoryLimitExceeded,
    ReproError,
    annotate_operator,
)
from repro.expressions.eval import evaluate_predicate
from repro.sqltypes.values import SqlValue

#: Name of the hidden RowID column exposed for correlation ``corr``.
def rowid_column(correlation: str) -> str:
    return f"{correlation}.#rowid"


@dataclass(frozen=True)
class ExecutorConfig:
    """Execution strategy knobs.

    * ``join_algorithm``: ``"auto"`` (hash when an equi-key exists, else
      nested loop), ``"nested_loop"``, ``"hash"``, or ``"sort_merge"``.
    * ``aggregation``: ``"hash"`` or ``"sort"`` grouping.
    * ``expose_rowids``: add ``<corr>.#rowid`` to base-table scans.
    * ``exploit_orders``: let sort-based grouping skip its sort when the
      input is already ordered on the grouping columns (§2's pipelined
      aggregation; sort-merge joins always exploit presorted inputs).
    * ``verify``: statically verify every plan before executing it
      (:func:`repro.analysis.verifier.analyze_plan`); ERROR-severity
      findings raise :class:`~repro.errors.PlanVerificationError`.
    * ``engine``: ``"row"`` (tuple-at-a-time interpreter) or ``"vector"``
      (columnar batches + compiled kernels,
      :class:`repro.engine.vector.VectorExecutor`).  Both backends produce
      ``=ⁿ``-identical results and identical :class:`ExecutionStats`.

    Resource budget (enforced by the per-execution
    :class:`~repro.engine.governor.ResourceGovernor`; all optional):

    * ``memory_limit_bytes``: estimated working-set cap for blocking
      operators — over it they spill to disk, or raise
      :class:`~repro.errors.MemoryLimitExceeded` when ``spill=False``.
    * ``timeout_seconds``: wall-clock budget; overrunning raises
      :class:`~repro.errors.QueryTimeout` at the next check point.
    * ``max_rows``: cap on any single operator's output cardinality
      (:class:`~repro.errors.RowLimitExceeded`).
    * ``spill`` / ``spill_dir``: allow spilling, and where (a fresh
      temp directory under ``spill_dir`` or the system default).
    * ``cancellation``: a :class:`~repro.engine.governor.CancellationToken`
      observed cooperatively at operator and row-loop boundaries.
    * ``degrade``: let a vector-engine kernel failure retry that operator
      on the row engine instead of failing the query (resource errors
      never degrade).
    * ``rewrites``: certified rewrite rules to apply before execution
      (:func:`repro.optimizer.rewrites.apply_rewrites`) — any subset of
      ``predicate_pushdown``, ``join_reordering``, ``projection_pruning``,
      or ``"all"``.  Every application is audited by the independent
      plan-equivalence checker; a failed audit aborts the query rather
      than running an unproven plan.

    Morsel streaming (vector engine only; the row engine ignores both):

    * ``morsel_size``: rows per morsel for the streaming vector pipelines
      (:mod:`repro.engine.vector.morsel`).  Non-blocking operator chains
      are fused and executed one morsel at a time, bounding peak memory by
      the morsel size instead of the input size.  ``None`` disables
      streaming entirely (the materialize-per-operator path).
    * ``workers``: processes for morsel-parallel partial aggregation
      (:mod:`repro.engine.vector.parallel`).  ``1`` keeps everything
      serial; ``0`` means *auto* — the worker-count autotuner picks
      ``os.cpu_count()`` (clamped, see
      :func:`repro.engine.vector.parallel.resolve_workers`).  Results are
      bit-identical whatever the count.

    Sharded execution (both engines):

    * ``shards``: number of partitions for shard-parallel execution.
      ``1`` (the default) disables distribution entirely.  With more, the
      planner wraps the plan's base-scan side in an
      :class:`~repro.algebra.ops.Exchange` (see
      :func:`repro.optimizer.distribute.distribute_plan`) and each shard
      runs its partition of the pipeline; results are bit-identical to
      unsharded execution.
    * ``exchange``: ``"auto"`` (cost-based: the communication-aware model
      picks partial-aggregation-below-the-wire vs ship-all), ``"off"``
      (never distribute, even with ``shards > 1``), or a forced mode
      (``"gather"``, ``"shuffle"``, ``"broadcast"``) — mode only changes
      the wire accounting, never the result.
    * ``partitioning``: ``"hash"`` or ``"range"`` shard assignment
      (:mod:`repro.storage.partition`); either way every row lands in
      exactly one shard, so this never changes results either.
    * ``transport``: ``"memory"`` (shards run in-process, the wire is a
      pickle round-trip) or ``"socket"`` (one OS process per shard behind
      the framed RPC of :mod:`repro.server.transport`, with retries,
      health-checked failover, and idempotent request IDs — see
      :mod:`repro.engine.shardrpc`).  Transport never changes results.
    * ``rpc_timeout_seconds`` / ``rpc_attempts``: the per-call deadline
      and retry budget for each socket-transport shard delivery.
    """

    join_algorithm: str = "auto"
    aggregation: str = "hash"
    expose_rowids: bool = False
    exploit_orders: bool = False
    verify: bool = False
    engine: str = "row"
    memory_limit_bytes: Optional[int] = None
    timeout_seconds: Optional[float] = None
    max_rows: Optional[int] = None
    spill: bool = True
    spill_dir: Optional[str] = None
    cancellation: Optional[CancellationToken] = None
    degrade: bool = True
    rewrites: Tuple[str, ...] = ()
    morsel_size: Optional[int] = 32768
    workers: int = 1
    shards: int = 1
    exchange: str = "auto"
    partitioning: str = "hash"
    transport: str = "memory"
    rpc_timeout_seconds: float = 5.0
    rpc_attempts: int = 3

    def __post_init__(self) -> None:
        if self.join_algorithm not in ("auto", "nested_loop", "hash", "sort_merge"):
            raise ValueError(f"bad join_algorithm: {self.join_algorithm}")
        # Normalized inline (not via repro.optimizer.rewrites, which cannot
        # be imported while this module is still initializing); the rule
        # list is mirrored by repro.optimizer.rewrites.REWRITE_RULES and a
        # test keeps the two in sync.
        valid = ("predicate_pushdown", "join_reordering", "projection_pruning")
        value = self.rewrites
        if value is None:
            names: Tuple[str, ...] = ()
        elif isinstance(value, str):
            text = value.strip()
            if text in ("", "none", "off"):
                names = ()
            else:
                names = tuple(p.strip() for p in text.split(",") if p.strip())
        else:
            names = tuple(value)
        if "all" in names:
            names = valid
        else:
            for name in names:
                if name not in valid:
                    raise ValueError(
                        f"unknown rewrite rule {name!r}; valid rules: "
                        + ", ".join(valid) + ", all"
                    )
            names = tuple(rule for rule in valid if rule in names)
        object.__setattr__(self, "rewrites", names)
        if self.aggregation not in ("hash", "sort"):
            raise ValueError(f"bad aggregation: {self.aggregation}")
        if self.engine not in ("row", "vector"):
            raise ValueError(f"bad engine: {self.engine}")
        if self.memory_limit_bytes is not None and self.memory_limit_bytes <= 0:
            raise ValueError("memory_limit_bytes must be positive")
        if self.timeout_seconds is not None and self.timeout_seconds < 0:
            raise ValueError("timeout_seconds must be non-negative")
        if self.max_rows is not None and self.max_rows < 0:
            raise ValueError("max_rows must be non-negative")
        if self.morsel_size is not None and self.morsel_size <= 0:
            raise ValueError("morsel_size must be positive (or None)")
        if self.workers < 0:
            raise ValueError("workers must be at least 1 (or 0 for auto)")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.exchange not in ("auto", "off", "gather", "shuffle", "broadcast"):
            raise ValueError(f"bad exchange mode: {self.exchange}")
        if self.partitioning not in ("hash", "range"):
            raise ValueError(f"bad partitioning: {self.partitioning}")
        if self.transport not in ("memory", "socket"):
            raise ValueError(f"bad transport: {self.transport}")
        if self.rpc_timeout_seconds <= 0:
            raise ValueError("rpc_timeout_seconds must be positive")
        if self.rpc_attempts < 1:
            raise ValueError("rpc_attempts must be at least 1")


class Executor:
    """Executes logical plans against a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        config: ExecutorConfig = ExecutorConfig(),
        params: Optional[Mapping[str, SqlValue]] = None,
    ) -> None:
        self.database = database
        self.config = config
        self.params = params
        #: The plan that last ran, after fusing/rewrites/distribution.
        self.executed_plan: Optional[PlanNode] = None

    def run(self, plan: PlanNode) -> Tuple[DataSet, ExecutionStats]:
        """Execute ``plan``; returns the result and per-operator statistics."""
        fused = fuse_group_apply(plan)
        if self.config.rewrites:
            from repro.optimizer.rewrites import apply_rewrites, rewrites_applied

            if rewrites_applied(fused) is None:
                algorithm = self.config.join_algorithm
                outcome = apply_rewrites(
                    fused,
                    self.database,
                    self.config.rewrites,
                    join_algorithm="hash" if algorithm == "auto" else algorithm,
                )
                fused = outcome.plan
        if self.config.shards > 1 and self.config.exchange != "off":
            if not any(isinstance(n, Exchange) for n in walk_plan(fused)):
                from repro.optimizer.distribute import distribute_plan

                fused = distribute_plan(fused, self.database, self.config)
        if self.config.verify:
            self._verify(plan, fused)
        # What actually executed (post-rewrite, post-distribution) — the
        # session picks this up so explain() shows Exchange wrapping.
        self.executed_plan = fused
        if self.config.engine == "vector":
            from repro.engine.vector.executor import VectorExecutor

            return VectorExecutor(self.database, self.config, self.params).run(fused)
        stats = ExecutionStats()
        governor = ResourceGovernor.from_config(self.config)
        try:
            result = self._execute(fused, stats, governor)
        finally:
            stats.spill_count = governor.spill_count
            stats.spilled_rows = governor.spilled_rows
            governor.close()
        return result, stats

    def _verify(self, plan: PlanNode, fused: PlanNode) -> None:
        """Opt-in pre-flight: reject statically broken plans before running.

        The *fused* plan is what executes, so that is what gets analyzed;
        a rewrite certificate attached to the original root still counts.
        """
        from repro.analysis.certificates import get_certificate
        from repro.analysis.diagnostics import Severity, render_diagnostics
        from repro.analysis.verifier import analyze_plan
        from repro.errors import PlanVerificationError

        diagnostics = analyze_plan(
            fused,
            self.database,
            certificate=get_certificate(plan),
            min_severity=Severity.ERROR,
        )
        if diagnostics:
            raise PlanVerificationError(
                "plan failed static verification:\n"
                + render_diagnostics(diagnostics),
                diagnostics,
            )

    # -- dispatch -----------------------------------------------------------

    def _execute(
        self,
        node: PlanNode,
        stats: ExecutionStats,
        governor: ResourceGovernor,
        position: str = "",
    ) -> DataSet:
        """One operator frame: budget check, fault point, dispatch, and
        breadcrumb annotation of anything that escapes.

        ``position`` marks which child of a binary parent this is ("L"/"R");
        breadcrumbs accumulate innermost-first as an error propagates up,
        so the final message reads failing-operator → plan-root.
        """
        label = node.label()
        frame = f"{position}:{label}" if position else label
        try:
            governor.check(label)
            faults.injection_point("row", label)
            result = self._dispatch(node, stats, governor)
            governor.charge_rows(result.cardinality, label)
            return result
        except MemoryError as error:
            converted = MemoryLimitExceeded(f"allocation failed: {error}")
            annotate_operator(converted, frame)
            raise converted from error
        except ReproError as error:
            annotate_operator(error, frame)
            raise

    def _dispatch(
        self, node: PlanNode, stats: ExecutionStats, governor: ResourceGovernor
    ) -> DataSet:
        if isinstance(node, Relation):
            return self._scan(node, stats)
        if isinstance(node, Select):
            return self._select(node, stats, governor)
        if isinstance(node, Project):
            return self._project(node, stats, governor)
        if isinstance(node, Product):
            return self._product(node, stats, governor)
        if isinstance(node, Join):
            return self._join(node, stats, governor)
        if isinstance(node, GroupApply):
            return self._group_apply(node, stats, governor)
        if isinstance(node, Group):
            return self._bare_group(node, stats, governor)
        if isinstance(node, Sort):
            return self._sort(node, stats, governor)
        if isinstance(node, Exchange):
            from repro.engine.exchange import run_exchange

            return run_exchange(
                self.database, self.config, self.params, node, stats, governor
            )
        if isinstance(node, Apply):
            raise ExecutionError(
                "Apply without Group beneath it; run fuse_group_apply first"
            )
        raise ExecutionError(f"cannot execute node {type(node).__name__}")

    # -- operators ------------------------------------------------------------

    def _scan(self, node: Relation, stats: ExecutionStats) -> DataSet:
        table = self.database.table(node.table_name)
        correlation = node.correlation
        columns = [f"{correlation}.{c}" for c in table.column_names()]
        if self.config.expose_rowids:
            columns.append(rowid_column(correlation))
            rows = [row.values + (row.rowid,) for row in table]
        else:
            rows = [row.values for row in table]
        dataset = DataSet(columns, rows)
        stats.record(
            id(node),
            NodeStats(node.label(), "scan", (), dataset.cardinality, dataset.cardinality),
        )
        return dataset

    def _select(
        self, node: Select, stats: ExecutionStats, governor: ResourceGovernor
    ) -> DataSet:
        child = self._execute(node.child, stats, governor)
        from repro.expressions.eval import ReusableRowScope

        scope = ReusableRowScope(child.columns)
        out_rows = []
        for row in child.rows:
            governor.tick("select")
            if evaluate_predicate(
                node.condition, scope.bind(row), self.params
            ).is_true():
                out_rows.append(row)
        # Filtering preserves any known sort order.
        dataset = DataSet(child.columns, out_rows, ordering=child.ordering)
        stats.record(
            id(node),
            NodeStats(
                node.label(),
                "select",
                (child.cardinality,),
                dataset.cardinality,
                child.cardinality,
            ),
        )
        return dataset

    def _project(
        self, node: Project, stats: ExecutionStats, governor: ResourceGovernor
    ) -> DataSet:
        child = self._execute(node.child, stats, governor)
        projected = child.project(node.columns)
        work = child.cardinality
        if node.distinct:
            projected, distinct_work = distinct(projected, governor)
            work += distinct_work
        stats.record(
            id(node),
            NodeStats(
                node.label(),
                "project",
                (child.cardinality,),
                projected.cardinality,
                work,
            ),
        )
        return projected

    def _product(
        self, node: Product, stats: ExecutionStats, governor: ResourceGovernor
    ) -> DataSet:
        left = self._execute(node.left, stats, governor, "L")
        right = self._execute(node.right, stats, governor, "R")
        dataset, work = joins.cartesian_product(left, right, governor)
        stats.record(
            id(node),
            NodeStats(
                node.label(),
                "join",
                (left.cardinality, right.cardinality),
                dataset.cardinality,
                work,
            ),
        )
        return dataset

    def _join(
        self, node: Join, stats: ExecutionStats, governor: ResourceGovernor
    ) -> DataSet:
        left = self._execute(node.left, stats, governor, "L")
        right = self._execute(node.right, stats, governor, "R")
        algorithm = self.config.join_algorithm
        if node.condition is None:
            dataset, work = joins.cartesian_product(left, right, governor)
        elif algorithm == "nested_loop":
            dataset, work = joins.nested_loop_join(
                left, right, node.condition, self.params, governor
            )
        elif algorithm == "sort_merge":
            dataset, work = joins.sort_merge_join(
                left, right, node.condition, self.params, governor
            )
        else:  # "hash" and "auto": hash_join falls back to NL itself
            dataset, work = joins.hash_join(
                left, right, node.condition, self.params, governor
            )
        stats.record(
            id(node),
            NodeStats(
                node.label(),
                "join",
                (left.cardinality, right.cardinality),
                dataset.cardinality,
                work,
            ),
        )
        return dataset

    def _group_apply(
        self, node: GroupApply, stats: ExecutionStats, governor: ResourceGovernor
    ) -> DataSet:
        child = self._execute(node.child, stats, governor)
        if self.config.aggregation == "sort":
            from repro.engine.sorting import is_sorted_on

            presorted = self.config.exploit_orders and is_sorted_on(
                child, node.grouping_columns
            )
            dataset, work = sort_group(
                child, node.grouping_columns, node.aggregates, self.params,
                presorted=presorted, governor=governor,
            )
        else:
            dataset, work = hash_group(
                child, node.grouping_columns, node.aggregates, self.params,
                governor,
            )
        stats.record(
            id(node),
            NodeStats(
                node.label(),
                "groupby",
                (child.cardinality,),
                dataset.cardinality,
                work,
            ),
        )
        return dataset

    def _sort(
        self, node: Sort, stats: ExecutionStats, governor: ResourceGovernor
    ) -> DataSet:
        child = self._execute(node.child, stats, governor)
        dataset, work = sort_dataset(child, node.columns, node.descending, governor)
        stats.record(
            id(node),
            NodeStats(
                node.label(),
                "sort",
                (child.cardinality,),
                dataset.cardinality,
                work,
            ),
        )
        return dataset

    def _bare_group(
        self, node: Group, stats: ExecutionStats, governor: ResourceGovernor
    ) -> DataSet:
        # G[GA] alone: the defining SQL is SELECT * FROM R ORDER BY GA —
        # grouping realized by sorting, rows unchanged.
        child = self._execute(node.child, stats, governor)
        dataset, work = sort_dataset(child, node.grouping_columns, governor=governor)
        stats.record(
            id(node),
            NodeStats(
                node.label(),
                "groupby",
                (child.cardinality,),
                dataset.cardinality,
                work,
            ),
        )
        return dataset


def execute(
    database: Database,
    plan: PlanNode,
    config: ExecutorConfig = ExecutorConfig(),
    params: Optional[Mapping[str, SqlValue]] = None,
) -> Tuple[DataSet, ExecutionStats]:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(database, config, params).run(plan)
