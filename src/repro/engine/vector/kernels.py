"""Vectorized operator kernels over :class:`ColumnBatch`.

Each kernel mirrors one row-engine operator (``engine/joins.py``,
``engine/aggregation.py``, ``engine/sorting.py``) and returns the same
``(result, work)`` pair computing the *identical* work formula — the §7
cost study must not be able to tell the backends apart.  What changes is
the inner loop: predicates and aggregate arguments are compiled once per
operator (:mod:`repro.expressions.compile`) and applied to whole columns,
selection vectors replace row copying, and grouped aggregation streams
per-group accumulators instead of materializing row lists per group.

NULL handling follows the per-batch type census: kernels consult
:meth:`ColumnBatch.column_kinds` to decide whether the ``=ⁿ``/3VL-aware
slow path is needed at all, and use raw values when it is not.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.ops import AggregateSpec
from repro.engine.joins import extract_equi_keys
from repro.engine.vector.batch import ColumnBatch, _Gather, _Repeat, _np
from repro.errors import ExecutionError
from repro.expressions.ast import Expression
from repro.expressions.compile import (
    TRUE_CODE,
    GroupVectors,
    compile_aggregate_arguments,
    compile_group_expression,
    compile_predicate,
)
from repro.sqltypes.values import (
    NULL,
    SqlValue,
    group_key,
    sort_key,
    sql_add,
    sql_div,
)

Params = Optional[Mapping[str, SqlValue]]


def _sort_cost(n: int) -> int:
    return n * max(1, math.ceil(math.log2(n))) if n > 1 else n


# -- filter ------------------------------------------------------------------


def filter_batch(
    batch: ColumnBatch, condition: Expression, params: Params
) -> Tuple[ColumnBatch, int]:
    """σ[C]: keep rows where the predicate's truth code is TRUE (⌊C⌋)."""
    predicate = compile_predicate(condition, batch.names)
    codes = predicate(batch, params)
    selection = [i for i, code in enumerate(codes) if code == TRUE_CODE]
    if len(selection) == batch.length:
        result = batch  # nothing filtered: share the columns outright
    else:
        result = batch.take(selection, ordering=batch.ordering)
    return result, batch.length


# -- projection --------------------------------------------------------------


def project_batch(batch: ColumnBatch, columns: Sequence[str]) -> ColumnBatch:
    """π^A: zero-copy column selection; ordering survives as the longest
    leading prefix whose columns are all retained (DataSet.project rules)."""
    indexes = batch.indexes_of(columns)
    kept = {batch.names[i] for i in indexes}
    surviving: List[str] = []
    for column in batch.ordering:
        if column in kept:
            surviving.append(column)
        else:
            break
    return batch.select_columns(indexes, ordering=surviving)


def distinct_batch(batch: ColumnBatch) -> Tuple[ColumnBatch, int]:
    """π^D duplicate elimination under ``=ⁿ`` (keeps first occurrence)."""
    indexes = range(len(batch.names))
    selection: List[int] = []
    if batch.plain_keys_on(indexes):
        seen_raw: Dict[Tuple[SqlValue, ...], None] = {}
        for i, row in enumerate(batch.iter_rows()):
            if row not in seen_raw:
                seen_raw[row] = None
                selection.append(i)
    else:
        seen: Dict[Tuple, None] = {}
        for i, row in enumerate(batch.iter_rows()):
            key = group_key(row)
            if key not in seen:
                seen[key] = None
                selection.append(i)
    # The row engine's distinct() drops the ordering property.
    return batch.take(selection), batch.length


# -- joins -------------------------------------------------------------------


def _pair_batch(
    left: ColumnBatch,
    right: ColumnBatch,
    left_sel: Sequence[int],
    right_sel: Sequence[int],
) -> ColumnBatch:
    """Gather matched (left, right) row pairs into one combined batch.

    The gathers are lazy (:class:`_Gather` views): a column of the join
    output is only materialized if a downstream operator reads it — late
    materialization, the classic columnar-join trick.
    """
    columns: List[Sequence[SqlValue]] = [
        _Gather(column, left_sel, left.cached_array(i))
        for i, column in enumerate(left.columns)
    ]
    columns.extend(
        _Gather(column, right_sel, right.cached_array(j))
        for j, column in enumerate(right.columns)
    )
    return ColumnBatch(left.names + right.names, columns, length=len(left_sel))


def _apply_residual(
    pairs: ColumnBatch, residual: Optional[Expression], params: Params
) -> ColumnBatch:
    if residual is None:
        return pairs
    predicate = compile_predicate(residual, pairs.names)
    codes = predicate(pairs, params)
    selection = [i for i, code in enumerate(codes) if code == TRUE_CODE]
    if len(selection) == pairs.length:
        return pairs
    return pairs.take(selection)


def _key_rows(
    batch: ColumnBatch, key_indexes: Sequence[int]
) -> Tuple[List[Optional[Tuple[SqlValue, ...]]], int]:
    """Per-row raw key tuples, with ``None`` marking NULL-containing keys.

    Returns (keys, valid_count).  The row engine keys its hash table with
    raw value tuples (after dropping NULL keys), so raw tuples are exactly
    right here too.
    """
    key_columns = [batch.columns[i] for i in key_indexes]
    if len(key_columns) == 1:
        column = key_columns[0]
        if not batch.has_nulls(key_indexes[0]):
            return [(value,) for value in column], batch.length
        keys: List[Optional[Tuple[SqlValue, ...]]] = [
            None if value is NULL else (value,) for value in column
        ]
        return keys, sum(1 for k in keys if k is not None)
    if not any(batch.has_nulls(i) for i in key_indexes):
        rows = list(zip(*key_columns)) if key_columns else [()] * batch.length
        return rows, batch.length
    keys = []
    valid = 0
    for row in zip(*key_columns):
        if any(value is NULL for value in row):
            keys.append(None)
        else:
            keys.append(row)
            valid += 1
    return keys, valid


def _np_equi_join(left: ColumnBatch, right: ColumnBatch, left_key: int, right_key: int):
    """C-speed single-key equi-join via sort + binary search.

    Emits the *identical* pair sequence the dict-of-buckets probe does:
    left rows in order, and (because the argsort is stable) each left
    row's matches in original right-row order.  Only taken when both key
    columns have exact same-dtype array views — mixed dtypes or NaN would
    change equality semantics.  Returns (left_sel, right_sel, probes) or
    ``None``.
    """
    if _np is None:
        return None
    left_arr = left.as_array(left_key)
    right_arr = right.as_array(right_key)
    if left_arr is None or right_arr is None or left_arr.dtype != right_arr.dtype:
        return None
    if left_arr.dtype.kind == "f" and (
        _np.isnan(left_arr).any() or _np.isnan(right_arr).any()
    ):
        return None
    order = _np.argsort(right_arr, kind="stable")
    sorted_keys = right_arr[order]
    lo = _np.searchsorted(sorted_keys, left_arr, side="left")
    hi = _np.searchsorted(sorted_keys, left_arr, side="right")
    counts = hi - lo
    probes = int(counts.sum())
    left_sel = _np.repeat(_np.arange(left.length), counts)
    offsets = _np.cumsum(counts) - counts
    positions = (
        _np.arange(probes) - _np.repeat(offsets, counts) + _np.repeat(lo, counts)
    )
    right_sel = order[positions]
    return left_sel, right_sel, probes


def hash_join_batch(
    left: ColumnBatch,
    right: ColumnBatch,
    condition: Optional[Expression],
    params: Params,
) -> Tuple[ColumnBatch, int]:
    """Hash join on extracted equi-keys; nested-loop fallback without one.

    Same contract as :func:`repro.engine.joins.hash_join`: NULL keys are
    dropped on both sides, work = |L| + |R| + bucket matches examined.
    """
    pairs, residual = extract_equi_keys(condition, left, right)
    if not pairs:
        return nested_loop_join_batch(left, right, condition, params)

    left_keys = [p[0] for p in pairs]
    right_keys = [p[1] for p in pairs]

    if len(pairs) == 1:
        fast = _np_equi_join(left, right, left_keys[0], right_keys[0])
        if fast is not None:
            left_sel, right_sel, probes = fast
            combined = _apply_residual(
                _pair_batch(left, right, left_sel, right_sel), residual, params
            )
            return combined, left.length + right.length + probes

    right_key_rows, __ = _key_rows(right, right_keys)
    table: Dict[Tuple[SqlValue, ...], List[int]] = {}
    for j, key in enumerate(right_key_rows):
        if key is not None:
            table.setdefault(key, []).append(j)

    left_key_rows, __ = _key_rows(left, left_keys)
    left_sel: List[int] = []
    right_sel: List[int] = []
    probes = 0
    get_bucket = table.get
    for i, key in enumerate(left_key_rows):
        if key is None:
            continue
        bucket = get_bucket(key)
        if bucket:
            probes += len(bucket)
            left_sel.extend([i] * len(bucket))
            right_sel.extend(bucket)

    combined = _apply_residual(_pair_batch(left, right, left_sel, right_sel), residual, params)
    work = left.length + right.length + probes
    return combined, work


def nested_loop_join_batch(
    left: ColumnBatch,
    right: ColumnBatch,
    condition: Optional[Expression],
    params: Params,
) -> Tuple[ColumnBatch, int]:
    """Examine every pair; work = |L| × |R|.

    The condition is compiled once; each left row is broadcast against the
    whole right batch, producing one selection vector per left row.
    """
    names = left.names + right.names
    work = left.length * right.length
    left_sel: List[int] = []
    right_sel: List[int] = []
    if right.length:
        predicate = (
            None if condition is None else compile_predicate(condition, names)
        )
        for i in range(left.length):
            if predicate is None:
                left_sel.extend([i] * right.length)
                right_sel.extend(range(right.length))
                continue
            broadcast = ColumnBatch(
                names,
                [_Repeat(column[i], right.length) for column in left.columns]
                + list(right.columns),
                length=right.length,
            )
            codes = predicate(broadcast, params)
            matched = [j for j, code in enumerate(codes) if code == TRUE_CODE]
            left_sel.extend([i] * len(matched))
            right_sel.extend(matched)
    return _pair_batch(left, right, left_sel, right_sel), work


def sort_merge_join_batch(
    left: ColumnBatch,
    right: ColumnBatch,
    condition: Optional[Expression],
    params: Params,
) -> Tuple[ColumnBatch, int]:
    """Sort-merge join on extracted equi-keys (nested-loop fallback).

    Mirrors :func:`repro.engine.joins.sort_merge_join`: NULL-key rows are
    dropped pre-merge, presorted inputs skip their sort phase, work =
    sort costs + |L| + |R| + matches, output carries left-key ordering.
    """
    pairs, residual = extract_equi_keys(condition, left, right)
    if not pairs:
        return nested_loop_join_batch(left, right, condition, params)

    from repro.engine.sorting import is_sorted_on

    left_keys = [p[0] for p in pairs]
    right_keys = [p[1] for p in pairs]
    left_presorted = is_sorted_on(left, [left.names[i] for i in left_keys])
    right_presorted = is_sorted_on(right, [right.names[i] for i in right_keys])

    def merge_side(batch: ColumnBatch, key_indexes: List[int], presorted: bool):
        key_rows, __ = _key_rows(batch, key_indexes)
        indices = [i for i, key in enumerate(key_rows) if key is not None]
        keys = [sort_key(key_rows[i]) for i in indices]
        if not presorted:
            order = sorted(range(len(indices)), key=keys.__getitem__)
            indices = [indices[t] for t in order]
            keys = [keys[t] for t in order]
        return indices, keys

    left_idx, left_sorted_keys = merge_side(left, left_keys, left_presorted)
    right_idx, right_sorted_keys = merge_side(right, right_keys, right_presorted)

    left_sel: List[int] = []
    right_sel: List[int] = []
    matches = 0
    i = j = 0
    n_left, n_right = len(left_idx), len(right_idx)
    while i < n_left and j < n_right:
        left_key = left_sorted_keys[i]
        right_key = right_sorted_keys[j]
        if left_key < right_key:
            i += 1
        elif right_key < left_key:
            j += 1
        else:
            j_end = j
            while j_end < n_right and right_sorted_keys[j_end] == right_key:
                j_end += 1
            run = right_idx[j:j_end]
            i_run = i
            while i_run < n_left and left_sorted_keys[i_run] == left_key:
                matches += len(run)
                left_sel.extend([left_idx[i_run]] * len(run))
                right_sel.extend(run)
                i_run += 1
            i = i_run
            j = j_end

    combined = _apply_residual(_pair_batch(left, right, left_sel, right_sel), residual, params)
    work = (
        (0 if left_presorted else _sort_cost(left.length))
        + (0 if right_presorted else _sort_cost(right.length))
        + left.length
        + right.length
        + matches
    )
    ordering = tuple(left.names[i] for i in left_keys)
    return combined.with_ordering(ordering), work


def cartesian_product_batch(
    left: ColumnBatch, right: ColumnBatch
) -> Tuple[ColumnBatch, int]:
    """L × R; work = |L| × |R|.  Left values repeat blockwise, right cycles."""
    n_left, n_right = left.length, right.length
    columns: List[Sequence[SqlValue]] = [
        [value for value in column for __ in range(n_right)]
        for column in left.columns
    ]
    columns.extend(list(column) * n_left for column in right.columns)
    result = ColumnBatch(
        left.names + right.names, columns, length=n_left * n_right
    )
    return result, n_left * n_right


# -- sorting -----------------------------------------------------------------


def sort_batch(
    batch: ColumnBatch,
    columns: Sequence[str],
    descending: Optional[Sequence[bool]] = None,
) -> Tuple[ColumnBatch, int]:
    """Sort on ``columns`` (NULLS FIRST); mirrors ``sort_dataset``.

    A stable multi-pass sort over a permutation vector, least-significant
    key first; null-free columns sort on raw values (same order, no
    wrapper allocation).
    """
    indexes = batch.indexes_of(columns)
    flags = tuple(descending) if descending else tuple(False for __ in columns)
    work = _sort_cost(batch.length)
    ordering = tuple(batch.names[i] for i in indexes) if not any(flags) else ()
    fast = _np_sort_perm(batch, indexes, flags)
    if fast is not None:
        return batch.take(fast, ordering=ordering), work
    perm = list(range(batch.length))
    for index, desc in reversed(list(zip(indexes, flags))):
        column = batch.columns[index]
        if batch.has_nulls(index):
            perm.sort(key=lambda i: sort_key((column[i],)), reverse=desc)
        else:
            perm.sort(key=column.__getitem__, reverse=desc)
    return batch.take(perm, ordering=ordering), work


def _np_sort_perm(batch: ColumnBatch, indexes: Sequence[int], flags: Sequence[bool]):
    """A C-speed stable sort permutation, or ``None`` when Python-only.

    Valid only for homogeneous null-free int/float key columns without
    NaN: there raw ``<`` agrees with ``sort_key`` order, and a stable
    argsort (descending keys negated — stability makes that equivalent to
    ``reverse=True``) reproduces the multi-pass ``list.sort`` exactly.
    """
    if _np is None or batch.length <= 1 or not indexes:
        return None
    arrays = []
    for index, desc in zip(indexes, flags):
        arr = batch.as_array(index)
        if arr is None:
            return None
        if arr.dtype.kind == "f" and _np.isnan(arr).any():
            return None
        if desc:
            if arr.dtype.kind == "i" and arr.size and int(arr.min()) == -(2 ** 63):
                return None  # negation would overflow
            arr = -arr
        arrays.append(arr)
    if len(arrays) == 1:
        return _np.argsort(arrays[0], kind="stable")
    return _np.lexsort(tuple(reversed(arrays)))


# -- grouped aggregation -----------------------------------------------------


class _Accumulator:
    """Streaming per-group state for one aggregate (pipelined fold).

    Folds values in the order they are fed, which the caller arranges to
    match the row engine exactly: input order for hash grouping, sorted
    order for sort grouping.  SUM/AVG accumulate with ``sql_add`` starting
    from the first value; MIN/MAX keep the first value among sort-key ties
    (strict ``<``/``>`` replacement, same as ``min(..., key=sort_key)``).
    """

    __slots__ = ("function", "distinct", "state", "counts", "seen")

    def __init__(self, function: str, distinct: bool, n_groups: int) -> None:
        self.function = function
        self.distinct = distinct
        self.state: List[SqlValue] = [NULL] * n_groups
        self.counts = [0] * n_groups
        self.seen: Optional[List[Dict[Tuple, None]]] = (
            [{} for __ in range(n_groups)] if distinct else None
        )

    def feed(self, gid: int, value: SqlValue) -> None:
        if value is NULL:
            return
        if self.seen is not None:
            key = group_key((value,))
            bucket = self.seen[gid]
            if key in bucket:
                return
            bucket[key] = None
        function = self.function
        count = self.counts[gid]
        self.counts[gid] = count + 1
        if function == "COUNT":
            return
        if count == 0:
            self.state[gid] = value
        elif function in ("SUM", "AVG"):
            self.state[gid] = sql_add(self.state[gid], value)
        elif function == "MIN":
            if _strictly_less(value, self.state[gid]):
                self.state[gid] = value
        elif function == "MAX":
            if _strictly_less(self.state[gid], value):
                self.state[gid] = value
        else:
            raise ExecutionError(f"unknown aggregate function {function}")

    def finish(self) -> List[SqlValue]:
        if self.function == "COUNT":
            return list(self.counts)
        if self.function == "AVG":
            return [
                NULL
                if count == 0
                else (
                    sql_div(total, count)
                    if not isinstance(total, int)
                    else total / count
                )
                for total, count in zip(self.state, self.counts)
            ]
        return self.state


def _strictly_less(left: SqlValue, right: SqlValue) -> bool:
    # Non-NULL values only (NULLs were skipped); NullsFirstKey then
    # delegates to plain ``<``, so compare directly.
    return left < right  # type: ignore[operator]


def _factorize_generic(
    batch: ColumnBatch,
    group_indexes: Tuple[int, ...],
    key_columns: List[Sequence[SqlValue]],
    mode: str,
    presorted: bool,
) -> Tuple[List[int], List[int], Optional[List[int]], int]:
    """Reference grouping: (group_of, reps, fold_perm, sort_work).

    Per-row grouping keys are raw value tuples when the type census shows
    no NULL/BOOLEAN on the grouping columns (raw tuple equality then
    agrees with group_key equality), the full ``=ⁿ`` key otherwise.
    ``fold_perm`` is ``None`` when rows fold in input order.
    """
    n = batch.length
    if not group_indexes:
        keys: Sequence[Tuple] = _Repeat((), n)
    elif batch.plain_keys_on(group_indexes):
        keys = (
            [(value,) for value in key_columns[0]]
            if len(key_columns) == 1
            else list(zip(*key_columns))
        )
    else:
        keys = [group_key(row) for row in zip(*key_columns)] if n else []

    group_of: List[int] = [0] * n
    reps: List[int] = []
    if mode == "sort":
        if presorted:
            perm: Sequence[int] = range(n)
            fold_perm: Optional[List[int]] = None
            sort_work = 0
        else:
            sort_keys = (
                keys
                if not group_indexes
                else [
                    sort_key(tuple(batch.columns[i][r] for i in group_indexes))
                    for r in range(n)
                ]
            )
            perm = sorted(range(n), key=sort_keys.__getitem__)
            fold_perm = list(perm)
            sort_work = _sort_cost(n) if n > 1 else n
        # Boundary scan: a new group starts whenever the key changes between
        # consecutive rows of the sorted sequence (exactly sort_group's
        # flush condition).
        previous: object = _SENTINEL
        gid = -1
        for r in perm:
            key = keys[r]
            if gid < 0 or key != previous:
                gid += 1
                reps.append(r)
                previous = key
            group_of[r] = gid
        return group_of, reps, fold_perm, sort_work
    table: Dict[Tuple, int] = {}
    for r in range(n):
        key = keys[r]
        gid = table.get(key)
        if gid is None:
            gid = len(reps)
            table[key] = gid
            reps.append(r)
        group_of[r] = gid
    return group_of, reps, None, 0


def _factorize_fast(
    batch: ColumnBatch,
    group_indexes: Tuple[int, ...],
    mode: str,
    presorted: bool,
):
    """C-speed grouping, or ``None`` when only the generic path is sound.

    Two strategies, both provably ``=ⁿ``-equivalent to the generic path:

    * *shared-selection gathers* (hash mode): every grouping column is an
      unmaterialized gather through the same selection vector — e.g. all
      came from one side of a join.  Factorize the (much smaller) source
      rows with ``group_key``, then gather + compact the ids.
    * *array keys*: homogeneous null-free int/float grouping columns with
      no NaN — raw equality is ``=ⁿ`` equality and a stable argsort is
      ``sort_key`` order, so ids come from ``np.unique``/boundary flags.

    Returns (group_of int64 array, reps, fold_perm array or None,
    sort_work); reps is the first row of each group in the row engine's
    processing order (input order for hash, sorted order for sort).
    """
    if _np is None or not group_indexes:
        return None
    n = batch.length
    columns = [batch.columns[i] for i in group_indexes]

    if mode == "hash" and all(
        isinstance(column, _Gather) and column._data is None for column in columns
    ):
        shared_sel = columns[0].sel
        sources = [column.source for column in columns]
        m = len(sources[0])
        if (
            all(column.sel is shared_sel for column in columns)
            and 0 < m <= n  # factorizing the source must not exceed one pass
            and all(len(source) == m for source in sources)
        ):
            table: Dict[Tuple, int] = {}
            src_gid = _np.empty(m, dtype=_np.int64)
            source_keys = (
                ((value,) for value in sources[0])
                if len(sources) == 1
                else zip(*sources)
            )
            for j, raw in enumerate(source_keys):
                key = group_key(raw)
                gid = table.get(key)
                if gid is None:
                    gid = len(table)
                    table[key] = gid
                src_gid[j] = gid
            gids = src_gid[columns[0].sel_array()]
            __, first, inverse = _np.unique(
                gids, return_index=True, return_inverse=True
            )
            return inverse.reshape(-1), first.tolist(), None, 0

    arrays = []
    for i in group_indexes:
        arr = batch.as_array(i)
        if arr is None:
            return None
        if arr.dtype.kind == "f" and _np.isnan(arr).any():
            return None  # NaN equality/order differs from the Python path
        arrays.append(arr)

    if mode == "hash":
        codes = arrays[0] if len(arrays) == 1 else _combine_codes(arrays)
        __, first, inverse = _np.unique(codes, return_index=True, return_inverse=True)
        return inverse.reshape(-1), first.tolist(), None, 0

    if presorted:
        perm = None
        ordered = arrays
    else:
        if len(arrays) == 1:
            perm = _np.argsort(arrays[0], kind="stable")
        else:
            perm = _np.lexsort(tuple(reversed(arrays)))
        ordered = [arr[perm] for arr in arrays]
    change = _np.zeros(n, dtype=bool)
    change[0] = True
    for arr in ordered:
        change[1:] |= arr[1:] != arr[:-1]
    gids_in_order = _np.cumsum(change) - 1
    if perm is None:
        return gids_in_order, _np.flatnonzero(change).tolist(), None, 0
    group_of = _np.empty(n, dtype=_np.int64)
    group_of[perm] = gids_in_order
    return group_of, perm[change].tolist(), perm, _sort_cost(n)


def _combine_codes(arrays):
    """Collapse multiple key arrays into one int64 code array.

    Each column is factorized independently, then codes are mixed with a
    positional radix; renormalizing after every step keeps every code
    below n², far inside int64.
    """
    codes = _np.unique(arrays[0], return_inverse=True)[1].reshape(-1)
    for arr in arrays[1:]:
        nxt = _np.unique(arr, return_inverse=True)[1].reshape(-1)
        width = int(nxt.max()) + 1 if nxt.size else 1
        codes = _np.unique(codes * width + nxt, return_inverse=True)[1].reshape(-1)
    return codes


def _values_array(values: Sequence[SqlValue], batch: ColumnBatch):
    """An exact numpy view of an aggregate-argument column, or ``None``.

    A column taken straight from the batch reuses its cached array view;
    a computed column (arithmetic over columns) converts if its dtype
    lands exactly on int64/float64 — NULL, strings, or plain bools make
    the conversion refuse (object/bool/str dtypes), forcing the streaming
    fallback.
    """
    for index, column in enumerate(batch.columns):
        if column is values:
            return batch.as_array(index)
    if isinstance(values, list):
        try:
            arr = _np.asarray(values)
        except (OverflowError, ValueError, TypeError):
            return None
        if arr.ndim == 1 and (arr.dtype == _np.int64 or arr.dtype == _np.float64):
            return arr
    return None


def _fold_fast(
    function: str,
    values: Sequence[SqlValue],
    batch: ColumnBatch,
    group_of,
    fold_perm,
    n_groups: int,
) -> Optional[List[SqlValue]]:
    """COUNT/SUM/AVG per group via ``np.bincount``, or ``None``.

    ``bincount`` accumulates sequentially, so per-group float sums fold in
    exactly the order the rows are presented (``fold_perm`` reorders to
    the row engine's fold order); starting from 0.0 is exact because
    ``0.0 + x == x``.  Integer sums go through float64 weights only when
    ``max|v|·n < 2⁵³`` guarantees every partial sum is exact; otherwise
    the caller's arbitrary-precision fallback runs.  Every group has at
    least one row and the array view excludes NULL, so the empty-bag →
    NULL case cannot arise here.
    """
    if function not in ("COUNT", "SUM", "AVG"):
        return None
    arr = _values_array(values, batch)
    if arr is None:
        return None
    gids = group_of
    if fold_perm is not None:
        gids = gids[fold_perm]
        arr = arr[fold_perm]
    if function == "COUNT":
        return _np.bincount(gids, minlength=n_groups).tolist()
    if arr.dtype.kind == "i":
        amax = int(_np.abs(arr).max()) if arr.size else 0
        if amax < 0 or amax * arr.size >= 2 ** 53:
            return None
        totals = (
            _np.bincount(gids, weights=arr, minlength=n_groups)
            .astype(_np.int64)
            .tolist()
        )
    else:
        totals = _np.bincount(gids, weights=arr, minlength=n_groups).tolist()
    if function == "SUM":
        return totals
    counts = _np.bincount(gids, minlength=n_groups).tolist()
    return [
        sql_div(total, count) if not isinstance(total, int) else total / count
        for total, count in zip(totals, counts)
    ]


def grouped_aggregate(
    batch: ColumnBatch,
    grouping_columns: Sequence[str],
    specs: Sequence[AggregateSpec],
    params: Params = None,
    mode: str = "hash",
    presorted: bool = False,
) -> Tuple[ColumnBatch, int]:
    """G[GA] + F(AA): grouped aggregation with pipelined accumulators.

    ``mode="hash"`` mirrors :func:`repro.engine.aggregation.hash_group`
    (groups in first-appearance order, work = n + groups); ``mode="sort"``
    mirrors :func:`~repro.engine.aggregation.sort_group` (sort then
    boundary scan, output ordered by the grouping columns, work =
    n·log₂n + n, or n + groups when ``presorted``).
    """
    group_indexes = batch.indexes_of(grouping_columns)
    n = batch.length
    key_columns = [batch.columns[i] for i in group_indexes]

    # Grouping = factorization: assign each row a dense group id, pick the
    # row engine's representative per group, and remember the order rows
    # must be folded in.  The C-speed path handles null-free numeric keys
    # and shared-selection gathers; everything else takes the generic path.
    group_of: Optional[List[int]] = None
    group_of_array = None
    fold_perm_list: Optional[List[int]] = None  # None = fold in input order
    fold_perm_array = None
    fast = _factorize_fast(batch, group_indexes, mode, presorted) if n else None
    if fast is not None:
        group_of_array, reps, fold_perm_array, sort_work = fast
    else:
        group_of, reps, fold_perm_list, sort_work = _factorize_generic(
            batch, group_indexes, key_columns, mode, presorted
        )
        if _np is not None and n >= 1024:
            group_of_array = _np.asarray(group_of, dtype=_np.int64)
            if fold_perm_list is not None:
                fold_perm_array = _np.asarray(fold_perm_list, dtype=_np.intp)

    n_groups = len(reps)
    order: Optional[Sequence[int]] = None  # fold order as Python ints, lazy

    # Compile each distinct aggregate's argument once, evaluate it over the
    # whole batch, then fold per group — at C speed via bincount where the
    # value column has an exact array view, streaming otherwise.
    compiled, slots = compile_aggregate_arguments(specs, batch.names)
    agg_columns: List[List[SqlValue]] = []
    for aggregate in compiled:
        if aggregate.argument is None:  # COUNT(*): group sizes
            if group_of_array is not None:
                agg_columns.append(
                    _np.bincount(group_of_array, minlength=n_groups).tolist()
                )
            else:
                sizes = [0] * n_groups
                for gid in group_of:
                    sizes[gid] += 1
                agg_columns.append(sizes)
            continue
        values = aggregate.argument(batch, params)
        column: Optional[List[SqlValue]] = None
        if group_of_array is not None and not aggregate.distinct:
            column = _fold_fast(
                aggregate.function,
                values,
                batch,
                group_of_array,
                fold_perm_array,
                n_groups,
            )
        if column is None:
            if group_of is None:
                group_of = group_of_array.tolist()
            if order is None:
                if fold_perm_list is not None:
                    order = fold_perm_list
                elif fold_perm_array is not None:
                    order = fold_perm_array.tolist()
                else:
                    order = range(n)
            accumulator = _Accumulator(
                aggregate.function, aggregate.distinct, n_groups
            )
            feed = accumulator.feed
            for r in order:
                feed(group_of[r], values[r])
            column = accumulator.finish()
        agg_columns.append(column)

    # Evaluate each spec's F(AA) arithmetic over the per-group vectors.
    groups = GroupVectors(batch, reps, agg_columns)
    spec_columns = [
        compile_group_expression(spec.expression, batch.names, slots)(groups, params)
        for spec in specs
    ]

    out_names = tuple(batch.names[i] for i in group_indexes) + tuple(
        spec.name for spec in specs
    )
    out_columns: List[Sequence[SqlValue]] = [
        [column[r] for r in reps] for column in key_columns
    ]
    out_columns.extend(spec_columns)

    if mode == "sort":
        ordering: Tuple[str, ...] = out_names[: len(grouping_columns)]
        if presorted:
            work = n + n_groups
        else:
            work = sort_work + n
    else:
        ordering = ()
        work = n + n_groups
    result = ColumnBatch(out_names, out_columns, length=n_groups, ordering=ordering)
    return result, work


class _Sentinel:
    __slots__ = ()

    def __eq__(self, other: object) -> bool:
        return other is self

    def __hash__(self) -> int:
        return 0


_SENTINEL = _Sentinel()
