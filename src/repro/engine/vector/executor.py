"""The vectorized plan executor: same plans, same stats, columnar inner loops.

:class:`VectorExecutor` walks the identical fused :class:`PlanNode` tree the
row executor walks, records :class:`NodeStats` under the same node ids with
the same work formulas, and returns the same result type (a
:class:`~repro.engine.dataset.DataSet`, materialized from the root batch) —
only the per-operator inner loops differ.  That contract is what keeps the
§7 cost study backend-independent, and the differential harness
(:mod:`repro.engine.vector.differential`) holds it to account.

Resilience rides on the same contract in two ways:

* **Spill routing** — blocking operators whose estimated state exceeds the
  memory budget are executed through the *row* implementations (which own
  the spill machinery), over the already-computed child batches.  Both
  backends compute the identical deterministic estimate, so they spill on
  exactly the same operators and produce identical results.
* **Graceful degradation** — a failing vector kernel (anything but a
  resource-budget error) is retried once on the row implementation, again
  over the already-computed children, and recorded in
  ``ExecutionStats.degradations``.  The row path is the specification the
  kernels are differentially tested against, so the retried operator
  produces the same rows and the same work count.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Tuple

from repro.algebra.ops import (
    Apply,
    Exchange,
    Group,
    GroupApply,
    Join,
    PlanNode,
    Product,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.catalog.catalog import Database
from repro.engine import faults, joins
from repro.engine.aggregation import distinct, hash_group, sort_group
from repro.engine.dataset import DataSet
from repro.engine.governor import ResourceGovernor, estimate_table_bytes
from repro.engine.sorting import sort_dataset
from repro.engine.stats import ExecutionStats, NodeStats
from repro.engine.vector import kernels
from repro.engine.vector.batch import ColumnBatch
from repro.errors import (
    ExecutionError,
    MemoryLimitExceeded,
    ReproError,
    ResourceError,
    annotate_operator,
)
from repro.expressions.eval import ReusableRowScope, evaluate_predicate
from repro.sqltypes.values import SqlValue
from repro.storage.columnar import table_to_batch

#: A kernel or fallback thunk: produces (result batch, work units).
_Compute = Callable[[], Tuple[ColumnBatch, int]]


class VectorExecutor:
    """Executes fused logical plans against columnar batches.

    Constructed by :class:`repro.engine.executor.Executor` when
    ``config.engine == "vector"``; not normally instantiated directly.
    ``config`` is the shared :class:`ExecutorConfig` (join algorithm,
    aggregation strategy, RowID exposure, order exploitation, and the
    resource budget).
    """

    def __init__(
        self,
        database: Database,
        config,
        params: Optional[Mapping[str, SqlValue]] = None,
    ) -> None:
        self.database = database
        self.config = config
        self.params = params
        # The recursion hook: every operator recurses into children through
        # this indirection.  run() points it at the morsel driver when
        # streaming is enabled, so fused chains anywhere in the plan are
        # intercepted; morsel_size=None keeps the classic per-operator path.
        self._recurse = self._execute

    def run(self, fused: PlanNode) -> Tuple[DataSet, ExecutionStats]:
        """Execute an already-fused plan; returns (result, statistics)."""
        stats = ExecutionStats()
        governor = ResourceGovernor.from_config(self.config)
        if self.config.morsel_size is not None:
            from repro.engine.vector.morsel import MorselDriver

            driver = MorselDriver(self)
            self._recurse = driver.execute_node
            stats.pipelines = driver.pipeline
        else:
            self._recurse = self._execute
        try:
            batch = self._recurse(fused, stats, governor)
            result = batch.to_dataset()
        finally:
            stats.spill_count = governor.spill_count
            stats.spilled_rows = governor.spilled_rows
            governor.close()
        return result, stats

    # -- dispatch -----------------------------------------------------------

    def _execute(
        self,
        node: PlanNode,
        stats: ExecutionStats,
        governor: ResourceGovernor,
        position: str = "",
    ) -> ColumnBatch:
        """One operator frame: budget check, dispatch, breadcrumb annotation.

        Mirrors the row executor's frame exactly — same breadcrumb format
        (innermost-first, "L"/"R" child positions), same conversion of a
        raw :class:`MemoryError` into the typed
        :class:`~repro.errors.MemoryLimitExceeded`.  Non-Repro kernel
        exceptions that survive the degradation ladder are wrapped in a
        typed :class:`~repro.errors.ExecutionError` so nothing escapes
        bare.
        """
        label = node.label()
        frame = f"{position}:{label}" if position else label
        try:
            governor.check(label)
            result = self._dispatch(node, stats, governor)
            governor.charge_rows(result.length, label)
            return result
        except MemoryError as error:
            converted = MemoryLimitExceeded(f"allocation failed: {error}")
            annotate_operator(converted, frame)
            raise converted from error
        except ReproError as error:
            annotate_operator(error, frame)
            raise
        except Exception as error:
            wrapped = ExecutionError(f"{type(error).__name__}: {error}")
            annotate_operator(wrapped, frame)
            raise wrapped from error

    def _dispatch(
        self, node: PlanNode, stats: ExecutionStats, governor: ResourceGovernor
    ) -> ColumnBatch:
        if isinstance(node, Relation):
            return self._scan(node, stats, governor)
        if isinstance(node, Select):
            return self._select(node, stats, governor)
        if isinstance(node, Project):
            return self._project(node, stats, governor)
        if isinstance(node, Product):
            return self._product(node, stats, governor)
        if isinstance(node, Join):
            return self._join(node, stats, governor)
        if isinstance(node, GroupApply):
            return self._group_apply(node, stats, governor)
        if isinstance(node, Group):
            return self._bare_group(node, stats, governor)
        if isinstance(node, Sort):
            return self._sort(node, stats, governor)
        if isinstance(node, Exchange):
            return self._exchange(node, stats, governor)
        if isinstance(node, Apply):
            raise ExecutionError(
                "Apply without Group beneath it; run fuse_group_apply first"
            )
        raise ExecutionError(f"cannot execute node {type(node).__name__}")

    # -- the kernel guard (degradation ladder) -------------------------------

    def _kernel(
        self,
        label: str,
        stats: ExecutionStats,
        governor: ResourceGovernor,
        compute: _Compute,
        fallback: _Compute,
    ) -> Tuple[ColumnBatch, int]:
        """Run a vector kernel; on failure retry once on the row engine.

        Resource-budget errors (and raw allocation failures) are never
        retried — the row engine shares the same budget and would only
        fail later.  Everything else degrades when ``config.degrade`` is
        on: the failure is recorded in the stats and the operator re-runs
        through ``fallback`` (the row implementation over the same child
        batches).  The fault-injection point lives inside the guard so an
        injected kernel fault exercises exactly this ladder.
        """
        try:
            faults.injection_point("vector", label)
            return compute()
        except (ResourceError, MemoryError):
            raise
        except Exception as error:
            if not self.config.degrade:
                raise
            stats.note_degradation(label, error)
            governor.check(label)  # don't retry past the deadline
            return fallback()

    # -- operators ----------------------------------------------------------

    def _scan(
        self, node: Relation, stats: ExecutionStats, governor: ResourceGovernor
    ) -> ColumnBatch:
        governor.tick(node.label())
        table = self.database.table(node.table_name)
        correlation = node.correlation
        expose = self.config.expose_rowids

        def compute() -> Tuple[ColumnBatch, int]:
            batch = table_to_batch(table, correlation, expose_rowids=expose)
            return batch, batch.length

        def row_path() -> Tuple[ColumnBatch, int]:
            from repro.engine.executor import rowid_column

            columns = [f"{correlation}.{c}" for c in table.column_names()]
            if expose:
                columns.append(rowid_column(correlation))
                rows = [row.values + (row.rowid,) for row in table]
            else:
                rows = [row.values for row in table]
            dataset = DataSet(columns, rows)
            return ColumnBatch.from_dataset(dataset), dataset.cardinality

        batch, work = self._kernel(
            node.label(), stats, governor, compute, row_path
        )
        stats.record(
            id(node),
            NodeStats(node.label(), "scan", (), batch.length, work),
        )
        return batch

    def _select(
        self, node: Select, stats: ExecutionStats, governor: ResourceGovernor
    ) -> ColumnBatch:
        governor.tick(node.label())
        child = self._recurse(node.child, stats, governor)

        def compute() -> Tuple[ColumnBatch, int]:
            return kernels.filter_batch(child, node.condition, self.params)

        def row_path() -> Tuple[ColumnBatch, int]:
            dataset = child.to_dataset()
            scope = ReusableRowScope(dataset.columns)
            out_rows = []
            for row in dataset.rows:
                governor.tick("select")
                if evaluate_predicate(
                    node.condition, scope.bind(row), self.params
                ).is_true():
                    out_rows.append(row)
            filtered = DataSet(
                dataset.columns, out_rows, ordering=dataset.ordering
            )
            return ColumnBatch.from_dataset(filtered), dataset.cardinality

        batch, work = self._kernel(
            node.label(), stats, governor, compute, row_path
        )
        stats.record(
            id(node),
            NodeStats(
                node.label(), "select", (child.length,), batch.length, work
            ),
        )
        return batch

    def _project(
        self, node: Project, stats: ExecutionStats, governor: ResourceGovernor
    ) -> ColumnBatch:
        governor.tick(node.label())
        child = self._recurse(node.child, stats, governor)

        def compute() -> Tuple[ColumnBatch, int]:
            batch = kernels.project_batch(child, node.columns)
            work = child.length
            if node.distinct:
                batch, distinct_work = kernels.distinct_batch(batch)
                work += distinct_work
            return batch, work

        def row_path() -> Tuple[ColumnBatch, int]:
            dataset = child.to_dataset().project(node.columns)
            work = child.length
            if node.distinct:
                dataset, distinct_work = distinct(dataset, governor)
                work += distinct_work
            return ColumnBatch.from_dataset(dataset), work

        batch, work = self._kernel(
            node.label(), stats, governor, compute, row_path
        )
        stats.record(
            id(node),
            NodeStats(
                node.label(), "project", (child.length,), batch.length, work
            ),
        )
        return batch

    def _product(
        self, node: Product, stats: ExecutionStats, governor: ResourceGovernor
    ) -> ColumnBatch:
        governor.tick(node.label())
        left = self._recurse(node.left, stats, governor, "L")
        right = self._recurse(node.right, stats, governor, "R")

        def compute() -> Tuple[ColumnBatch, int]:
            return kernels.cartesian_product_batch(left, right)

        def row_path() -> Tuple[ColumnBatch, int]:
            dataset, work = joins.cartesian_product(
                left.to_dataset(), right.to_dataset(), governor
            )
            return ColumnBatch.from_dataset(dataset), work

        batch, work = self._kernel(
            node.label(), stats, governor, compute, row_path
        )
        stats.record(
            id(node),
            NodeStats(
                node.label(),
                "join",
                (left.length, right.length),
                batch.length,
                work,
            ),
        )
        return batch

    def _join(
        self, node: Join, stats: ExecutionStats, governor: ResourceGovernor
    ) -> ColumnBatch:
        governor.tick(node.label())
        left = self._recurse(node.left, stats, governor, "L")
        right = self._recurse(node.right, stats, governor, "R")
        algorithm = self.config.join_algorithm

        def row_path() -> Tuple[ColumnBatch, int]:
            left_ds, right_ds = left.to_dataset(), right.to_dataset()
            if node.condition is None:
                dataset, work = joins.cartesian_product(
                    left_ds, right_ds, governor
                )
            elif algorithm == "nested_loop":
                dataset, work = joins.nested_loop_join(
                    left_ds, right_ds, node.condition, self.params, governor
                )
            elif algorithm == "sort_merge":
                dataset, work = joins.sort_merge_join(
                    left_ds, right_ds, node.condition, self.params, governor
                )
            else:
                dataset, work = joins.hash_join(
                    left_ds, right_ds, node.condition, self.params, governor
                )
            return ColumnBatch.from_dataset(dataset), work

        def compute() -> Tuple[ColumnBatch, int]:
            if node.condition is None:
                return kernels.cartesian_product_batch(left, right)
            if algorithm == "nested_loop":
                return kernels.nested_loop_join_batch(
                    left, right, node.condition, self.params
                )
            if algorithm == "sort_merge":
                return kernels.sort_merge_join_batch(
                    left, right, node.condition, self.params
                )
            return kernels.hash_join_batch(
                left, right, node.condition, self.params
            )

        if self._join_needs_spill(node, left, right, algorithm, governor):
            batch, work = row_path()  # the row path owns the spill machinery
        else:
            batch, work = self._kernel(
                node.label(), stats, governor, compute, row_path
            )
        stats.record(
            id(node),
            NodeStats(
                node.label(),
                "join",
                (left.length, right.length),
                batch.length,
                work,
            ),
        )
        return batch

    def _join_needs_spill(
        self,
        node: Join,
        left: ColumnBatch,
        right: ColumnBatch,
        algorithm: str,
        governor: ResourceGovernor,
    ) -> bool:
        """Mirror the row engine's spill decision on the same estimates.

        Hash joins check the build side exactly as :func:`joins.hash_join`
        does (raising when over budget with spilling disabled); sort-merge
        delegates whenever a side *might* exceed the budget — the row
        implementation then re-checks on the NULL-filtered inputs, so the
        actual spill/raise behaviour matches the row engine's precisely.
        """
        if governor.memory_limit_bytes is None or node.condition is None:
            return False
        if algorithm == "nested_loop":
            return False
        pairs, __ = joins.extract_equi_keys(node.condition, left, right)
        if not pairs:
            return False  # falls back to nested loop on both backends
        if algorithm == "sort_merge":
            largest = max(
                estimate_table_bytes(left.length, len(left.names)),
                estimate_table_bytes(right.length, len(right.names)),
            )
            return largest > governor.memory_limit_bytes
        return governor.should_spill(
            estimate_table_bytes(right.length, len(right.names)),
            "hash join build",
        )

    def _group_apply(
        self, node: GroupApply, stats: ExecutionStats, governor: ResourceGovernor
    ) -> ColumnBatch:
        governor.tick(node.label())
        child = self._recurse(node.child, stats, governor)
        state_bytes = estimate_table_bytes(child.length, len(child.names))
        if self.config.aggregation == "sort":
            from repro.engine.sorting import is_sorted_on

            presorted = self.config.exploit_orders and is_sorted_on(
                child, node.grouping_columns
            )

            def compute() -> Tuple[ColumnBatch, int]:
                return kernels.grouped_aggregate(
                    child,
                    node.grouping_columns,
                    node.aggregates,
                    self.params,
                    mode="sort",
                    presorted=presorted,
                )

            def row_path() -> Tuple[ColumnBatch, int]:
                dataset, work = sort_group(
                    child.to_dataset(), node.grouping_columns, node.aggregates,
                    self.params, presorted=presorted, governor=governor,
                )
                return ColumnBatch.from_dataset(dataset), work

            needs_spill = not presorted and governor.should_spill(
                state_bytes, "sort group"
            )
        else:

            def compute() -> Tuple[ColumnBatch, int]:
                return kernels.grouped_aggregate(
                    child, node.grouping_columns, node.aggregates, self.params
                )

            def row_path() -> Tuple[ColumnBatch, int]:
                dataset, work = hash_group(
                    child.to_dataset(), node.grouping_columns, node.aggregates,
                    self.params, governor,
                )
                return ColumnBatch.from_dataset(dataset), work

            needs_spill = governor.should_spill(state_bytes, "group by")

        if needs_spill:
            batch, work = row_path()
        else:
            batch, work = self._kernel(
                node.label(), stats, governor, compute, row_path
            )
        stats.record(
            id(node),
            NodeStats(
                node.label(), "groupby", (child.length,), batch.length, work
            ),
        )
        return batch

    def _exchange(
        self, node: Exchange, stats: ExecutionStats, governor: ResourceGovernor
    ) -> ColumnBatch:
        # The Exchange runner is engine-agnostic (it re-enters the public
        # execute() per shard with this config, so shard subplans still run
        # on the vector engine, morsel driver and all); the merged stream
        # comes back as rows and re-enters the batch world here.
        from repro.engine.exchange import run_exchange

        governor.tick(node.label())
        dataset = run_exchange(
            self.database, self.config, self.params, node, stats, governor
        )
        return ColumnBatch.from_dataset(dataset)

    def _sort(
        self, node: Sort, stats: ExecutionStats, governor: ResourceGovernor
    ) -> ColumnBatch:
        governor.tick(node.label())
        child = self._recurse(node.child, stats, governor)
        batch, work = self._sorted(
            node.label(), child, node.columns, node.descending, stats, governor
        )
        stats.record(
            id(node),
            NodeStats(node.label(), "sort", (child.length,), batch.length, work),
        )
        return batch

    def _bare_group(
        self, node: Group, stats: ExecutionStats, governor: ResourceGovernor
    ) -> ColumnBatch:
        governor.tick(node.label())
        # G[GA] alone: grouping realized by sorting, rows unchanged.
        child = self._recurse(node.child, stats, governor)
        batch, work = self._sorted(
            node.label(), child, node.grouping_columns, None, stats, governor
        )
        stats.record(
            id(node),
            NodeStats(
                node.label(), "groupby", (child.length,), batch.length, work
            ),
        )
        return batch

    def _sorted(
        self,
        label: str,
        child: ColumnBatch,
        columns,
        descending,
        stats: ExecutionStats,
        governor: ResourceGovernor,
    ) -> Tuple[ColumnBatch, int]:
        def compute() -> Tuple[ColumnBatch, int]:
            return kernels.sort_batch(child, columns, descending)

        def row_path() -> Tuple[ColumnBatch, int]:
            dataset, work = sort_dataset(
                child.to_dataset(), columns, descending, governor
            )
            return ColumnBatch.from_dataset(dataset), work

        if governor.should_spill(
            estimate_table_bytes(child.length, len(child.names)), "sort"
        ):
            return row_path()
        return self._kernel(label, stats, governor, compute, row_path)
