"""The vectorized plan executor: same plans, same stats, columnar inner loops.

:class:`VectorExecutor` walks the identical fused :class:`PlanNode` tree the
row executor walks, records :class:`NodeStats` under the same node ids with
the same work formulas, and returns the same result type (a
:class:`~repro.engine.dataset.DataSet`, materialized from the root batch) —
only the per-operator inner loops differ.  That contract is what keeps the
§7 cost study backend-independent, and the differential harness
(:mod:`repro.engine.vector.differential`) holds it to account.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from repro.algebra.ops import (
    Apply,
    Group,
    GroupApply,
    Join,
    PlanNode,
    Product,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.catalog.catalog import Database
from repro.engine.dataset import DataSet
from repro.engine.stats import ExecutionStats, NodeStats
from repro.engine.vector import kernels
from repro.engine.vector.batch import ColumnBatch
from repro.errors import ExecutionError
from repro.sqltypes.values import SqlValue
from repro.storage.columnar import table_to_batch


class VectorExecutor:
    """Executes fused logical plans against columnar batches.

    Constructed by :class:`repro.engine.executor.Executor` when
    ``config.engine == "vector"``; not normally instantiated directly.
    ``config`` is the shared :class:`ExecutorConfig` (join algorithm,
    aggregation strategy, RowID exposure, order exploitation).
    """

    def __init__(
        self,
        database: Database,
        config,
        params: Optional[Mapping[str, SqlValue]] = None,
    ) -> None:
        self.database = database
        self.config = config
        self.params = params

    def run(self, fused: PlanNode) -> Tuple[DataSet, ExecutionStats]:
        """Execute an already-fused plan; returns (result, statistics)."""
        stats = ExecutionStats()
        batch = self._execute(fused, stats)
        return batch.to_dataset(), stats

    # -- dispatch -----------------------------------------------------------

    def _execute(self, node: PlanNode, stats: ExecutionStats) -> ColumnBatch:
        if isinstance(node, Relation):
            return self._scan(node, stats)
        if isinstance(node, Select):
            return self._select(node, stats)
        if isinstance(node, Project):
            return self._project(node, stats)
        if isinstance(node, Product):
            return self._product(node, stats)
        if isinstance(node, Join):
            return self._join(node, stats)
        if isinstance(node, GroupApply):
            return self._group_apply(node, stats)
        if isinstance(node, Group):
            return self._bare_group(node, stats)
        if isinstance(node, Sort):
            return self._sort(node, stats)
        if isinstance(node, Apply):
            raise ExecutionError(
                "Apply without Group beneath it; run fuse_group_apply first"
            )
        raise ExecutionError(f"cannot execute node {type(node).__name__}")

    # -- operators ----------------------------------------------------------

    def _scan(self, node: Relation, stats: ExecutionStats) -> ColumnBatch:
        table = self.database.table(node.table_name)
        batch = table_to_batch(
            table, node.correlation, expose_rowids=self.config.expose_rowids
        )
        stats.record(
            id(node),
            NodeStats(node.label(), "scan", (), batch.length, batch.length),
        )
        return batch

    def _select(self, node: Select, stats: ExecutionStats) -> ColumnBatch:
        child = self._execute(node.child, stats)
        batch, work = kernels.filter_batch(child, node.condition, self.params)
        stats.record(
            id(node),
            NodeStats(
                node.label(), "select", (child.length,), batch.length, work
            ),
        )
        return batch

    def _project(self, node: Project, stats: ExecutionStats) -> ColumnBatch:
        child = self._execute(node.child, stats)
        batch = kernels.project_batch(child, node.columns)
        work = child.length
        if node.distinct:
            batch, distinct_work = kernels.distinct_batch(batch)
            work += distinct_work
        stats.record(
            id(node),
            NodeStats(
                node.label(), "project", (child.length,), batch.length, work
            ),
        )
        return batch

    def _product(self, node: Product, stats: ExecutionStats) -> ColumnBatch:
        left = self._execute(node.left, stats)
        right = self._execute(node.right, stats)
        batch, work = kernels.cartesian_product_batch(left, right)
        stats.record(
            id(node),
            NodeStats(
                node.label(),
                "join",
                (left.length, right.length),
                batch.length,
                work,
            ),
        )
        return batch

    def _join(self, node: Join, stats: ExecutionStats) -> ColumnBatch:
        left = self._execute(node.left, stats)
        right = self._execute(node.right, stats)
        algorithm = self.config.join_algorithm
        if node.condition is None:
            batch, work = kernels.cartesian_product_batch(left, right)
        elif algorithm == "nested_loop":
            batch, work = kernels.nested_loop_join_batch(
                left, right, node.condition, self.params
            )
        elif algorithm == "sort_merge":
            batch, work = kernels.sort_merge_join_batch(
                left, right, node.condition, self.params
            )
        else:  # "hash" and "auto": the kernel falls back to NL itself
            batch, work = kernels.hash_join_batch(
                left, right, node.condition, self.params
            )
        stats.record(
            id(node),
            NodeStats(
                node.label(),
                "join",
                (left.length, right.length),
                batch.length,
                work,
            ),
        )
        return batch

    def _group_apply(self, node: GroupApply, stats: ExecutionStats) -> ColumnBatch:
        child = self._execute(node.child, stats)
        if self.config.aggregation == "sort":
            from repro.engine.sorting import is_sorted_on

            presorted = self.config.exploit_orders and is_sorted_on(
                child, node.grouping_columns
            )
            batch, work = kernels.grouped_aggregate(
                child,
                node.grouping_columns,
                node.aggregates,
                self.params,
                mode="sort",
                presorted=presorted,
            )
        else:
            batch, work = kernels.grouped_aggregate(
                child, node.grouping_columns, node.aggregates, self.params
            )
        stats.record(
            id(node),
            NodeStats(
                node.label(), "groupby", (child.length,), batch.length, work
            ),
        )
        return batch

    def _sort(self, node: Sort, stats: ExecutionStats) -> ColumnBatch:
        child = self._execute(node.child, stats)
        batch, work = kernels.sort_batch(child, node.columns, node.descending)
        stats.record(
            id(node),
            NodeStats(node.label(), "sort", (child.length,), batch.length, work),
        )
        return batch

    def _bare_group(self, node: Group, stats: ExecutionStats) -> ColumnBatch:
        # G[GA] alone: grouping realized by sorting, rows unchanged.
        child = self._execute(node.child, stats)
        batch, work = kernels.sort_batch(child, node.grouping_columns)
        stats.record(
            id(node),
            NodeStats(
                node.label(), "groupby", (child.length,), batch.length, work
            ),
        )
        return batch
