"""Columnar batches: the unit of data flow in the vector backend.

A :class:`ColumnBatch` stores a relation column-major: ``names`` carry the
same qualified spellings a :class:`~repro.engine.dataset.DataSet` uses, and
``columns`` holds one value sequence per name.  Column slicing
(:meth:`select_columns`) is zero-copy — the new batch shares the column
sequences — and row selection (:meth:`take`) gathers through a selection
vector.

NULL is represented in-band by the :data:`~repro.sqltypes.values.NULL`
singleton, exactly as in row tuples; the *validity mask* of a column
(:meth:`validity`) and the cached per-column type census
(:meth:`column_kinds`) let kernels decide **per batch** whether the
null-aware slow path is needed at all — the "where does 3VL actually
matter" observation applied to execution.

``ordering`` is the same physical property a DataSet carries: the columns
the rows are known to be sorted on (ascending, NULLS FIRST).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import BindingError
from repro.sqltypes.values import NULL, SqlValue, _Null

try:  # numpy accelerates index math (selection vectors, sorts, group folds);
    import numpy as _np  # the engine stays fully functional without it.
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None


class _Repeat:
    """A constant value broadcast to ``n`` elements without materializing.

    Supports just enough of the sequence protocol (len / iter / indexing)
    for the compiled kernels, which only ever zip or subscript columns.
    """

    __slots__ = ("value", "n")

    def __init__(self, value: SqlValue, n: int) -> None:
        self.value = value
        self.n = n

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[SqlValue]:
        value = self.value
        for __ in range(self.n):
            yield value

    def __getitem__(self, index: int) -> SqlValue:
        if isinstance(index, slice):
            return [self.value] * len(range(*index.indices(self.n)))
        if not -self.n <= index < self.n:
            raise IndexError(index)
        return self.value


class _Gather:
    """A lazy gather: ``source[sel[i]]`` materialized only on demand.

    Row selection (:meth:`ColumnBatch.take`, join pairing) produces one
    ``_Gather`` per column instead of copying every value — *late
    materialization*: downstream operators touch only the columns they
    actually read, and numeric columns can be gathered at C speed through
    their array views (:meth:`ColumnBatch.as_array`) without ever building
    the Python list.
    """

    __slots__ = ("source", "sel", "source_array", "_sel_array", "_data")

    def __init__(self, source: Sequence[SqlValue], sel, source_array=None) -> None:
        self.source = source
        self.sel = sel  # List[int] or numpy index array
        self.source_array = source_array  # numpy view of source, if known
        self._sel_array = None
        self._data: Optional[List[SqlValue]] = None

    def materialize(self) -> List[SqlValue]:
        data = self._data
        if data is None:
            arr = self.source_array
            sel = self.sel
            if arr is not None and _np is not None:
                if isinstance(sel, range) and sel.step == 1:
                    data = arr[sel.start : sel.stop].tolist()
                else:
                    data = arr[self.sel_array()].tolist()
            else:
                source = self.source
                data = [source[i] for i in sel]
            self._data = data
        return data

    def sel_array(self):
        """The selection vector as a numpy index array (cached)."""
        sel = self._sel_array
        if sel is None and _np is not None:
            sel = self.sel if isinstance(self.sel, _np.ndarray) else _np.asarray(
                self.sel, dtype=_np.intp
            )
            self._sel_array = sel
        return sel

    def __len__(self) -> int:
        return len(self.sel)

    def __iter__(self) -> Iterator[SqlValue]:
        return iter(self.materialize())

    def __getitem__(self, index):
        if self._data is not None:
            return self._data[index]
        if isinstance(index, slice):
            # Materialize only the requested window, not the whole column.
            source = self.source
            return [source[i] for i in self.sel[index]]
        return self.source[self.sel[index]]

    def slice_view(self, start: int, stop: int) -> "_Gather":
        """A lazy sub-gather of rows [start, stop) sharing the source.

        The narrowed selection is a view wherever the representation
        allows one (numpy index arrays, ranges); no source values are
        touched until the sub-gather is itself read.
        """
        if self._data is not None:
            return _Gather(self._data, range(start, stop), None)
        return _Gather(self.source, self.sel[start:stop], self.source_array)


#: A column is any indexable sequence of SQL values (list, tuple, _Repeat,
#: or a lazy _Gather view).
Column = Sequence[SqlValue]

_MISSING = object()


def _sequence_array(sequence: Sequence[SqlValue]):
    """Convert a homogeneous numeric value sequence to a numpy array.

    Returns ``None`` unless every element is exactly ``int`` (→ int64) or
    exactly ``float`` (→ float64) — ``bool`` is a distinct kind, and NULL
    or strings disqualify the column.  Conversion failures (e.g. ints
    beyond int64) also return ``None``; callers must fall back.
    """
    if _np is None:
        return None
    kinds = frozenset(map(type, sequence))
    if kinds == {int}:
        dtype = _np.int64
    elif kinds == {float}:
        dtype = _np.float64
    else:
        return None
    try:
        return _np.asarray(
            sequence if isinstance(sequence, list) else list(sequence), dtype=dtype
        )
    except (OverflowError, ValueError, TypeError):
        return None


class ColumnBatch:
    """A bag of rows stored column-major under a fixed column layout."""

    __slots__ = (
        "names", "columns", "length", "ordering", "_index", "_kinds", "_arrays"
    )

    def __init__(
        self,
        names: Sequence[str],
        columns: Iterable[Column],
        length: Optional[int] = None,
        ordering: Sequence[str] = (),
    ) -> None:
        self.names: Tuple[str, ...] = tuple(names)
        self.columns: List[Column] = list(columns)
        if len(self.columns) != len(self.names):
            raise ValueError(
                f"{len(self.names)} names but {len(self.columns)} columns"
            )
        if length is None:
            length = len(self.columns[0]) if self.columns else 0
        self.length = length
        self.ordering: Tuple[str, ...] = tuple(ordering)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self.names)}
        self._kinds: Dict[int, frozenset] = {}
        self._arrays: Dict[int, object] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        names: Sequence[str],
        rows: Sequence[Tuple[SqlValue, ...]],
        ordering: Sequence[str] = (),
    ) -> "ColumnBatch":
        """Transpose row tuples into columns."""
        names = tuple(names)
        if rows:
            columns: List[Column] = [list(column) for column in zip(*rows)]
        else:
            columns = [[] for __ in names]
        return cls(names, columns, length=len(rows), ordering=ordering)

    @classmethod
    def from_dataset(cls, dataset) -> "ColumnBatch":
        """Adapt a row-major :class:`~repro.engine.dataset.DataSet`."""
        return cls.from_rows(dataset.columns, dataset.rows, dataset.ordering)

    def to_dataset(self):
        """Materialize as a row-major DataSet (the executor's result type)."""
        from repro.engine.dataset import DataSet

        if self.columns:
            rows: Iterable[Tuple[SqlValue, ...]] = zip(*self.columns)
        else:
            rows = [()] * self.length
        return DataSet(self.names, rows, ordering=self.ordering)

    # -- shape ---------------------------------------------------------------

    @property
    def cardinality(self) -> int:
        return self.length

    def __len__(self) -> int:
        return self.length

    def iter_rows(self) -> Iterator[Tuple[SqlValue, ...]]:
        if self.columns:
            return iter(zip(*self.columns))
        return iter([()] * self.length)

    # -- column resolution (same rules as DataSet.index_of) -----------------

    def index_of(self, column: str) -> int:
        """Resolve a column name; bare names match a unique qualified one."""
        if column in self._index:
            return self._index[column]
        matches = [
            i
            for name, i in self._index.items()
            if name.rsplit(".", 1)[-1] == column
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise BindingError(f"dataset has no column {column!r}: {self.names}")
        raise BindingError(f"ambiguous column {column!r} in {self.names}")

    def indexes_of(self, columns: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.index_of(column) for column in columns)

    # -- per-column facts ----------------------------------------------------

    def column_kinds(self, index: int) -> frozenset:
        """The set of Python types present in column ``index`` (cached).

        One C-speed pass over the column buys every kernel the per-batch
        decision "can I use raw tuples here, or do NULL/BOOLEAN need the
        ``=ⁿ``-aware slow path?".
        """
        kinds = self._kinds.get(index)
        if kinds is None:
            column = self.columns[index]
            if isinstance(column, _Gather) and column._data is None:
                # Unmaterialized gather: census the (possibly larger) source
                # instead — a conservative superset.  Kernels only rely on
                # *absence* of NULL/BOOLEAN, which the superset preserves.
                kinds = frozenset(map(type, column.source))
            else:
                kinds = frozenset(map(type, column))
            self._kinds[index] = kinds
        return kinds

    def has_nulls(self, index: int) -> bool:
        return _Null in self.column_kinds(index)

    def validity(self, index: int) -> List[bool]:
        """The validity mask of a column: True where the value is non-NULL."""
        if not self.has_nulls(index):
            return [True] * self.length
        return [value is not NULL for value in self.columns[index]]

    def as_array(self, index: int):
        """A numpy view of column ``index``, or ``None`` if not expressible.

        Only *homogeneous* null-free numeric columns get arrays (exactly
        ``{int}`` → int64, ``{float}`` → float64): mixing kinds, BOOLEAN,
        or NULL would change value identity under a dtype cast, so those
        columns stay Python-only.  Computed once per batch and cached;
        gather columns reuse their source's array and gather at C speed.
        """
        if _np is None:
            return None
        cached = self._arrays.get(index, _MISSING)
        if cached is not _MISSING:
            return cached
        column = self.columns[index]
        array = None
        if isinstance(column, _Gather) and column._data is None:
            base = column.source_array
            if base is None:
                base = _sequence_array(column.source)
                column.source_array = base
            if base is not None:
                sel = column.sel
                if isinstance(sel, range) and sel.step == 1:
                    # Contiguous selection: a genuine numpy *view* sharing
                    # the source's buffer — the zero-copy morsel path.
                    array = base[sel.start : sel.stop]
                else:
                    array = base[column.sel_array()]
        else:
            array = _sequence_array(column)
        self._arrays[index] = array
        return array

    def cached_array(self, index: int):
        """The already-computed array view of a column, or ``None``.

        Unlike :meth:`as_array` this never triggers a conversion — it is
        for handing an existing view to a derived :class:`_Gather` without
        forcing work for columns nobody may read.
        """
        return self._arrays.get(index)

    def plain_keys_on(self, indexes: Sequence[int]) -> bool:
        """Can raw value tuples serve as ``=ⁿ`` group keys on these columns?

        True when no column contains NULL (which must collide with NULL)
        or BOOLEAN (which must stay distinct from 0/1, per
        :func:`~repro.sqltypes.values.group_key`).
        """
        return not any(
            _Null in self.column_kinds(i) or bool in self.column_kinds(i)
            for i in indexes
        )

    # -- slicing -------------------------------------------------------------

    def select_columns(
        self,
        indexes: Sequence[int],
        names: Optional[Sequence[str]] = None,
        ordering: Sequence[str] = (),
    ) -> "ColumnBatch":
        """Zero-copy column projection: the new batch shares column data."""
        return ColumnBatch(
            tuple(names) if names is not None else tuple(self.names[i] for i in indexes),
            [self.columns[i] for i in indexes],
            length=self.length,
            ordering=ordering,
        )

    def take(
        self, selection: Sequence[int], ordering: Sequence[str] = ()
    ) -> "ColumnBatch":
        """Gather the rows named by a selection vector (in order).

        The gather is *lazy*: each output column is a :class:`_Gather`
        view over its source, materialized only if something reads it.
        """
        batch = ColumnBatch(
            self.names,
            [
                _Gather(column, selection, self._arrays.get(i))
                for i, column in enumerate(self.columns)
            ],
            length=len(selection),
            ordering=ordering,
        )
        return batch

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        """A lazy morsel view of rows [start, stop) — no value copying.

        Plain columns are wrapped in a contiguous-range :class:`_Gather`
        that reuses this batch's cached numpy arrays (whose slices are
        real views over the same base buffer); unmaterialized gathers
        narrow their selection vector; broadcasts narrow their length.
        This is how the streaming executor carves morsels out of cached
        scans without invalidating the column-store cache or copying it.
        A contiguous slice of sorted rows stays sorted, so the ordering
        annotation survives.
        """
        start = max(0, min(start, self.length))
        stop = max(start, min(stop, self.length))
        columns: List[Column] = []
        for i, column in enumerate(self.columns):
            if isinstance(column, _Repeat):
                columns.append(_Repeat(column.value, stop - start))
            elif isinstance(column, _Gather):
                columns.append(column.slice_view(start, stop))
            else:
                cached = self._arrays.get(i, _MISSING)
                if cached is None:
                    # Known non-numeric: a pointer slice beats a lazy view
                    # that would re-attempt the array conversion per morsel.
                    columns.append(column[start:stop])
                else:
                    columns.append(
                        _Gather(
                            column,
                            range(start, stop),
                            None if cached is _MISSING else cached,
                        )
                    )
        return ColumnBatch(
            self.names, columns, length=stop - start, ordering=self.ordering
        )

    def with_ordering(self, ordering: Sequence[str]) -> "ColumnBatch":
        """The same data under a different known-order annotation."""
        batch = ColumnBatch(
            self.names, self.columns, length=self.length, ordering=ordering
        )
        batch._kinds = self._kinds  # same columns, same census
        batch._arrays = self._arrays
        return batch

    def __repr__(self) -> str:
        return f"ColumnBatch({self.names}, {self.length} rows)"
