"""The benchmark trajectory: row vs. vector wall time on the bench scenarios.

Runs the repository's ``test_bench_*`` scenario shapes (Figure 1, Figure 8,
pipelined aggregation, the star schema, the crossover two-table sweep)
through **both** execution backends, timing each and checking ``=ⁿ`` result
equality and :class:`ExecutionStats` parity as it goes, then writes the
machine-readable ``BENCH_vector.json`` at the repository root — the first
point of the perf trajectory the ROADMAP's "as fast as the hardware
allows" north star needs.

Entry points: ``repro bench`` (CLI), ``python benchmarks/runner.py``
(wrapper), or :func:`run_bench` from Python.  ``--quick`` shrinks the data
and additionally runs the full differential-equivalence harness — the CI
smoke mode, failing on any backend divergence.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algebra.ops import (
    AggregateSpec,
    Apply,
    Group,
    GroupApply,
    Join,
    PlanNode,
    Relation,
    Sort,
)
from repro.catalog import Column, Database, PrimaryKeyConstraint, TableSchema
from repro.engine.executor import ExecutorConfig, execute
from repro.engine.stats import ExecutionStats
from repro.engine.vector.differential import (
    failures,
    render_results,
    run_differential,
    stats_signature,
)
from repro.expressions.builder import col, count, eq, max_, min_, sum_
from repro.sqltypes import INTEGER, VARCHAR
from repro.workloads.generators import (
    TwoTableSpec,
    make_two_table,
    populate_employee_department,
    populate_example4,
    populate_retail,
)
from repro.workloads.schemas import make_employee_department, make_retail_star


@dataclass
class Scenario:
    """One timed workload: a database, a plan, and an executor config."""

    name: str
    rows: int  # driving-table cardinality, for the report
    build: Callable[[], Database]
    plan: Callable[[], PlanNode]  # fresh tree per run (node ids key stats)
    config: ExecutorConfig = ExecutorConfig()


def _fact_table_db(n_fact: int, n_dim: int = 60, seed: int = 5) -> Database:
    import random

    database = Database("bench_fact")
    database.create_table(
        TableSchema(
            "F",
            [Column("id", INTEGER), Column("k", INTEGER), Column("v", INTEGER)],
            [PrimaryKeyConstraint(["id"])],
        )
    )
    database.create_table(
        TableSchema(
            "D",
            [Column("k", INTEGER), Column("name", VARCHAR(10))],
            [PrimaryKeyConstraint(["k"])],
        )
    )
    rng = random.Random(seed)
    for i in range(1, n_fact + 1):
        database.insert("F", [i, rng.randint(1, n_dim), rng.randint(1, 100)])
    for k in range(1, n_dim + 1):
        database.insert("D", [k, f"d{k}"])
    return database


def _pipelined_plan() -> PlanNode:
    # test_bench_pipelined_aggregation's shape: sort feeds a grouped
    # aggregation that (with exploit_orders) pipelines over the scan.
    return Apply(
        Group(Sort(Relation("F", "F"), ["F.k"]), ["F.k"]),
        [AggregateSpec("s", sum_("F.v"))],
    )


def _star_db(n_sales: int) -> Database:
    db = make_retail_star()
    populate_retail(
        db, n_sales=n_sales, n_customers=500, n_products=60, n_stores=12, seed=3
    )
    return db


def _star_plan() -> PlanNode:
    # test_bench_star_schema's per-customer report, standard shape:
    # join the fact table to Customer, then group on the customer key.
    joined = Join(
        Relation("Sales", "S"),
        Relation("Customer", "C"),
        eq(col("S.CustID"), col("C.CustID")),
    )
    return GroupApply(
        joined,
        ["C.CustID", "C.Name"],
        [AggregateSpec("total", sum_("S.Amount"))],
    )


def _figure1_db(n_employees: int) -> Database:
    db = make_employee_department()
    populate_employee_department(db, n_employees=n_employees, n_departments=100, seed=0)
    return db


def _figure1_plan() -> PlanNode:
    # Figure 1 Plan 1 (standard): group-by after the join.
    joined = Join(
        Relation("Employee", "E"),
        Relation("Department", "D"),
        eq(col("E.DeptID"), col("D.DeptID")),
    )
    return GroupApply(
        joined,
        ["D.DeptID", "D.Name"],
        [AggregateSpec("cnt", count("E.EmpID"))],
    )


def _figure8_plan() -> PlanNode:
    joined = Join(
        Relation("A", "A"), Relation("B", "B"), eq(col("A.BRef"), col("B.BId"))
    )
    return GroupApply(joined, ["A.GKey"], [AggregateSpec("s", sum_("A.Val"))])


def scenarios(quick: bool) -> List[Scenario]:
    n_pipe = 4000 if quick else 100_000
    n_star = 4000 if quick else 100_000
    n_fig1 = 2000 if quick else 10_000
    n_fig8 = 2000 if quick else 10_000
    n_cross = 2000 if quick else 20_000
    return [
        Scenario(
            "pipelined_aggregation",
            n_pipe,
            lambda: _fact_table_db(n_pipe),
            _pipelined_plan,
            ExecutorConfig(aggregation="sort", exploit_orders=True),
        ),
        Scenario("star_schema", n_star, lambda: _star_db(n_star), _star_plan),
        Scenario(
            "figure1_example1", n_fig1, lambda: _figure1_db(n_fig1), _figure1_plan
        ),
        Scenario(
            "figure8_example4",
            n_fig8,
            lambda: populate_example4(
                n_a=n_fig8, n_b=100, a_groups=max(10, int(n_fig8 * 0.9)),
                match_rows=50, seed=4,
            ),
            _figure8_plan,
        ),
        Scenario(
            "crossover_two_table",
            n_cross,
            lambda: make_two_table(
                TwoTableSpec(n_a=n_cross, n_b=100, a_groups=100, seed=9)
            ),
            _figure8_plan,
        ),
    ]


def _time_engine(
    db: Database,
    plan_factory: Callable[[], PlanNode],
    config: ExecutorConfig,
    repeat: int,
) -> Tuple[float, object, ExecutionStats]:
    """Best-of-``repeat`` wall time; returns (seconds, result, stats)."""
    best = float("inf")
    result = stats = None
    for __ in range(repeat):
        plan = plan_factory()
        start = time.perf_counter()
        result, stats = execute(db, plan, config)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result, stats


def _engine_report(seconds: float, stats: ExecutionStats) -> Dict:
    return {
        "wall_s": round(seconds, 6),
        "total_work": stats.total_work(),
        "groupby_input_rows": stats.groupby_input_rows(),
        "join_input_sizes": stats.join_input_sizes(),
        "spills": stats.spill_count,
        "spilled_rows": stats.spilled_rows,
    }


def run_bench(
    quick: bool = False,
    repeat: int = 2,
    memory_limit_bytes: Optional[int] = None,
    morsel_size: Optional[int] = 32768,
    workers: int = 1,
) -> Dict:
    """Time every scenario in both engines; returns the full report dict.

    ``memory_limit_bytes`` runs every scenario under that working-set
    budget — blocking operators spill to disk, and the equality checks
    then cover the external paths (the resilience smoke the CI bench job
    exercises).  ``morsel_size`` / ``workers`` shape the vector engine's
    streaming pipelines for every scenario.
    """
    report: Dict = {
        "benchmark": "row-vs-vector backend",
        "quick": quick,
        "repeat": repeat,
        "memory_limit_bytes": memory_limit_bytes,
        "morsel_size": morsel_size,
        "workers": workers,
        "scenarios": [],
    }
    for scenario in scenarios(quick):
        db = scenario.build()
        base = replace(
            scenario.config,
            memory_limit_bytes=memory_limit_bytes,
            morsel_size=morsel_size,
            workers=workers,
        )
        row_s, row_result, row_stats = _time_engine(
            db, scenario.plan, replace(base, engine="row"), repeat
        )
        vec_s, vec_result, vec_stats = _time_engine(
            db, scenario.plan, replace(base, engine="vector"), repeat
        )
        entry = {
            "scenario": scenario.name,
            "rows": scenario.rows,
            "config": {
                "join_algorithm": scenario.config.join_algorithm,
                "aggregation": scenario.config.aggregation,
                "exploit_orders": scenario.config.exploit_orders,
            },
            "row": _engine_report(row_s, row_stats),
            "vector": _engine_report(vec_s, vec_stats),
            "speedup": round(row_s / vec_s, 2) if vec_s > 0 else None,
            "results_match": row_result.equals_multiset(vec_result),
            "stats_match": stats_signature(row_stats) == stats_signature(vec_stats),
        }
        report["scenarios"].append(entry)
    return report


#: Morsel sizes the sweep benchmarks (small, default-ish, large).
MORSEL_SWEEP_SIZES: Tuple[int, ...] = (1024, 4096, 32768)


def _star_minmax_plan() -> PlanNode:
    # The star-schema report with order-insensitive per-row folds (MIN and
    # MAX bypass the integer bincount shortcut), so the sweep times both
    # the vectorized and the per-row aggregation paths.
    joined = Join(
        Relation("Sales", "S"),
        Relation("Customer", "C"),
        eq(col("S.CustID"), col("C.CustID")),
    )
    return GroupApply(
        joined,
        ["C.CustID", "C.Name"],
        [
            AggregateSpec("total", sum_("S.Amount")),
            AggregateSpec("lo", min_("S.Amount")),
            AggregateSpec("hi", max_("S.Amount")),
        ],
    )


def run_morsel_bench(
    quick: bool = False, repeat: int = 2, workers: int = 2
) -> Dict:
    """The morsel sweep: the star schema, streamed at three morsel sizes,
    serial and parallel, against the materialize-per-operator baseline.

    Two claims under test.  Memory: the streamed pipeline's peak tracked
    in-flight bytes scale with the morsel size, not the table (the
    baseline materializes whole operator outputs).  Wall clock: with at
    least two real cores, the multi-core dispatch beats the serial
    streamed run at the full 100k-row size — ``cpu_count`` is recorded so
    single-core environments can gate that expectation honestly (forked
    workers timesharing one core are pure overhead).
    """
    import os

    n_rows = 4000 if quick else 100_000
    db = _star_db(n_rows)
    report: Dict = {
        "benchmark": "morsel-driven streaming sweep",
        "scenario": "star_schema_minmax",
        "quick": quick,
        "rows": n_rows,
        "repeat": repeat,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "runs": [],
    }

    def timed(config: ExecutorConfig):
        return _time_engine(db, _star_minmax_plan, config, repeat)

    base_s, base_result, base_stats = timed(
        ExecutorConfig(engine="vector", morsel_size=None)
    )
    base_signature = stats_signature(base_stats)
    report["runs"].append(
        {
            "mode": "materialized",
            "morsel_size": None,
            "workers": 1,
            "wall_s": round(base_s, 6),
            "pipelines": None,
        }
    )

    def entry(mode: str, morsel_size: int, n_workers: int) -> Dict:
        seconds, result, stats = timed(
            ExecutorConfig(
                engine="vector", morsel_size=morsel_size, workers=n_workers
            )
        )
        p = stats.pipelines
        return {
            "mode": mode,
            "morsel_size": morsel_size,
            "workers": n_workers,
            "wall_s": round(seconds, 6),
            "pipelines": {
                "segments": p.segments,
                "morsels": p.morsels,
                "max_inflight_bytes": p.max_inflight_bytes,
            },
            "results_match": result.equals_multiset(base_result),
            "stats_match": stats_signature(stats) == base_signature,
        }

    for morsel_size in MORSEL_SWEEP_SIZES:
        report["runs"].append(entry("serial", morsel_size, 1))
        report["runs"].append(entry("parallel", morsel_size, workers))

    streamed = [r for r in report["runs"] if r["pipelines"] is not None]
    by_size = sorted(
        (r for r in streamed if r["mode"] == "serial"),
        key=lambda r: r["morsel_size"],
    )
    # Non-decreasing, not strict: a morsel size at or above the table's
    # cardinality collapses to a single materialized morsel, tying the peak.
    report["inflight_scales_with_morsel"] = all(
        a["pipelines"]["max_inflight_bytes"]
        <= b["pipelines"]["max_inflight_bytes"]
        for a, b in zip(by_size, by_size[1:])
    )
    serial = {r["morsel_size"]: r["wall_s"] for r in streamed if r["mode"] == "serial"}
    parallel = {
        r["morsel_size"]: r["wall_s"] for r in streamed if r["mode"] == "parallel"
    }
    report["parallel_speedups"] = {
        str(size): round(serial[size] / parallel[size], 3)
        for size in serial
        if parallel.get(size)
    }
    report["all_equal"] = all(
        r.get("results_match", True) and r.get("stats_match", True)
        for r in report["runs"]
    )
    return report


#: Group counts the §7 distributed sweep measures: two-phase shipping wins
#: exactly while groups ≪ rows, so the sweep brackets the crossover.
DISTRIBUTED_GROUPS: Tuple[int, ...] = (10, 100, 1000)


def _section7_query():
    """The §7 two-table shape: SUM(A.Val) per A.GKey across A ⋈ B."""
    from repro.core.query_class import GroupByJoinQuery
    from repro.fd.derivation import TableBinding

    return GroupByJoinQuery(
        r1=[TableBinding("A", "A")],
        r2=[TableBinding("B", "B")],
        where=eq(col("A.BRef"), col("B.BId")),
        ga1=["A.GKey"],
        ga2=[],
        aggregates=[AggregateSpec("s", sum_("A.Val"))],
    )


def run_distributed_bench(
    quick: bool = False, repeat: int = 2, shards: int = 2,
    transport: str = "memory",
) -> Dict:
    """Section 7 measured on the wire: shipped rows/bytes, eager vs ship-all.

    For each group count, table ``A`` (n_a rows, hash-partitioned on the
    join column) runs through the Exchange operator two ways: the standard
    plan — whose only distributable region is the bare ``A`` scan, so the
    whole partition crosses the wire — and the eager plan, where the
    below-join group-by runs under the Exchange and each shard ships one
    partial row per group.  The wire meter records the *actual* pickled
    bytes, not an estimate; the report asserts the paper's claim in
    measured form (eager ships ≈ groups rows against the standard plan's
    n_a) and that the communication-aware planner picked the two-phase
    strategy on its own (the ``shard_exchange`` certificate's recorded
    strategy).  Every sharded run must be bit-identical to its unsharded
    counterpart on the same engine.

    ``transport="socket"`` runs the sharded side over the real shard RPC
    (one OS process per shard); the report then carries socket wall-clock
    plus the RPC retry/timeout/failover counters and framed wire bytes
    from :class:`~repro.engine.stats.ExchangeStats`.
    """
    from repro.core.transform import build_eager_plan, build_standard_plan
    from repro.engine.executor import Executor
    from repro.optimizer.cardinality import CardinalityEstimator
    from repro.optimizer.cost import CostModel, NetworkWeights
    from repro.optimizer.distribute import distribution_certificate
    from repro.storage.partition import PartitionSpec

    n_a = 1000 if quick else 5000
    n_b = 50
    report: Dict = {
        "benchmark": "shard-parallel distributed exchange",
        "quick": quick,
        "repeat": repeat,
        "shards": shards,
        "transport": transport,
        "n_a": n_a,
        "n_b": n_b,
        "sweep": [],
    }

    def timed(db, plan_factory, config):
        best = float("inf")
        result = stats = executed = None
        for __ in range(repeat):
            executor = Executor(db, config, None)
            plan = plan_factory()
            start = time.perf_counter()
            result, stats = executor.run(plan)
            best = min(best, time.perf_counter() - start)
            executed = executor.executed_plan
        return best, result, stats, executed

    def certificate_of(executed_plan) -> Dict[str, str]:
        certificate = distribution_certificate(executed_plan)
        if certificate is None:
            return {}
        return dict(certificate.premises)

    def rpc_of(stats) -> Dict[str, int]:
        """Summed RPC counters over the run's Exchange deliveries."""
        return {
            "retries": sum(e.rpc_retries for e in stats.exchanges),
            "timeouts": sum(e.rpc_timeouts for e in stats.exchanges),
            "failovers": sum(e.rpc_failovers for e in stats.exchanges),
            "wire_bytes": sum(e.wire_bytes for e in stats.exchanges),
        }

    for groups in DISTRIBUTED_GROUPS:
        db = make_two_table(
            TwoTableSpec(
                n_a=n_a, n_b=n_b, a_groups=groups,
                bref_mode="correlated", seed=groups,
            )
        )
        db.set_partitioning("A", PartitionSpec("hash", "BRef", shards))
        query = _section7_query()

        def standard_factory(q=query):
            return build_standard_plan(q)

        def eager_factory(q=query):
            return build_eager_plan(q)

        sharded = ExecutorConfig(shards=shards, transport=transport)
        single = ExecutorConfig()

        std_s, std_result, std_stats, std_plan = timed(
            db, standard_factory, replace(sharded, engine="row")
        )
        eager_s, eager_result, eager_stats, eager_plan = timed(
            db, eager_factory, replace(sharded, engine="row")
        )
        vec_s, vec_result, vec_stats, __ = timed(
            db, eager_factory, replace(sharded, engine="vector")
        )
        __, base_std, *___ = timed(
            db, standard_factory, replace(single, engine="row")
        )
        __, base_eager_row, *___ = timed(
            db, eager_factory, replace(single, engine="row")
        )
        __, base_eager_vec, *___ = timed(
            db, eager_factory, replace(single, engine="vector")
        )

        model = CostModel(CardinalityEstimator(db), network=NetworkWeights())
        standard_cost = model.cost(std_plan).total
        eager_cost = model.cost(eager_plan).total
        std_cert = certificate_of(std_plan)
        eager_cert = certificate_of(eager_plan)
        std_estimate = float(std_cert.get("estimated-shipped-rows", "nan"))
        eager_estimate = float(eager_cert.get("estimated-shipped-rows", "nan"))

        results_match = (
            std_result.rows == base_std.rows
            and eager_result.rows == base_eager_row.rows
            and vec_result.rows == base_eager_vec.rows
            and eager_result.equals_multiset(std_result)
        )
        entry = {
            "groups": groups,
            "standard": {
                "wall_s": round(std_s, 6),
                "strategy": std_cert.get("strategy"),
                "rows_shipped": std_stats.rows_shipped(),
                "bytes_shipped": std_stats.bytes_shipped(),
                "estimated_rows": std_estimate,
                "rpc": rpc_of(std_stats),
            },
            "eager": {
                "wall_s": round(eager_s, 6),
                "wall_s_vector": round(vec_s, 6),
                "strategy": eager_cert.get("strategy"),
                "rows_shipped": eager_stats.rows_shipped(),
                "bytes_shipped": eager_stats.bytes_shipped(),
                "estimated_rows": eager_estimate,
                "rpc": rpc_of(eager_stats),
            },
            "model_cost": {
                "standard": round(standard_cost, 1),
                "eager": round(eager_cost, 1),
            },
            "ships_one_row_per_group": (
                eager_stats.rows_shipped() <= groups + shards
            ),
            "transfer_saving": (
                round(
                    std_stats.bytes_shipped()
                    / max(1, eager_stats.bytes_shipped()),
                    2,
                )
            ),
            "results_match": results_match,
        }
        report["sweep"].append(entry)

    report["planner_two_phase"] = all(
        entry["eager"]["strategy"] == "two-phase" for entry in report["sweep"]
    )
    # Transfer against transfer: the model must never order the strategies
    # *against* the wire.  Ties are allowed — the product-NDV estimator
    # caps the (GKey, BRef) group count at |A| because it cannot see the
    # functional dependency GKey → BRef, so at high group counts both
    # strategies estimate |A| shipped rows while the wire still favours
    # the eager plan.
    report["bytes_follow_model"] = all(
        entry["eager"]["estimated_rows"] <= entry["standard"]["estimated_rows"]
        for entry in report["sweep"]
        if entry["eager"]["bytes_shipped"] < entry["standard"]["bytes_shipped"]
    )
    report["all_equal"] = all(
        entry["results_match"] for entry in report["sweep"]
    )
    if transport == "socket":
        from repro.engine.shardrpc import shutdown_pool

        shutdown_pool()
    return report


def render_distributed_report(report: Dict) -> str:
    lines = [
        f"distributed sweep: |A|={report['n_a']}, {report['shards']} shards, "
        f"{report.get('transport', 'memory')} transport, "
        "hash-partitioned on the join column",
        f"{'groups':>7} {'ship-all rows':>14} {'eager rows':>11} "
        f"{'ship-all B':>11} {'eager B':>9} {'saving':>7}  strategy",
    ]
    for entry in report["sweep"]:
        lines.append(
            f"{entry['groups']:>7} {entry['standard']['rows_shipped']:>14} "
            f"{entry['eager']['rows_shipped']:>11} "
            f"{entry['standard']['bytes_shipped']:>11} "
            f"{entry['eager']['bytes_shipped']:>9} "
            f"{entry['transfer_saving']:>6.1f}x  {entry['eager']['strategy']}"
        )
    if report.get("transport") == "socket":
        retries = sum(e["eager"]["rpc"]["retries"] for e in report["sweep"])
        timeouts = sum(e["eager"]["rpc"]["timeouts"] for e in report["sweep"])
        failovers = sum(
            e["eager"]["rpc"]["failovers"] for e in report["sweep"]
        )
        lines.append(
            f"socket rpc (eager runs): retries={retries} "
            f"timeouts={timeouts} failovers={failovers}"
        )
    lines.append(
        "planner picked two-phase: "
        + ("yes" if report["planner_two_phase"] else "NO")
    )
    lines.append(
        "measured bytes follow the model: "
        + ("yes" if report["bytes_follow_model"] else "NO")
    )
    lines.append(
        "sharded == unsharded (both engines): "
        + ("yes" if report["all_equal"] else "NO")
    )
    return "\n".join(lines)


def render_morsel_report(report: Dict) -> str:
    lines = [
        f"morsel sweep: star schema, {report['rows']} rows, "
        f"{report['cpu_count']} cpu(s)",
        f"{'mode':<14} {'morsel':>8} {'workers':>8} {'wall (s)':>10} "
        f"{'in-flight (B)':>14}",
    ]
    for r in report["runs"]:
        p = r["pipelines"]
        lines.append(
            f"{r['mode']:<14} {str(r['morsel_size'] or 'off'):>8} "
            f"{r['workers']:>8} {r['wall_s']:>10.4f} "
            f"{p['max_inflight_bytes'] if p else '-':>14}"
        )
    lines.append(
        "in-flight scales with morsel: "
        + ("yes" if report["inflight_scales_with_morsel"] else "NO")
    )
    lines.append(f"parallel speedups: {report['parallel_speedups']}")
    return "\n".join(lines)


def render_report(report: Dict) -> str:
    lines = [
        f"{'scenario':<24} {'rows':>8} {'row (s)':>10} {'vector (s)':>11} "
        f"{'speedup':>8}  equal"
    ]
    for entry in report["scenarios"]:
        ok = entry["results_match"] and entry["stats_match"]
        lines.append(
            f"{entry['scenario']:<24} {entry['rows']:>8} "
            f"{entry['row']['wall_s']:>10.4f} {entry['vector']['wall_s']:>11.4f} "
            f"{entry['speedup']:>7.2f}x  {'yes' if ok else 'NO'}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="benchmark the row vs. vector execution backends",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small row counts + the full differential harness (CI smoke); "
        "writes no file unless --out is given",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_vector.json unless --quick)",
    )
    parser.add_argument(
        "--repeat", type=int, default=2, help="timing runs per engine (best-of)"
    )
    parser.add_argument(
        "--memory-limit",
        type=int,
        default=None,
        metavar="BYTES",
        help="run every scenario under this working-set budget "
        "(blocking operators spill to disk)",
    )
    parser.add_argument(
        "--morsel-size",
        default="32768",
        metavar="ROWS",
        help="vector-engine morsel size for every scenario "
        "('off' disables streaming)",
    )
    parser.add_argument(
        "--workers",
        type=lambda text: 0 if text == "auto" else int(text),
        default=1,
        help="worker count for parallel morsel pipelines "
        "('auto' = one per core, clamped to os.cpu_count())",
    )
    parser.add_argument(
        "--morsels",
        action="store_true",
        help="run the morsel sweep (serial vs parallel at three morsel "
        "sizes) and write BENCH_morsel.json instead of the backend bench",
    )
    parser.add_argument(
        "--distributed",
        action="store_true",
        help="run the §7 distributed sweep (measured shipped rows/bytes, "
        "eager vs ship-all) and write BENCH_distributed.json instead of "
        "the backend bench",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard count for --distributed",
    )
    parser.add_argument(
        "--transport",
        choices=("memory", "socket"),
        default="memory",
        help="shard wire for --distributed: in-process pickle round-trip "
        "(memory) or one OS process per shard over the framed socket RPC "
        "(socket)",
    )
    parser.add_argument(
        "--server",
        action="store_true",
        help="run the concurrent multi-session server workload and write "
        "BENCH_server.json instead of the backend bench",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=8,
        help="concurrent sessions for --server",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed for --server"
    )
    options = parser.parse_args(argv)
    morsel_size = (
        None if options.morsel_size in ("off", "none")
        else int(options.morsel_size)
    )

    if options.server:
        from repro.server.bench import render_server_report, run_server_bench

        report = run_server_bench(
            sessions=options.sessions,
            operations=10 if options.quick else 40,
            seed=options.seed,
            engine="vector",
            morsel_size=morsel_size,
            prefill_rows=200 if options.quick else 2000,
        )
        print(render_server_report(report))
        out_path = options.out or "BENCH_server.json"
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {out_path}")
        return 0 if report["replay_consistent"] else 1

    if options.distributed:
        report = run_distributed_bench(
            quick=options.quick,
            repeat=options.repeat,
            shards=options.shards,
            transport=options.transport,
        )
        print(render_distributed_report(report))
        out_path = options.out or "BENCH_distributed.json"
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {out_path}")
        ok = (
            report["all_equal"]
            and report["planner_two_phase"]
            and report["bytes_follow_model"]
        )
        return 0 if ok else 1

    if options.morsels:
        sweep = run_morsel_bench(
            quick=options.quick,
            repeat=options.repeat,
            workers=max(2, options.workers),
        )
        print(render_morsel_report(sweep))
        out_path = options.out or "BENCH_morsel.json"
        with open(out_path, "w") as handle:
            json.dump(sweep, handle, indent=2)
            handle.write("\n")
        print(f"wrote {out_path}")
        return 0 if sweep["all_equal"] else 1

    diverged = False
    if options.quick:
        morsel_overrides = {"morsel_size": morsel_size, "workers": options.workers}
        differential = run_differential(quick=True, overrides=morsel_overrides)
        print(render_results(differential))
        diverged = bool(failures(differential))
        if options.memory_limit is not None:
            budgeted = run_differential(
                quick=True,
                overrides=dict(
                    morsel_overrides, memory_limit_bytes=options.memory_limit
                ),
            )
            leaks = failures(budgeted)
            spilled = sum(r.row_spills for r in budgeted)
            print(
                f"budgeted differential ({options.memory_limit} bytes): "
                f"{len(budgeted)} cases, {spilled} spills, "
                f"{len(leaks)} divergences"
            )
            diverged = diverged or bool(leaks)

    report = run_bench(
        quick=options.quick,
        repeat=options.repeat,
        memory_limit_bytes=options.memory_limit,
        morsel_size=morsel_size,
        workers=options.workers,
    )
    print(render_report(report))
    mismatched = [
        e["scenario"]
        for e in report["scenarios"]
        if not (e["results_match"] and e["stats_match"])
    ]
    if mismatched:
        print(f"BACKEND DIVERGENCE in: {', '.join(mismatched)}")

    out_path = options.out
    if out_path is None and not options.quick:
        out_path = "BENCH_vector.json"
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {out_path}")

    return 1 if (diverged or mismatched) else 0


if __name__ == "__main__":
    raise SystemExit(main())
