"""Morsel-driven streaming pipelines for the vector executor.

The materialize-per-operator vector backend produces one full
:class:`~repro.engine.vector.batch.ColumnBatch` per plan node, so peak
memory scales with input size even when the plan is a straight
scan→filter→project→aggregate chain.  This module restructures execution
into *pipeline segments*: each physical plan is split at its pipeline
breakers (joins, sorts, sort-mode grouping, spill-routed operators), and
every maximal non-blocking chain of ``Select``/``Project`` stages — with
an optional terminal hash-mode ``GroupApply`` maintaining streaming
partial-aggregation state — is fused into one per-morsel loop over
fixed-size zero-copy slices of the segment's source batch
(:meth:`ColumnBatch.slice`).

The contract with the materialized path is strict and held to account by
the differential harness: a streamed segment produces the same result
multiset, the same ordering metadata, and **identical per-operator
statistics** (labels, cardinalities, work counters, in the same
``stats.order``) as running each operator over fully materialized
batches.  The sequencing mirrors the per-frame recursion exactly:

* **Phase A** — ``governor.check`` fires once per stage, top-down, before
  the source executes (as the recursive ``_execute`` frames would);
* **Phase B** — ``faults.injection_point("vector", label)`` fires once
  per stage, bottom-up (the order the per-operator kernel guards would
  reach them);
* **Phase C** — morsels stream through the fused chain,
  ``governor.tick`` firing per stage per morsel boundary;
* **Phase D** — per-stage ``NodeStats`` are recorded and ``charge_rows``
  is called bottom-up with the stage *totals*, matching the materialized
  per-operator accounting.

Degradation falls back for a **whole segment**: any non-resource failure
inside the fused loop (including injected kernel faults) re-runs the
segment through :meth:`MorselDriver._run_materialized`, which applies
the ordinary per-operator kernel ladder over the retained source batch —
so a degraded streamed run records exactly the stats a degraded
materialized run would.  The same routine is the single-morsel bypass
(inputs no larger than one morsel take the materialized path outright,
keeping small-query behaviour bit-identical) and the empty-input path.

Determinism under reordering: morsel boundaries change *when* partial
aggregation states are merged, never *what* they merge to.  COUNT and
integer SUM/AVG partials merge with exact integer arithmetic; MIN/MAX
merge with the same strict comparison the sequential fold uses; DISTINCT
aggregates fold their value set in global first-appearance order; and
non-integer SUM/AVG (float addition is non-associative) always fold
per-row in input order — parallel workers flag such aggregates
*order-sensitive* and the driver re-runs the segment serially.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.ops import GroupApply, PlanNode, Project, Select
from repro.engine import faults
from repro.engine.aggregation import distinct as row_distinct
from repro.engine.aggregation import hash_group
from repro.engine.dataset import DataSet
from repro.engine.governor import ResourceGovernor, estimate_table_bytes
from repro.engine.stats import ExecutionStats, NodeStats, PipelineStats
from repro.engine.vector import kernels
from repro.engine.vector.batch import ColumnBatch, _np
from repro.errors import (
    ExecutionError,
    MemoryLimitExceeded,
    ReproError,
    ResourceError,
    annotate_operator,
)
from repro.expressions.compile import (
    TRUE_CODE,
    GroupVectors,
    compile_aggregate_arguments,
    compile_group_expression,
    compile_predicate,
)
from repro.expressions.eval import ReusableRowScope, evaluate_predicate
from repro.sqltypes.values import NULL, SqlValue, group_key, sql_add, sql_div


class SegmentKernelError(Exception):
    """A kernel failure inside a streamed segment, tagged with its stage.

    Raised out of parallel workers (and unwrapped by the driver) so the
    degradation event is attributed to the operator that failed, exactly
    as the per-operator kernel guard would attribute it.
    """

    def __init__(self, stage_index: int, cause: str) -> None:
        super().__init__(cause)
        self.stage_index = stage_index
        self.cause = cause


class _GuardColumn:
    """A synthetic column that refuses to be read.

    Stands in for non-grouping source columns of the streamed-aggregation
    finalizer: grouped-table discipline means a valid plan never reads
    them outside an aggregate, so any access marks an invalid plan —
    raising here routes the segment through the materialized fallback,
    which produces the error (or value) the per-operator path would.
    """

    __slots__ = ("name", "n")

    def __init__(self, name: str, n: int) -> None:
        self.name = name
        self.n = n

    def __len__(self) -> int:
        return self.n

    def _refuse(self):
        raise ExecutionError(
            f"column {self.name!r} read outside the grouping columns"
        )

    def __getitem__(self, index):
        self._refuse()

    def __iter__(self):
        self._refuse()


class _GrowAcc:
    """A growable per-group accumulator with order-independent merging.

    Implements the sequential
    :class:`~repro.engine.vector.kernels._Accumulator` fold semantics,
    but groups are appended as they are discovered and exported partial
    states can be merged in: integer COUNT/SUM/AVG partials add exactly,
    MIN/MAX merge by the same strict comparison the fold uses (so the
    globally-first value among ``=ⁿ`` ties survives), and DISTINCT
    aggregates keep their value set in first-seen order and fold once at
    merge time.  ``order_sensitive`` flips when a non-integer value
    reaches a non-distinct SUM/AVG — those folds are only exact in input
    order, so their partials must not be merged out of order.
    """

    __slots__ = (
        "function", "distinct", "counts", "state", "seen", "order_sensitive"
    )

    def __init__(self, function: str, distinct: bool) -> None:
        self.function = function
        self.distinct = distinct
        self.counts: List[int] = []
        self.state: List[SqlValue] = []
        self.seen: Optional[List[Dict[Tuple, SqlValue]]] = (
            [] if distinct else None
        )
        self.order_sensitive = False

    def grow(self, n_groups: int) -> None:
        add = n_groups - len(self.counts)
        if add > 0:
            self.counts.extend([0] * add)
            self.state.extend([NULL] * add)
            if self.seen is not None:
                self.seen.extend({} for __ in range(add))

    def feed(self, gid: int, value: SqlValue) -> None:
        if value is NULL:
            return
        if self.seen is not None:
            key = group_key((value,))
            bucket = self.seen[gid]
            if key in bucket:
                return
            bucket[key] = value
        function = self.function
        count = self.counts[gid]
        self.counts[gid] = count + 1
        if function == "COUNT":
            return
        if count == 0:
            self.state[gid] = value
            if function in ("SUM", "AVG") and type(value) is not int:
                self.order_sensitive = True
        elif function in ("SUM", "AVG"):
            if type(value) is not int:
                self.order_sensitive = True
            self.state[gid] = sql_add(self.state[gid], value)
        elif function == "MIN":
            if value < self.state[gid]:  # type: ignore[operator]
                self.state[gid] = value
        elif function == "MAX":
            if self.state[gid] < value:  # type: ignore[operator]
                self.state[gid] = value
        else:
            raise ExecutionError(f"unknown aggregate function {function}")

    def add_star(self, gid: int, count: int) -> None:
        """COUNT(*): group sizes, no argument values."""
        self.counts[gid] += count

    def add_int_partial(self, gid: int, total: SqlValue, count: int) -> None:
        """Merge an exact integer partial (COUNT/SUM/AVG over int values)."""
        if count == 0:
            return
        had = self.counts[gid]
        self.counts[gid] = had + count
        if self.function == "COUNT":
            return
        if had == 0:
            self.state[gid] = total
        else:
            self.state[gid] = self.state[gid] + total  # type: ignore[operator]

    def merge_minmax(self, gid: int, state: SqlValue, count: int) -> None:
        if count == 0:
            return
        had = self.counts[gid]
        self.counts[gid] = had + count
        if had == 0:
            self.state[gid] = state
        elif self.function == "MIN":
            if state < self.state[gid]:  # type: ignore[operator]
                self.state[gid] = state
        else:
            if self.state[gid] < state:  # type: ignore[operator]
                self.state[gid] = state

    def export(self, n_groups: int):
        """A picklable partial covering local groups ``[0, n_groups)``."""
        self.grow(n_groups)
        if self.seen is not None:
            return [list(bucket.values()) for bucket in self.seen]
        return list(zip(self.counts, self.state))

    def merge(self, gid: int, partial) -> None:
        """Fold one exported local-group partial into global group ``gid``."""
        if self.seen is not None:
            for value in partial:
                self.feed(gid, value)
            return
        count, state = partial
        if self.function in ("COUNT", "SUM", "AVG"):
            self.add_int_partial(gid, state, count)
        else:
            self.merge_minmax(gid, state, count)

    def finish(self) -> List[SqlValue]:
        if self.function == "COUNT":
            return list(self.counts)
        if self.function == "AVG":
            return [
                NULL
                if count == 0
                else (
                    sql_div(total, count)
                    if not isinstance(total, int)
                    else total / count
                )
                for total, count in zip(self.state, self.counts)
            ]
        return self.state


def _minmax_array(values, batch: ColumnBatch):
    """A numpy view of a MIN/MAX argument column, or ``None``.

    Stricter than :func:`kernels._values_array`: MIN/MAX keep the *exact
    winning value* (type identity matters for ``=ⁿ`` bit-equality), so
    only direct batch columns qualify — :meth:`ColumnBatch.as_array`
    guarantees those are homogeneous ``{int}`` or ``{float}`` and
    NULL-free, so ``tolist()`` round-trips every element exactly.
    Computed argument lists may mix int and float (``asarray`` would
    silently promote the ints) and are left to the per-row fold.  Float
    columns containing NaN also fall back: ``reduceat`` propagates NaN
    while the fold's strict ``<`` never selects it.
    """
    if _np is None:
        return None
    for index, column in enumerate(batch.columns):
        if column is values:
            arr = batch.as_array(index)
            if arr is None:
                return None
            if arr.dtype.kind == "f" and _np.isnan(arr).any():
                return None
            return arr
    return None


# -- pipeline stages ---------------------------------------------------------


class _SelectStage:
    """σ[C] fused into the morsel loop: compile once, filter per morsel."""

    kind = "select"

    def __init__(self, node: Select) -> None:
        self.node = node
        self.label = node.label()
        self.in_rows = 0
        self.out_rows = 0
        self.predicate = None
        self.params = None

    def begin(self, schema: ColumnBatch, params) -> ColumnBatch:
        self.predicate = compile_predicate(self.node.condition, schema.names)
        self.params = params
        return self.apply(schema)

    def apply(self, batch: ColumnBatch) -> ColumnBatch:
        codes = self.predicate(batch, self.params)
        selection = [i for i, code in enumerate(codes) if code == TRUE_CODE]
        if len(selection) == batch.length:
            return batch  # nothing filtered: share the columns outright
        return batch.take(selection, ordering=batch.ordering)

    def work(self) -> int:
        return self.in_rows


class _ProjectStage:
    """π fused into the morsel loop; DISTINCT dedups against global state."""

    kind = "project"

    def __init__(self, node: Project) -> None:
        self.node = node
        self.label = node.label()
        self.in_rows = 0
        self.out_rows = 0
        self.distinct = bool(node.distinct)
        # Persistent =ⁿ dedup state.  group_key equality coincides with
        # raw-tuple equality whenever distinct_batch's raw path is sound,
        # so one key scheme serves every morsel whatever its type census.
        self.seen: Dict[Tuple, None] = {}

    def begin(self, schema: ColumnBatch, params) -> ColumnBatch:
        return self.apply(schema)

    def apply(self, batch: ColumnBatch) -> ColumnBatch:
        out = kernels.project_batch(batch, self.node.columns)
        if not self.distinct:
            return out
        seen = self.seen
        selection: List[int] = []
        for i, row in enumerate(out.iter_rows()):
            key = group_key(row)
            if key not in seen:
                seen[key] = None
                selection.append(i)
        # Like distinct_batch / the row engine, DISTINCT drops the ordering.
        return out.take(selection)

    def work(self) -> int:
        return self.in_rows * 2 if self.distinct else self.in_rows


class _AggStage:
    """Terminal hash-mode G[GA]+F(AA) maintaining streaming partial state.

    Grouping keys live in a persistent ``group_key``-keyed table; the raw
    key tuple of each group's globally-first row is captured as its
    representative (the row engine's choice).  Integer COUNT/SUM/AVG
    arguments fold per morsel at C speed through ``np.bincount`` (exact —
    integer partials merge associatively); everything else feeds per row,
    in input order, with the same accumulator semantics the materialized
    kernel uses.  Output groups emerge in global first-appearance order.
    """

    kind = "groupby"

    def __init__(self, node: GroupApply) -> None:
        self.node = node
        self.label = node.label()
        self.in_rows = 0
        self.params = None
        self.in_names: Tuple[str, ...] = ()
        self.group_indexes: Tuple[int, ...] = ()
        self.compiled = []
        self.slots = {}
        self.accs: List[_GrowAcc] = []
        self.table: Dict[Tuple, int] = {}
        self.reps_raw: List[Tuple[SqlValue, ...]] = []

    def begin(self, schema: ColumnBatch, params) -> ColumnBatch:
        self.params = params
        self.in_names = schema.names
        self.group_indexes = schema.indexes_of(self.node.grouping_columns)
        self.compiled, self.slots = compile_aggregate_arguments(
            self.node.aggregates, schema.names
        )
        self.accs = [
            _GrowAcc(aggregate.function, aggregate.distinct)
            for aggregate in self.compiled
        ]
        return schema  # terminal stage: nothing streams past it

    @property
    def out_rows(self) -> int:
        return len(self.reps_raw)

    @property
    def out_arity(self) -> int:
        return len(self.group_indexes) + len(self.node.aggregates)

    def work(self) -> int:
        return self.in_rows + len(self.reps_raw)

    def order_sensitive(self) -> bool:
        return any(acc.order_sensitive for acc in self.accs)

    def _factorize(self, batch: ColumnBatch):
        """Global group ids for a morsel's rows (appending new groups).

        The fast path factorizes morsel-local numeric key arrays with
        ``np.unique`` and maps each local group through the persistent
        ``group_key`` table, so the *partition* is always the ``=ⁿ``
        partition whichever path a given morsel takes.
        """
        n = batch.length
        indexes = self.group_indexes
        table = self.table
        reps = self.reps_raw
        if indexes and _np is not None:
            arrays = []
            for i in indexes:
                arr = batch.as_array(i)
                if arr is None:
                    arrays = None
                    break
                if arr.dtype.kind == "f" and _np.isnan(arr).any():
                    arrays = None  # NaN equality differs from the Python path
                    break
                arrays.append(arr)
            if arrays:
                codes = (
                    arrays[0]
                    if len(arrays) == 1
                    else kernels._combine_codes(arrays)
                )
                __, first, inverse = _np.unique(
                    codes, return_index=True, return_inverse=True
                )
                columns = [batch.columns[i] for i in indexes]
                local2global = _np.empty(len(first), dtype=_np.int64)
                for u, first_row in enumerate(first.tolist()):
                    raw = tuple(column[first_row] for column in columns)
                    key = group_key(raw)
                    gid = table.get(key)
                    if gid is None:
                        gid = len(reps)
                        table[key] = gid
                        reps.append(raw)
                    local2global[u] = gid
                return local2global[inverse.reshape(-1)]
        # Generic path: per-row =ⁿ keys in input order.
        gids: List[int] = [0] * n
        if not indexes:
            empty: Tuple[SqlValue, ...] = ()
            key = group_key(empty)
            gid = table.get(key)
            if gid is None and n:
                gid = len(reps)
                table[key] = gid
                reps.append(empty)
            for r in range(n):
                gids[r] = gid
        else:
            columns = [batch.columns[i] for i in indexes]
            for r, raw in enumerate(zip(*columns)):
                key = group_key(raw)
                gid = table.get(key)
                if gid is None:
                    gid = len(reps)
                    table[key] = gid
                    reps.append(raw)
                gids[r] = gid
        if _np is not None:
            return _np.asarray(gids, dtype=_np.int64)
        return gids

    def feed(self, batch: ColumnBatch) -> None:
        n = batch.length
        self.in_rows += n
        if n == 0:
            return
        gids = self._factorize(batch)
        n_groups = len(self.reps_raw)
        gids_list: Optional[List[int]] = None
        counts = None
        present: List[int] = []
        if _np is not None:
            counts = _np.bincount(gids, minlength=n_groups)
            present = _np.nonzero(counts)[0].tolist()
        for acc, aggregate in zip(self.accs, self.compiled):
            acc.grow(n_groups)
            if aggregate.argument is None:  # COUNT(*): group sizes
                if counts is not None:
                    for g in present:
                        acc.add_star(g, int(counts[g]))
                else:
                    for gid in gids:
                        acc.add_star(gid, 1)
                continue
            values = aggregate.argument(batch, self.params)
            if (
                counts is not None
                and not aggregate.distinct
                and not acc.order_sensitive
                and acc.function in ("COUNT", "SUM", "AVG")
            ):
                arr = kernels._values_array(values, batch)
                if arr is not None and (
                    acc.function == "COUNT" or arr.dtype.kind == "i"
                ):
                    if acc.function == "COUNT":
                        # An array view exists ⇒ no NULLs: count = size.
                        for g in present:
                            acc.add_int_partial(g, 0, int(counts[g]))
                        continue
                    amax = int(_np.abs(arr).max()) if arr.size else 0
                    if 0 <= amax and amax * arr.size < 2 ** 53:
                        totals = _np.bincount(
                            gids, weights=arr, minlength=n_groups
                        )
                        for g in present:
                            acc.add_int_partial(
                                g, int(totals[g]), int(counts[g])
                            )
                        continue
            if (
                counts is not None
                and not aggregate.distinct
                and acc.function in ("MIN", "MAX")
            ):
                arr = _minmax_array(values, batch)
                if arr is not None:
                    # Per-morsel extreme per group: one stable argsort on
                    # the gid array, then a single reduceat over the
                    # group-contiguous permutation — C speed instead of a
                    # per-row Python fold.  Merging the morsel extreme
                    # uses the same strict comparison as the fold, so
                    # the globally-first value among ties still wins.
                    order = _np.argsort(gids, kind="stable")
                    sorted_gids = gids[order]
                    sorted_values = arr[order]
                    starts = _np.flatnonzero(
                        _np.r_[True, sorted_gids[1:] != sorted_gids[:-1]]
                    )
                    reducer = (
                        _np.minimum if acc.function == "MIN" else _np.maximum
                    )
                    extremes = reducer.reduceat(sorted_values, starts)
                    for g, extreme in zip(
                        sorted_gids[starts].tolist(), extremes.tolist()
                    ):
                        acc.merge_minmax(g, extreme, int(counts[g]))
                    continue
            if gids_list is None:
                gids_list = gids if isinstance(gids, list) else gids.tolist()
            feed = acc.feed
            for r in range(n):
                feed(gids_list[r], values[r])

    def export_partial(self, chain_counts, max_inflight: int):
        """This (worker-local) state as one picklable merge unit."""
        n_groups = len(self.reps_raw)
        return {
            "groups": self.reps_raw,
            "accs": [acc.export(n_groups) for acc in self.accs],
            "in_rows": self.in_rows,
            "chain_counts": chain_counts,
            "order_sensitive": self.order_sensitive(),
            "max_inflight": max_inflight,
        }

    def merge_partial(self, partial) -> None:
        table = self.table
        reps = self.reps_raw
        mapping: List[int] = []
        for raw in partial["groups"]:
            key = group_key(raw)
            gid = table.get(key)
            if gid is None:
                gid = len(reps)
                table[key] = gid
                reps.append(raw)
            mapping.append(gid)
        n_groups = len(reps)
        for acc, exported in zip(self.accs, partial["accs"]):
            acc.grow(n_groups)
            for local_gid, item in enumerate(exported):
                acc.merge(mapping[local_gid], item)
        self.in_rows += partial["in_rows"]

    def finish(self) -> ColumnBatch:
        n_groups = len(self.reps_raw)
        agg_columns = [acc.finish() for acc in self.accs]
        key_cols: List[List[SqlValue]] = [
            [raw[j] for raw in self.reps_raw]
            for j in range(len(self.group_indexes))
        ]
        position = {index: j for j, index in enumerate(self.group_indexes)}
        src_columns: List[Sequence[SqlValue]] = [
            key_cols[position[i]]
            if i in position
            else _GuardColumn(name, n_groups)
            for i, name in enumerate(self.in_names)
        ]
        source = ColumnBatch(self.in_names, src_columns, length=n_groups)
        groups = GroupVectors(source, list(range(n_groups)), agg_columns)
        specs = self.node.aggregates
        spec_columns = [
            compile_group_expression(
                spec.expression, self.in_names, self.slots
            )(groups, self.params)
            for spec in specs
        ]
        out_names = tuple(
            self.in_names[i] for i in self.group_indexes
        ) + tuple(spec.name for spec in specs)
        out_columns: List[Sequence[SqlValue]] = list(key_cols)
        out_columns.extend(spec_columns)
        return ColumnBatch(out_names, out_columns, length=n_groups, ordering=())


# -- segment driver ----------------------------------------------------------


class MorselDriver:
    """Routes plan execution through streamed pipeline segments.

    Installed by :meth:`VectorExecutor.run` as the executor's recursion
    hook when ``config.morsel_size`` is set: every child-node recursion
    funnels through :meth:`execute_node`, which streams the node's
    maximal fused chain when one exists and otherwise dispatches to the
    ordinary materialized operator (whose own child recursions re-enter
    the driver, so chains *below* pipeline breakers still stream).
    """

    def __init__(self, executor) -> None:
        from repro.engine.vector.parallel import resolve_workers

        self.executor = executor
        self.config = executor.config
        self.morsel_size: int = executor.config.morsel_size
        #: Autotuned worker count (``workers=0`` resolves to the clamped
        #: cpu count; explicit counts pass through).
        self.workers: int = resolve_workers(executor.config.workers)
        self.pipeline = PipelineStats()

    def execute_node(
        self,
        node: PlanNode,
        stats: ExecutionStats,
        governor: ResourceGovernor,
        position: str = "",
    ) -> ColumnBatch:
        extracted = self._chain(node, governor)
        if extracted is None:
            return self.executor._execute(node, stats, governor, position)
        return self._run_segment(node, extracted, stats, governor, position)

    def _chain(self, node: PlanNode, governor: ResourceGovernor):
        """The maximal streamable chain headed at ``node``, top-down.

        Pipeline breakers (joins, products, sorts, bare groups, sort-mode
        aggregation) never join a chain — they run materialized, becoming
        segment sources or consumers.  A hash-mode GroupApply heads a
        chain only when no memory budget is set: under a budget the
        materialized operator keeps the exact spill-decision sequence
        (full-input estimate, row-engine spill machinery) the serial
        engine is differentially tested on.
        """
        stages: List[object] = []
        cursor = node
        if (
            isinstance(cursor, GroupApply)
            and self.config.aggregation != "sort"
            and governor.memory_limit_bytes is None
        ):
            stages.append(_AggStage(cursor))
            cursor = cursor.child
        while isinstance(cursor, (Select, Project)):
            stages.append(
                _SelectStage(cursor)
                if isinstance(cursor, Select)
                else _ProjectStage(cursor)
            )
            cursor = cursor.child
        if not stages:
            return None
        return stages, cursor

    def _run_segment(
        self,
        node: PlanNode,
        extracted,
        stats: ExecutionStats,
        governor: ResourceGovernor,
        position: str,
    ) -> ColumnBatch:
        stages_top_down, source_node = extracted
        bottom_up = stages_top_down[::-1]
        top_index = len(bottom_up) - 1
        active = 0
        try:
            # Phase A: per-frame budget checks, top-down — exactly the
            # order the recursive _execute frames would run them.
            for index in range(top_index, -1, -1):
                active = index
                governor.check(bottom_up[index].label)
            active = 0
            source = self.executor._execute(source_node, stats, governor)
        except MemoryError as error:
            converted = MemoryLimitExceeded(f"allocation failed: {error}")
            self._annotate_up(converted, bottom_up, active, position)
            raise converted from error
        except ReproError as error:
            self._annotate_up(error, bottom_up, active, position)
            raise
        return self._stream(bottom_up, source, stats, governor, position)

    def _stream(
        self,
        bottom_up,
        source: ColumnBatch,
        stats: ExecutionStats,
        governor: ResourceGovernor,
        position: str,
    ) -> ColumnBatch:
        morsel_size = self.morsel_size
        pipe = self.pipeline
        pipe.segments += 1
        n = source.length
        top_index = len(bottom_up) - 1

        if n <= morsel_size:
            # At most one chunk: the fused loop would degenerate to the
            # materialized per-operator execution — run that outright
            # (bit-identical small-query behaviour, lazy views intact).
            if n:
                pipe.morsels += 1
                pipe.note_inflight(estimate_table_bytes(n, len(source.names)))
            return self._run_materialized(
                bottom_up, source, stats, governor, position
            )

        # Pre-warm the source's array cache: every morsel slice then
        # shares the same numpy base buffers (zero-copy views) instead of
        # re-attempting column conversions per chunk.
        for i in range(len(source.names)):
            source.as_array(i)

        n_morsels = -(-n // morsel_size)
        active = 0
        try:
            # Phase B: bottom-up fault-injection visits (the order the
            # kernel guards would fire); an armed fault degrades the
            # whole segment, and the materialized replay then re-visits
            # every stage's injection point for remaining armed faults.
            for index, stage in enumerate(bottom_up):
                active = index
                faults.injection_point("vector", stage.label)

            # Compile stages and push the (empty) schema through.
            params = self.executor.params
            schema = source.slice(0, 0)
            agg: Optional[_AggStage] = None
            chain: List[object] = []
            for index, stage in enumerate(bottom_up):
                active = index
                schema = stage.begin(schema, params)
                if isinstance(stage, _AggStage):
                    agg = stage
                else:
                    chain.append(stage)

            # Phase C: drive morsels through the fused chain.
            active = top_index
            parallel_inflight = None
            if agg is not None and self._parallel_eligible(
                governor, n_morsels, chain
            ):
                from repro.engine.vector.parallel import run_parallel_segment

                parallel_inflight = run_parallel_segment(
                    bottom_up=bottom_up,
                    chain=chain,
                    agg=agg,
                    source=source,
                    morsel_size=morsel_size,
                    n_morsels=n_morsels,
                    workers=self.workers,
                    governor=governor,
                )
            if parallel_inflight is not None:
                pipe.morsels += n_morsels
                pipe.note_inflight(parallel_inflight)
            else:
                arity = len(source.names)
                out_batches: List[ColumnBatch] = []
                for m in range(n_morsels):
                    lo = m * morsel_size
                    current = source.slice(lo, min(n, lo + morsel_size))
                    inflight = estimate_table_bytes(current.length, arity)
                    for index, stage in enumerate(bottom_up):
                        active = index
                        governor.tick(stage.label)
                        if stage is agg:
                            agg.feed(current)
                            inflight += estimate_table_bytes(
                                len(agg.reps_raw), agg.out_arity
                            )
                        else:
                            stage.in_rows += current.length
                            current = stage.apply(current)
                            stage.out_rows += current.length
                            inflight += estimate_table_bytes(
                                current.length, len(current.names)
                            )
                    if agg is None:
                        out_batches.append(current)
                    pipe.morsels += 1
                    pipe.note_inflight(inflight)

            active = top_index
            if agg is not None:
                final = agg.finish()
            else:
                final = _concat(schema, out_batches)
        except MemoryError as error:
            converted = MemoryLimitExceeded(f"allocation failed: {error}")
            self._annotate_up(converted, bottom_up, active, position)
            raise converted from error
        except ResourceError as error:
            self._annotate_up(error, bottom_up, active, position)
            raise
        except SegmentKernelError as error:
            return self._degrade(
                bottom_up, source, stats, governor, position,
                error.stage_index, error,
            )
        except Exception as error:
            return self._degrade(
                bottom_up, source, stats, governor, position, active, error
            )

        # Phase D: record per-stage stats and charge the governor with
        # stage totals, bottom-up — the materialized accounting sequence.
        index = 0
        try:
            for index, stage in enumerate(bottom_up):
                stats.record(
                    id(stage.node),
                    NodeStats(
                        stage.label,
                        stage.kind,
                        (stage.in_rows,),
                        stage.out_rows,
                        stage.work(),
                    ),
                )
                governor.charge_rows(stage.out_rows, stage.label)
        except ReproError as error:
            self._annotate_up(error, bottom_up, index, position)
            raise
        return final

    def _parallel_eligible(self, governor, n_morsels: int, chain) -> bool:
        if self.workers < 2 or n_morsels < 2:
            return False
        if governor.memory_limit_bytes is not None:
            # Spill parity: budgeted runs stay serial so every should_spill
            # decision is made from the one global deterministic estimate.
            return False
        if any(getattr(stage, "distinct", False) for stage in chain):
            return False  # global first-occurrence dedup is sequential
        from repro.engine.vector.parallel import fork_available

        return fork_available()

    # -- whole-segment degradation ---------------------------------------------

    def _degrade(
        self, bottom_up, source, stats, governor, position, index, error
    ) -> ColumnBatch:
        label = bottom_up[index].label
        if not self.config.degrade:
            if isinstance(error, ReproError):
                self._annotate_up(error, bottom_up, index, position)
                raise error
            wrapped = ExecutionError(f"{type(error).__name__}: {error}")
            self._annotate_up(wrapped, bottom_up, index, position)
            raise wrapped from error
        stats.note_degradation(label, error)
        try:
            governor.check(label)  # don't retry past the deadline
        except ReproError as check_error:
            self._annotate_up(check_error, bottom_up, index, position)
            raise
        for stage in bottom_up:  # discard partial streaming state
            _reset_stage(stage)
        return self._run_materialized(
            bottom_up, source, stats, governor, position
        )

    # -- the materialized replica ----------------------------------------------

    def _run_materialized(
        self, bottom_up, source, stats, governor, position
    ) -> ColumnBatch:
        """The segment via the ordinary per-operator kernel ladders.

        Serves three roles with one code path: the single-morsel bypass,
        the empty-input path, and the whole-segment degradation fallback.
        Each stage runs through ``VectorExecutor._kernel`` (injection
        point, vector kernel, row-engine retry), records its
        ``NodeStats``, and charges the governor — replicating the
        materialized operator bodies over the retained source batch.
        """
        executor = self.executor
        params = executor.params
        current = source
        index = 0
        try:
            for index, stage in enumerate(bottom_up):
                child = current
                label = stage.label
                governor.tick(label)
                if stage.kind == "select":
                    node = stage.node

                    def compute():
                        return kernels.filter_batch(
                            child, node.condition, params
                        )

                    def row_path():
                        dataset = child.to_dataset()
                        scope = ReusableRowScope(dataset.columns)
                        out_rows = []
                        for row in dataset.rows:
                            governor.tick("select")
                            if evaluate_predicate(
                                node.condition, scope.bind(row), params
                            ).is_true():
                                out_rows.append(row)
                        filtered = DataSet(
                            dataset.columns, out_rows,
                            ordering=dataset.ordering,
                        )
                        return (
                            ColumnBatch.from_dataset(filtered),
                            dataset.cardinality,
                        )

                    batch, work = executor._kernel(
                        label, stats, governor, compute, row_path
                    )
                elif stage.kind == "project":
                    node = stage.node

                    def compute():
                        batch = kernels.project_batch(child, node.columns)
                        work = child.length
                        if node.distinct:
                            batch, distinct_work = kernels.distinct_batch(
                                batch
                            )
                            work += distinct_work
                        return batch, work

                    def row_path():
                        dataset = child.to_dataset().project(node.columns)
                        work = child.length
                        if node.distinct:
                            dataset, distinct_work = row_distinct(
                                dataset, governor
                            )
                            work += distinct_work
                        return ColumnBatch.from_dataset(dataset), work

                    batch, work = executor._kernel(
                        label, stats, governor, compute, row_path
                    )
                else:  # hash-mode group apply
                    node = stage.node

                    def compute():
                        return kernels.grouped_aggregate(
                            child, node.grouping_columns, node.aggregates,
                            params,
                        )

                    def row_path():
                        dataset, work = hash_group(
                            child.to_dataset(), node.grouping_columns,
                            node.aggregates, params, governor,
                        )
                        return ColumnBatch.from_dataset(dataset), work

                    if governor.should_spill(
                        estimate_table_bytes(child.length, len(child.names)),
                        "group by",
                    ):
                        batch, work = row_path()
                    else:
                        batch, work = executor._kernel(
                            label, stats, governor, compute, row_path
                        )
                stats.record(
                    id(stage.node),
                    NodeStats(
                        label, stage.kind, (child.length,), batch.length, work
                    ),
                )
                governor.charge_rows(batch.length, label)
                current = batch
            return current
        except MemoryError as error:
            converted = MemoryLimitExceeded(f"allocation failed: {error}")
            self._annotate_up(converted, bottom_up, index, position)
            raise converted from error
        except ReproError as error:
            self._annotate_up(error, bottom_up, index, position)
            raise
        except Exception as error:
            wrapped = ExecutionError(f"{type(error).__name__}: {error}")
            self._annotate_up(wrapped, bottom_up, index, position)
            raise wrapped from error

    @staticmethod
    def _annotate_up(error, bottom_up, from_index, position) -> None:
        """Breadcrumbs for fused frames: innermost-first, as if unwinding."""
        top_index = len(bottom_up) - 1
        for j in range(from_index, top_index + 1):
            label = bottom_up[j].label
            if j == top_index and position:
                label = f"{position}:{label}"
            annotate_operator(error, label)


def _reset_stage(stage) -> None:
    stage.in_rows = 0
    if isinstance(stage, _AggStage):
        stage.table = {}
        stage.reps_raw = []
        stage.accs = [
            _GrowAcc(aggregate.function, aggregate.distinct)
            for aggregate in stage.compiled
        ]
    else:
        stage.out_rows = 0
        if isinstance(stage, _ProjectStage):
            stage.seen = {}


def _concat(schema: ColumnBatch, batches: List[ColumnBatch]) -> ColumnBatch:
    """Stitch morsel outputs back into one batch, in stream order.

    The per-morsel ordering metadata is data-independent (every morsel
    ran the same annotation rules), and morsels are contiguous slices
    processed in order — so the concatenation carries the same ordering
    and the same physical row order the materialized operators produce.
    """
    names = schema.names
    ordering = batches[0].ordering if batches else schema.ordering
    length = sum(batch.length for batch in batches)
    columns: List[List[SqlValue]] = []
    for i in range(len(names)):
        column: List[SqlValue] = []
        for batch in batches:
            part = batch.columns[i]
            column.extend(part if isinstance(part, list) else list(part))
        columns.append(column)
    return ColumnBatch(names, columns, length=length, ordering=ordering)
