"""Multi-core morsel dispatch for streamed aggregation segments.

Parallelism is fork-based: the driver publishes the segment (compiled
stages + the pre-warmed source batch, numpy buffers included) in a
module global, then forks a :mod:`multiprocessing` pool.  Each worker
inherits the parent's address space copy-on-write, so the source's numpy
base buffers are physically shared pages — no serialization of input
data, only the (small) per-worker aggregate partials travel back over a
pipe.  Workers process disjoint *contiguous* ranges of morsels, so the
work split is deterministic: the same morsel boundaries as the serial
loop, merely partitioned.

Correctness leans entirely on the order-independent merge contract of
:class:`~repro.engine.vector.morsel._GrowAcc`: partials are merged in
worker order (= morsel order), so group representatives and MIN/MAX
ties resolve to the globally-first row exactly as the serial fold does.
Aggregates whose fold is order-*sensitive* (non-integer SUM/AVG) are
detected by the workers themselves; the driver then discards every
partial untouched and re-runs the segment serially — bit-identical
results, at the cost of parallelism for that segment.

The governor stays in the parent: cancellation and timeouts are polled
while waiting on the pool (the pool is torn down before the resource
error propagates), and spill decisions never arise here because the
driver only parallelizes segments running without a memory budget.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

try:  # pragma: no cover - exercised only where multiprocessing is absent
    import multiprocessing as _mp
except ImportError:  # pragma: no cover
    _mp = None

from repro.engine.governor import ResourceGovernor, estimate_table_bytes
from repro.engine.vector.morsel import SegmentKernelError

#: The segment being executed, published for forked workers to inherit.
#: (chain stages bottom-up, agg stage, source batch, morsel size, rows).
_TASK = None


#: Ceiling for the autotuner: past this many forked workers the per-worker
#: partial-merge and pool-teardown overheads dominate the morsel counts our
#: segments produce, so ``auto`` never picks more even on larger hosts.
MAX_AUTO_WORKERS = 16


def resolve_workers(workers: int) -> int:
    """The effective worker count for a configured ``workers`` value.

    ``0`` is the *auto* sentinel (``ExecutorConfig(workers=0)``, CLI
    ``--workers auto``): use every core the host reports, clamped to
    ``os.cpu_count()`` (and :data:`MAX_AUTO_WORKERS`).  Explicit positive
    counts are honored as-is — oversubscription is sometimes wanted in
    tests — and a single-core host resolves auto to 1, which disables
    parallel dispatch entirely (forked workers timesharing one core are
    pure overhead).
    """
    if workers > 0:
        return workers
    import os

    return max(1, min(os.cpu_count() or 1, MAX_AUTO_WORKERS))


def fork_available() -> bool:
    """Whether fork-based worker pools exist on this platform."""
    if _mp is None:
        return False
    try:
        return "fork" in _mp.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def _split_ranges(n_morsels: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous morsel ranges, one per worker, sizes differing by ≤ 1."""
    parts = min(workers, n_morsels)
    base, extra = divmod(n_morsels, parts)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for p in range(parts):
        stop = start + base + (1 if p < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _run_range(task_range: Tuple[int, int]):
    """Worker body: push one contiguous morsel range through the chain.

    Runs in a forked child over inherited (copy-on-write) stage objects
    and source buffers; mutating them is process-private.  Returns the
    aggregate partial as a picklable dict, or an ``{"error": ...}``
    marker — exceptions are flattened so nothing unpicklable crosses the
    pipe.
    """
    start, stop = task_range
    chain, agg, source, morsel_size, n = _TASK
    stage_index = 0
    try:
        max_inflight = 0
        arity = len(source.names)
        for m in range(start, stop):
            lo = m * morsel_size
            current = source.slice(lo, min(n, lo + morsel_size))
            inflight = estimate_table_bytes(current.length, arity)
            for stage_index, stage in enumerate(chain):
                stage.in_rows += current.length
                current = stage.apply(current)
                stage.out_rows += current.length
                inflight += estimate_table_bytes(
                    current.length, len(current.names)
                )
            stage_index = len(chain)
            agg.feed(current)
            inflight += estimate_table_bytes(len(agg.reps_raw), agg.out_arity)
            if inflight > max_inflight:
                max_inflight = inflight
        return agg.export_partial(
            [(stage.in_rows, stage.out_rows) for stage in chain], max_inflight
        )
    except Exception as error:
        return {
            "error": {
                "stage_index": stage_index,
                "cause": f"{type(error).__name__}: {error}",
            }
        }


def run_parallel_segment(
    *,
    bottom_up,
    chain,
    agg,
    source,
    morsel_size: int,
    n_morsels: int,
    workers: int,
    governor: ResourceGovernor,
) -> Optional[int]:
    """Fan a segment's morsels across a forked worker pool and merge.

    Returns the peak concurrent in-flight byte estimate (summed across
    workers) on success, or ``None`` when the segment must be re-run
    serially (fork failed, or an order-sensitive aggregate surfaced) —
    in that case no driver-side state has been touched.  Worker kernel
    failures raise :class:`SegmentKernelError` so the driver degrades
    the whole segment, exactly like a serial kernel failure.
    """
    global _TASK
    ranges = _split_ranges(n_morsels, workers)
    _TASK = (chain, agg, source, morsel_size, source.length)
    try:
        ctx = _mp.get_context("fork")
        pool = ctx.Pool(processes=len(ranges))
    except Exception:
        _TASK = None
        return None  # cannot fork here: fall back to the serial loop
    top_label = bottom_up[-1].label
    try:
        result = pool.map_async(_run_range, ranges)
        while not result.ready():
            # Cancellation/timeout propagate from the parent's governor;
            # the finally clause tears the workers down before they do.
            governor.check(top_label)
            result.wait(0.02)
        partials = result.get()
    finally:
        pool.terminate()
        pool.join()
        _TASK = None

    for partial in partials:
        failure = partial.get("error")
        if failure is not None:
            raise SegmentKernelError(failure["stage_index"], failure["cause"])
    if any(partial["order_sensitive"] for partial in partials):
        return None  # non-associative folds: re-run serially, state untouched

    # Merge in range order: group discovery order equals the serial
    # first-appearance order, and every accumulator merge is exact.
    max_inflight = 0
    for partial in partials:
        agg.merge_partial(partial)
        for stage, (in_rows, out_rows) in zip(chain, partial["chain_counts"]):
            stage.in_rows += in_rows
            stage.out_rows += out_rows
        max_inflight += partial["max_inflight"]
    return max_inflight
