"""The vectorized execution backend: columnar batches + compiled kernels.

Selected with ``ExecutorConfig(engine="vector")``; the default row backend
stays untouched.  Operators consume and produce :class:`ColumnBatch`
(column-major data with per-column validity information), predicates and
scalar expressions are compiled once per operator to closures over whole
columns (:mod:`repro.expressions.compile`), and every kernel reports the
same :class:`~repro.engine.stats.ExecutionStats` counters as the row
engine so the paper's §7 cost study is backend-independent.
"""

from repro.engine.vector.batch import ColumnBatch
from repro.engine.vector.executor import VectorExecutor

__all__ = ["ColumnBatch", "VectorExecutor"]
