"""Differential equivalence: row backend vs. vector backend, every workload.

The vector backend's correctness story is not "it has tests"; it is "on
every workload in :mod:`repro.workloads`, both backends produce
``=ⁿ``-identical multisets (Definition 1's duplicate semantics, NULL
grouping with NULL) *and* identical per-operator
:class:`~repro.engine.stats.ExecutionStats`".  This module is that check,
runnable three ways: from tests, from ``repro bench --quick`` in CI, and
ad hoc via :func:`run_differential`.

Coverage: SQL queries through the full session stack (parser → planner →
executor) on every generated workload — including a NULL-infested variant
exercising NULL group keys and NULL join keys — plus bare-algebra plans
hitting each physical operator (products, distinct projection, descending
sorts, 3VL selections, inequality joins, same-side equalities) under a
matrix of executor configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.algebra.ops import (
    AggregateSpec,
    Apply,
    Group,
    GroupApply,
    Join,
    PlanNode,
    Product,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.catalog.catalog import Database
from repro.engine.executor import ExecutorConfig, execute
from repro.engine.stats import ExecutionStats
from repro.expressions.builder import (
    and_,
    avg,
    between,
    col,
    count,
    count_star,
    eq,
    gt,
    in_,
    is_null_,
    like,
    lt,
    max_,
    min_,
    not_,
    or_,
    sum_,
)
from repro.session import Session
from repro.workloads.generators import (
    TwoTableSpec,
    make_two_table,
    populate_employee_department,
    populate_example4,
    populate_part_supplier,
    populate_printer_accounting,
    populate_retail,
)
from repro.workloads.schemas import (
    make_employee_department,
    make_part_supplier,
    make_printer_schema,
    make_retail_star,
)


@dataclass
class CaseResult:
    """Outcome of one (case, configuration) differential run."""

    case: str
    config: str
    results_match: bool
    stats_match: bool
    cardinality: int
    #: Spill counts per backend — excluded from the stats signature (they
    #: are resilience accounting, not operator semantics) but reported so
    #: budgeted sweeps can assert both backends made identical spill
    #: decisions.
    row_spills: int = 0
    vector_spills: int = 0

    @property
    def ok(self) -> bool:
        return self.results_match and self.stats_match


def stats_signature(stats: ExecutionStats) -> List[Tuple]:
    """Order-preserving per-operator fingerprint for cross-run comparison.

    Node ids differ between runs (they are object identities), so compare
    the recorded sequence of (kind, label, inputs, output, work) instead.
    """
    return [
        (s.kind, s.label, s.input_cardinalities, s.output_cardinality, s.work)
        for s in (stats.nodes[i] for i in stats.order)
    ]


def _config_label(config: ExecutorConfig) -> str:
    parts = [config.join_algorithm, config.aggregation]
    if config.exploit_orders:
        parts.append("exploit_orders")
    if config.expose_rowids:
        parts.append("rowids")
    return "+".join(parts)


# -- case catalog ------------------------------------------------------------


@dataclass
class SqlCase:
    """A SQL query run through the full Session stack in both engines."""

    name: str
    build: Callable[[bool], Database]  # quick -> populated database
    sql: str


@dataclass
class PlanCase:
    """A bare-algebra plan executed directly in both engines."""

    name: str
    build: Callable[[bool], Database]
    plan: Callable[[], PlanNode]  # fresh tree per run (node ids are keys)


def _example1(quick: bool) -> Database:
    db = make_employee_department()
    populate_employee_department(
        db, n_employees=300 if quick else 3000, n_departments=20, seed=1
    )
    return db


def _example2(quick: bool) -> Database:
    db = make_part_supplier()
    populate_part_supplier(db, n_parts=200 if quick else 1000, n_suppliers=25, seed=2)
    return db


def _example3(quick: bool) -> Database:
    db = make_printer_schema()
    populate_printer_accounting(db, n_users=60 if quick else 300, seed=3)
    return db


def _retail(quick: bool) -> Database:
    db = make_retail_star()
    populate_retail(db, n_sales=400 if quick else 4000, seed=4)
    return db


def _two_table(quick: bool) -> Database:
    return make_two_table(
        TwoTableSpec(n_a=300 if quick else 3000, n_b=40, a_groups=25, seed=5)
    )


def _example4(quick: bool) -> Database:
    return populate_example4(
        n_a=300 if quick else 3000, n_b=40, a_groups=250 if quick else 2500,
        match_rows=30, seed=6,
    )


def _nullable(quick: bool) -> Database:
    # NULL group keys and NULL join keys, both at once.
    return make_two_table(
        TwoTableSpec(
            n_a=300 if quick else 3000, n_b=40, a_groups=15,
            match_fraction=0.8, null_fraction=0.15, seed=7,
        )
    )


SQL_CASES: Tuple[SqlCase, ...] = (
    SqlCase(
        "example1/count-per-dept",
        _example1,
        "SELECT D.DeptID, D.Name, COUNT(E.EmpID) AS n "
        "FROM Employee E, Department D "
        "WHERE E.DeptID = D.DeptID GROUP BY D.DeptID, D.Name",
    ),
    SqlCase(
        "example2/parts-per-supplier",
        _example2,
        "SELECT S.SupplierNo, S.Name, COUNT(P.PartNo) AS parts "
        "FROM Part P, Supplier S "
        "WHERE P.SupplierNo = S.SupplierNo GROUP BY S.SupplierNo, S.Name",
    ),
    SqlCase(
        "example3/usage-on-dragon",
        _example3,
        "SELECT P.PNo, SUM(A.Usage) AS used "
        "FROM PrinterAuth A, Printer P, UserAccount U "
        "WHERE A.PNo = P.PNo AND A.UserId = U.UserId "
        "AND A.Machine = U.Machine AND U.Machine = 'dragon' "
        "GROUP BY P.PNo",
    ),
    SqlCase(
        "retail/per-customer",
        _retail,
        "SELECT C.CustID, C.Name, SUM(S.Amount) AS total "
        "FROM Sales S, Customer C "
        "WHERE S.CustID = C.CustID GROUP BY C.CustID, C.Name",
    ),
    SqlCase(
        "retail/by-region",
        _retail,
        "SELECT St.Region, COUNT(S.SaleID) AS n, SUM(S.Amount) AS total "
        "FROM Sales S, Store St "
        "WHERE S.StoreID = St.StoreID GROUP BY St.Region",
    ),
    SqlCase(
        "two_table/group-sum",
        _two_table,
        "SELECT A.GKey, COUNT(A.AId) AS n, SUM(A.Val) AS total "
        "FROM A, B WHERE A.BRef = B.BId GROUP BY A.GKey",
    ),
    SqlCase(
        "example4/selective-join",
        _example4,
        "SELECT A.GKey, COUNT(A.AId) AS n, SUM(A.Val) AS total "
        "FROM A, B WHERE A.BRef = B.BId GROUP BY A.GKey",
    ),
    SqlCase(
        "nullable/null-group-and-join-keys",
        _nullable,
        "SELECT A.GKey, COUNT(A.AId) AS n, SUM(A.Val) AS total, AVG(A.Val) AS av "
        "FROM A, B WHERE A.BRef = B.BId GROUP BY A.GKey",
    ),
    SqlCase(
        "nullable/scalar-aggregate",
        _nullable,
        "SELECT COUNT(A.Val) AS n, MIN(A.Val) AS mn, MAX(A.Val) AS mx FROM A",
    ),
)


def _plan_all_aggregates() -> PlanNode:
    return GroupApply(
        Relation("A", "A"),
        ["A.GKey"],
        [
            AggregateSpec("n", count_star()),
            AggregateSpec("nv", count(col("A.Val"))),
            AggregateSpec("s", sum_("A.Val")),
            AggregateSpec("a", avg("A.Val")),
            AggregateSpec("mn", min_("A.Val")),
            AggregateSpec("mx", max_("A.Val")),
            AggregateSpec("dc", count(col("A.Val"), distinct=True)),
            AggregateSpec("ds", sum_("A.Val", distinct=True)),
        ],
    )


def _plan_empty_scalar_aggregate() -> PlanNode:
    # GROUP BY () over an empty input: zero output rows in the algebra.
    filtered = Select(Relation("A", "A"), lt(col("A.Val"), -1))
    return Apply(
        Group(filtered, ()),
        [AggregateSpec("n", count_star()), AggregateSpec("s", sum_("A.Val"))],
    )


def _plan_join_group() -> PlanNode:
    joined = Join(
        Relation("A", "A"), Relation("B", "B"), eq(col("A.BRef"), col("B.BId"))
    )
    return GroupApply(
        joined,
        ["A.GKey"],
        [AggregateSpec("n", count_star()), AggregateSpec("s", sum_("A.Val"))],
    )


def _plan_same_side_equality() -> PlanNode:
    # A.GKey = A.Val binds entirely on the left: it must act as a residual
    # filter, not a join key (the extract_equi_keys regression).
    condition = and_(
        eq(col("A.BRef"), col("B.BId")), eq(col("A.GKey"), col("A.Val"))
    )
    return Join(Relation("A", "A"), Relation("B", "B"), condition)


def _plan_inequality_join() -> PlanNode:
    # No usable equi-key: all algorithms fall back to nested loop.
    small = Select(Relation("B", "B"), lt(col("B.BId"), 6))
    return Join(Relation("A", "A"), small, lt(col("A.GKey"), col("B.BId")))


def _plan_product_distinct() -> PlanNode:
    left = Project(Relation("A", "A"), ["A.GKey"], distinct=True)
    return Product(left, Select(Relation("B", "B"), lt(col("B.BId"), 4)))


def _plan_threevalued_select() -> PlanNode:
    condition = or_(
        and_(in_(col("A.GKey"), 1, 2, 3), between(col("A.Val"), 100, 800)),
        and_(not_(is_null_(col("A.BRef"))), gt(col("A.Val"), 950)),
    )
    return Select(Relation("A", "A"), condition)


def _plan_like_select() -> PlanNode:
    return Select(Relation("B", "B"), like(col("B.Name"), "B1%"))


def _plan_sort_mixed() -> PlanNode:
    return Sort(
        Project(Relation("A", "A"), ["A.GKey", "A.Val"]),
        ["A.GKey", "A.Val"],
        [False, True],
    )


def _plan_sorted_pipelined_group() -> PlanNode:
    # Sort feeds GroupApply: with exploit_orders + sort aggregation the
    # grouping skips its sort (pipelined aggregation, §2).
    return GroupApply(
        Sort(Relation("A", "A"), ["A.GKey"]),
        ["A.GKey"],
        [AggregateSpec("n", count_star()), AggregateSpec("mx", max_("A.Val"))],
    )


PLAN_CASES: Tuple[PlanCase, ...] = (
    PlanCase("plan/all-aggregates", _nullable, _plan_all_aggregates),
    PlanCase("plan/empty-scalar-aggregate", _nullable, _plan_empty_scalar_aggregate),
    PlanCase("plan/join-group", _nullable, _plan_join_group),
    PlanCase("plan/same-side-equality", _nullable, _plan_same_side_equality),
    PlanCase("plan/inequality-join", _nullable, _plan_inequality_join),
    PlanCase("plan/product-distinct", _nullable, _plan_product_distinct),
    PlanCase("plan/threevalued-select", _nullable, _plan_threevalued_select),
    PlanCase("plan/like-select", _nullable, _plan_like_select),
    PlanCase("plan/sort-mixed-directions", _nullable, _plan_sort_mixed),
    PlanCase("plan/sorted-pipelined-group", _nullable, _plan_sorted_pipelined_group),
)

#: Executor configurations every plan case runs under.
PLAN_CONFIGS: Tuple[ExecutorConfig, ...] = (
    ExecutorConfig(),
    ExecutorConfig(join_algorithm="nested_loop"),
    ExecutorConfig(join_algorithm="sort_merge"),
    ExecutorConfig(aggregation="sort"),
    ExecutorConfig(aggregation="sort", exploit_orders=True),
    ExecutorConfig(expose_rowids=True),
)

#: Executor configurations every SQL case runs under (through the planner).
SQL_CONFIGS: Tuple[ExecutorConfig, ...] = (
    ExecutorConfig(),
    ExecutorConfig(aggregation="sort", exploit_orders=True),
)


def run_differential(
    quick: bool = True, overrides: Optional[dict] = None
) -> List[CaseResult]:
    """Run every case through both backends; one :class:`CaseResult` per
    (case, configuration).  ``quick`` shrinks the data for CI smoke runs.

    ``overrides`` merges extra :class:`ExecutorConfig` fields into every
    configuration — e.g. ``{"memory_limit_bytes": 4096}`` re-runs the whole
    matrix under memory pressure, asserting the spill paths stay
    result- and stats-identical across backends.
    """
    results: List[CaseResult] = []
    extra = overrides or {}

    for sql_case in SQL_CASES:
        db = sql_case.build(quick)
        for config in SQL_CONFIGS:
            row_session = Session(
                db, executor_config=replace(config, engine="row", **extra)
            )
            vec_session = Session(
                db, executor_config=replace(config, engine="vector", **extra)
            )
            row_report = row_session.report(sql_case.sql)
            vec_report = vec_session.report(sql_case.sql)
            results.append(
                CaseResult(
                    sql_case.name,
                    _config_label(config),
                    row_report.result.equals_multiset(vec_report.result),
                    stats_signature(row_report.stats)
                    == stats_signature(vec_report.stats),
                    row_report.result.cardinality,
                    row_report.stats.spill_count,
                    vec_report.stats.spill_count,
                )
            )

    for plan_case in PLAN_CASES:
        db = plan_case.build(quick)
        for config in PLAN_CONFIGS:
            row_result, row_stats = execute(
                db, plan_case.plan(), replace(config, engine="row", **extra)
            )
            vec_result, vec_stats = execute(
                db, plan_case.plan(), replace(config, engine="vector", **extra)
            )
            results.append(
                CaseResult(
                    plan_case.name,
                    _config_label(config),
                    row_result.equals_multiset(vec_result)
                    and row_result.ordering == vec_result.ordering,
                    stats_signature(row_stats) == stats_signature(vec_stats),
                    row_result.cardinality,
                    row_stats.spill_count,
                    vec_stats.spill_count,
                )
            )

    return results


def failures(results: Sequence[CaseResult]) -> List[CaseResult]:
    return [r for r in results if not r.ok]


#: Morsel-pipeline configurations the full 78-case matrix re-runs under:
#: degenerate one-row morsels, a prime size that never divides the
#: fixtures evenly, a large power of two, streaming disabled entirely
#: (``None`` → the pre-morsel materialize-per-operator path), and the
#: multi-core dispatch at both interesting sizes.
MORSEL_MATRIX: Tuple[dict, ...] = (
    {"morsel_size": 1, "workers": 1},
    {"morsel_size": 7, "workers": 1},
    {"morsel_size": 7, "workers": 2},
    {"morsel_size": 1024, "workers": 1},
    {"morsel_size": 1024, "workers": 2},
    {"morsel_size": None, "workers": 1},
)


def morsel_config_label(overrides: dict) -> str:
    size = overrides.get("morsel_size", "default")
    parts = [f"morsel={'off' if size is None else size}"]
    if overrides.get("workers", 1) != 1:
        parts.append(f"workers={overrides['workers']}")
    if overrides.get("memory_limit_bytes") is not None:
        parts.append(f"budget={overrides['memory_limit_bytes']}")
    return "+".join(parts)


def run_morsel_matrix(
    quick: bool = True, budget_bytes: Optional[int] = 8192
) -> List[Tuple[str, List[CaseResult]]]:
    """The 78-case differential under every :data:`MORSEL_MATRIX` entry.

    Streaming morsel pipelines must be invisible: whatever the morsel
    size or worker count, both backends still agree case by case.  The
    optional ``budget_bytes`` entry re-runs the smallest morsel size
    under a working-set budget, pinning the deterministic-spill
    invariant (segments containing blocking aggregation run materialized
    under a budget, so spill decisions cannot depend on morsel shape).
    """
    sweeps: List[Tuple[str, List[CaseResult]]] = []
    entries = list(MORSEL_MATRIX)
    if budget_bytes is not None:
        entries.append(
            {"morsel_size": 7, "workers": 2, "memory_limit_bytes": budget_bytes}
        )
    for overrides in entries:
        sweeps.append(
            (morsel_config_label(overrides),
             run_differential(quick=quick, overrides=overrides))
        )
    return sweeps


#: Shard configurations the full matrix replays under: both partitioning
#: methods at 2 and 4 shards, plus the shards=1 identity row.  Every entry
#: must be invisible — sharded execution through the Exchange wire is
#: required to be *bit-identical* (rows, order, columns) to the unsharded
#: baseline on both engines.
SHARD_MATRIX: Tuple[dict, ...] = (
    {"shards": 1},
    {"shards": 2, "partitioning": "hash"},
    {"shards": 2, "partitioning": "range"},
    {"shards": 4, "partitioning": "hash"},
    {"shards": 4, "partitioning": "range"},
)


def shard_config_label(overrides: dict) -> str:
    shards = overrides.get("shards", 1)
    if shards == 1:
        return "shards=1"
    label = f"shards={shards}+{overrides.get('partitioning', 'hash')}"
    transport = overrides.get("transport", "memory")
    if transport != "memory":
        label += f"+{transport}"
    return label


def run_shard_matrix(
    quick: bool = True, transport: str = "memory"
) -> List[Tuple[str, List[CaseResult]]]:
    """The full differential under every :data:`SHARD_MATRIX` entry.

    For each (case, configuration) each engine's own unsharded run is its
    baseline; that engine's sharded run must reproduce it **bit for bit**
    — columns, rows in order, ordering claim — because shard-parallel
    execution may change where work happens, never what comes out.
    Across engines the usual differential contract holds (same multiset):
    physical row order under hash aggregation legitimately differs
    between backends, sharded or not.

    ``transport="socket"`` replays the whole matrix over the real shard
    RPC (one OS process per shard) — same bit-identity bar; the wire
    must be invisible too.
    """
    sweeps: List[Tuple[str, List[CaseResult]]] = []
    for base_overrides in SHARD_MATRIX:
        overrides = dict(base_overrides)
        if overrides.get("shards", 1) > 1 and transport != "memory":
            overrides["transport"] = transport
        results: List[CaseResult] = []

        def compare(name: str, config: ExecutorConfig, run) -> None:
            # Bit-identity is a same-engine promise: sharding must not
            # change what an engine emits, row for row.  Across engines the
            # usual differential contract applies (same multiset, same
            # ordering claim) — physical row order under hash aggregation
            # legitimately differs between backends.
            base_row, __ = run(replace(config, engine="row"))
            base_vec, __ = run(replace(config, engine="vector"))
            row_result, row_stats = run(
                replace(config, engine="row", **overrides)
            )
            vec_result, vec_stats = run(
                replace(config, engine="vector", **overrides)
            )
            identical = (
                row_result.columns == base_row.columns
                and vec_result.columns == base_vec.columns
                and row_result.rows == base_row.rows
                and vec_result.rows == base_vec.rows
                and row_result.ordering == base_row.ordering
                and vec_result.ordering == base_vec.ordering
                and vec_result.equals_multiset(base_row)
            )
            results.append(
                CaseResult(
                    name,
                    _config_label(config) + "+" + shard_config_label(overrides),
                    identical,
                    stats_signature(row_stats) == stats_signature(vec_stats),
                    base_row.cardinality,
                    row_stats.spill_count,
                    vec_stats.spill_count,
                )
            )

        for sql_case in SQL_CASES:
            db = sql_case.build(quick)

            def run_sql(config: ExecutorConfig, db=db, sql=sql_case.sql):
                report = Session(db, executor_config=config).report(sql)
                return report.result, report.stats

            for config in SQL_CONFIGS:
                compare(sql_case.name, config, run_sql)

        for plan_case in PLAN_CASES:
            db = plan_case.build(quick)

            def run_plan(config: ExecutorConfig, db=db, plan=plan_case.plan):
                return execute(db, plan(), config)

            for config in PLAN_CONFIGS:
                compare(plan_case.name, config, run_plan)

        sweeps.append((shard_config_label(overrides), results))
    return sweeps


def run_rewrite_differential(
    quick: bool = True,
    rewrite_sets: Optional[Sequence[Tuple[str, ...]]] = None,
) -> List[CaseResult]:
    """Differential audit of the certified rewrite pass.

    For every (case, configuration, rewrite-set) triple, run the case once
    on the row engine with rewrites disabled (the trusted baseline), then
    on both engines with the rewrite set enabled.  ``results_match``
    requires both rewritten runs to reproduce the baseline's multiset AND
    its ordering metadata — a rewrite that silently reorders an ORDER BY
    result or drops a column fails here even if the checker passed it.
    ``stats_match`` compares the two rewritten engines against each other
    (rewrites change plan shape, so baseline stats are not comparable).

    ``rewrite_sets`` defaults to each rule alone plus all rules together.
    """
    from repro.optimizer.rewrites import REWRITE_RULES

    sets: Tuple[Tuple[str, ...], ...]
    if rewrite_sets is None:
        sets = tuple((rule,) for rule in REWRITE_RULES) + (REWRITE_RULES,)
    else:
        sets = tuple(tuple(rs) for rs in rewrite_sets)
    results: List[CaseResult] = []

    for sql_case in SQL_CASES:
        db = sql_case.build(quick)
        for config in SQL_CONFIGS:
            base = Session(
                db, executor_config=replace(config, engine="row")
            ).report(sql_case.sql)
            for rewrite_set in sets:
                row_report = Session(
                    db,
                    executor_config=replace(
                        config, engine="row", rewrites=rewrite_set
                    ),
                ).report(sql_case.sql)
                vec_report = Session(
                    db,
                    executor_config=replace(
                        config, engine="vector", rewrites=rewrite_set
                    ),
                ).report(sql_case.sql)
                results.append(
                    CaseResult(
                        sql_case.name,
                        _config_label(config) + "+rw:" + ",".join(rewrite_set),
                        row_report.result.equals_multiset(base.result)
                        and vec_report.result.equals_multiset(base.result)
                        and row_report.result.ordering == base.result.ordering
                        and vec_report.result.ordering == base.result.ordering,
                        stats_signature(row_report.stats)
                        == stats_signature(vec_report.stats),
                        row_report.result.cardinality,
                        row_report.stats.spill_count,
                        vec_report.stats.spill_count,
                    )
                )

    for plan_case in PLAN_CASES:
        db = plan_case.build(quick)
        for config in PLAN_CONFIGS:
            base_result, __ = execute(
                db, plan_case.plan(), replace(config, engine="row")
            )
            for rewrite_set in sets:
                row_result, row_stats = execute(
                    db,
                    plan_case.plan(),
                    replace(config, engine="row", rewrites=rewrite_set),
                )
                vec_result, vec_stats = execute(
                    db,
                    plan_case.plan(),
                    replace(config, engine="vector", rewrites=rewrite_set),
                )
                results.append(
                    CaseResult(
                        plan_case.name,
                        _config_label(config) + "+rw:" + ",".join(rewrite_set),
                        row_result.equals_multiset(base_result)
                        and vec_result.equals_multiset(base_result)
                        and row_result.ordering == base_result.ordering
                        and vec_result.ordering == base_result.ordering,
                        stats_signature(row_stats) == stats_signature(vec_stats),
                        row_result.cardinality,
                        row_stats.spill_count,
                        vec_stats.spill_count,
                    )
                )

    return results


# -- fault-injection matrix ---------------------------------------------------


@dataclass
class FaultOutcome:
    """One (case, engine, operator, fault kind) injection outcome.

    ``mode`` is how the fault surfaced: ``"degraded"`` (vector kernel fell
    back to the row engine and the results matched the unfaulted run),
    ``"typed-error"`` (a :class:`~repro.errors.ReproError` carrying the
    operator breadcrumb), or ``"not-fired"`` (matrix bug: the planted
    fault never triggered).  ``ok`` means the outcome honours the
    resilience contract — anything else is a silent divergence.
    """

    case: str
    engine: str
    label: str
    kind: str
    mode: str
    ok: bool
    detail: str = ""


def _operator_labels(stats: ExecutionStats) -> List[str]:
    """Each executed operator's label, de-duplicated to one occurrence per
    (label, occurrence) injection coordinate."""
    return [stats.nodes[i].label for i in stats.order]


def _check_fault(
    case_name: str,
    engine: str,
    label: str,
    occurrence: int,
    kind: str,
    run,
    baseline,
    base_signature,
) -> FaultOutcome:
    """Inject one fault into one execution and classify the outcome."""
    from repro.engine import faults
    from repro.errors import ReproError, operator_path

    spec = faults.FaultSpec(
        kind, engine=engine, label=label, occurrence=occurrence
    )
    with faults.inject(spec) as injector:
        try:
            result, stats = run()
        except ReproError as error:
            path = operator_path(error)
            ok = bool(injector.fired) and any(label in frame for frame in path)
            return FaultOutcome(
                case_name, engine, label, kind, "typed-error", ok, str(error)
            )
        except Exception as error:  # bare escape: contract violation
            return FaultOutcome(
                case_name, engine, label, kind, "bare-error", False, repr(error)
            )
    if not injector.fired:
        return FaultOutcome(
            case_name, engine, label, kind, "not-fired", False,
            "planted fault never triggered",
        )
    # The execution completed despite the fault: only legal for a degraded
    # vector kernel (or a shard lost mid-exchange, which degrades the
    # Exchange to single-site execution), and only if the fallback
    # reproduced the unfaulted run.  The exchange case relaxes the stats
    # comparison — degrading away the wire legitimately changes which
    # operators execute — but never the result.
    if engine == "exchange":
        ok = (
            kind == "kernel"
            and stats.degradations >= 1
            and result.equals_multiset(baseline)
            and result.ordering == baseline.ordering
        )
    else:
        ok = (
            engine == "vector"
            and kind == "kernel"
            and stats.degradations >= 1
            and result.equals_multiset(baseline)
            and result.ordering == baseline.ordering
            and stats_signature(stats) == base_signature
        )
    return FaultOutcome(
        case_name, engine, label, kind,
        "degraded" if ok else "silent-divergence", ok,
        "" if ok else "completed without matching the unfaulted run",
    )


def run_fault_matrix(
    quick: bool = True,
    kinds: Sequence[str] = ("kernel",),
    overrides: Optional[dict] = None,
    engines: Sequence[str] = ("row", "vector"),
) -> List[FaultOutcome]:
    """Inject each fault kind at every operator of every case, both engines.

    For every workload case the unfaulted run enumerates the executed
    operators; each then gets one injected fault per kind and engine.  The
    contract: a vector kernel fault degrades to the row engine with results
    identical to the unfaulted run; every other fault (row kernel faults,
    allocation failures, timeouts) surfaces as a typed error whose
    breadcrumb names the faulted operator.  Zero silent divergences.

    ``overrides`` merges extra :class:`ExecutorConfig` fields into every
    run — e.g. ``{"morsel_size": 7, "workers": 2}`` replays the matrix
    with streaming morsel pipelines, asserting faults still degrade (or
    surface typed) identically when operators run fused and parallel.

    ``engines`` may include the pseudo-engine ``"exchange"`` (meaningful
    only with sharded ``overrides``): its injection point fires per shard
    delivery inside Exchange operators, and a kernel fault there must
    degrade the whole Exchange to single-site execution with the result
    unchanged.  Exchange injections only target Exchange operator labels;
    the execution itself runs on the row engine.
    """
    outcomes: List[FaultOutcome] = []
    extra = overrides or {}

    def sweep(case_name: str, run) -> None:
        baseline, base_stats = run()
        base_signature = stats_signature(base_stats)
        seen: dict = {}
        for label in _operator_labels(base_stats):
            occurrence = seen.get(label, 0)
            seen[label] = occurrence + 1
            for kind in kinds:
                for engine in engines:
                    if engine == "exchange" and "Exchange[" not in label:
                        continue
                    if engine == "vector" and "Exchange[" in label:
                        # The Exchange runner is engine-agnostic and has no
                        # vector kernel; its faults belong to the "exchange"
                        # pseudo-engine above.
                        continue
                    run_engine = "row" if engine == "exchange" else engine
                    outcomes.append(
                        _check_fault(
                            case_name, engine, label, occurrence, kind,
                            lambda engine=run_engine: run(engine),
                            baseline, base_signature,
                        )
                    )

    for sql_case in SQL_CASES:
        db = sql_case.build(quick)

        def run_sql(engine: str = "row", db=db, sql=sql_case.sql):
            session = Session(
                db, executor_config=ExecutorConfig(engine=engine, **extra)
            )
            report = session.report(sql)
            return report.result, report.stats

        sweep(sql_case.name, run_sql)

    for plan_case in PLAN_CASES:
        db = plan_case.build(quick)

        def run_plan(engine: str = "row", db=db, plan=plan_case.plan):
            return execute(db, plan(), ExecutorConfig(engine=engine, **extra))

        sweep(plan_case.name, run_plan)

    return outcomes


def fault_failures(outcomes: Sequence[FaultOutcome]) -> List[FaultOutcome]:
    return [o for o in outcomes if not o.ok]


def render_fault_outcomes(outcomes: Sequence[FaultOutcome]) -> str:
    lines = []
    for o in fault_failures(outcomes):
        lines.append(
            f"FAULT-LEAK {o.case} [{o.engine}] {o.label} ({o.kind}): "
            f"{o.mode} {o.detail}"
        )
    degraded = sum(1 for o in outcomes if o.mode == "degraded")
    typed = sum(1 for o in outcomes if o.mode == "typed-error")
    lines.append(
        f"{len(outcomes)} injections: {degraded} degraded, {typed} typed "
        f"errors, {len(fault_failures(outcomes))} contract violation(s)"
    )
    return "\n".join(lines)


def render_results(results: Sequence[CaseResult]) -> str:
    lines = []
    for r in results:
        mark = "ok " if r.ok else "DIVERGED"
        lines.append(
            f"{mark:<8} {r.case:<38} [{r.config}] rows={r.cardinality}"
            + ("" if r.results_match else " results!=")
            + ("" if r.stats_match else " stats!=")
        )
    bad = failures(results)
    lines.append(
        f"{len(results)} comparisons, {len(bad)} divergence(s)"
        if bad
        else f"{len(results)} comparisons, all equivalent"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="row-vs-vector differential equivalence harness"
    )
    parser.add_argument(
        "--full", action="store_true", help="run at full (slower) data sizes"
    )
    options = parser.parse_args(argv)
    results = run_differential(quick=not options.full)
    print(render_results(results))
    return 1 if failures(results) else 0


if __name__ == "__main__":
    raise SystemExit(main())
