"""UNION / EXCEPT / INTERSECT with SQL2 duplicate semantics.

Section 4.2 of the paper names these among the *duplicate operations*:
"Two rows are defined to be duplicates of one another exactly when each
pair of corresponding column values are duplicate", with NULL equal to
NULL.  The bag variants follow SQL2:

* ``UNION ALL``      — bag concatenation;
* ``UNION``          — distinct rows of the concatenation;
* ``EXCEPT ALL``     — bag difference (multiplicities subtract);
* ``EXCEPT``         — distinct left rows not occurring in the right;
* ``INTERSECT ALL``  — bag intersection (minimum multiplicity);
* ``INTERSECT``      — distinct common rows.

All comparisons use the ``=ⁿ`` key of
:func:`repro.sqltypes.values.group_key`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.engine.dataset import DataSet
from repro.errors import ExecutionError
from repro.sqltypes.values import SqlValue, group_key

OPERATORS = ("union", "except", "intersect")


def _check_compatible(left: DataSet, right: DataSet) -> None:
    if len(left.columns) != len(right.columns):
        raise ExecutionError(
            f"set operation over different arities: {len(left.columns)} "
            f"vs {len(right.columns)}"
        )


def _representatives(dataset: DataSet) -> Dict[Tuple, Tuple[SqlValue, ...]]:
    seen: Dict[Tuple, Tuple[SqlValue, ...]] = {}
    for row in dataset.rows:
        seen.setdefault(group_key(row), row)
    return seen


def union(left: DataSet, right: DataSet, all_rows: bool = False) -> Tuple[DataSet, int]:
    """UNION [ALL]; output uses the left input's column names."""
    _check_compatible(left, right)
    if all_rows:
        result = DataSet(left.columns, left.rows + right.rows)
        return result, left.cardinality + right.cardinality
    seen: Dict[Tuple, Tuple[SqlValue, ...]] = {}
    for row in left.rows + right.rows:
        seen.setdefault(group_key(row), row)
    result = DataSet(left.columns, seen.values())
    return result, left.cardinality + right.cardinality


def except_(left: DataSet, right: DataSet, all_rows: bool = False) -> Tuple[DataSet, int]:
    """EXCEPT [ALL]."""
    _check_compatible(left, right)
    work = left.cardinality + right.cardinality
    if all_rows:
        remaining = Counter(group_key(row) for row in right.rows)
        out_rows: List[Tuple[SqlValue, ...]] = []
        for row in left.rows:
            key = group_key(row)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                out_rows.append(row)
        return DataSet(left.columns, out_rows), work
    right_keys = {group_key(row) for row in right.rows}
    out = [
        row
        for key, row in _representatives(left).items()
        if key not in right_keys
    ]
    return DataSet(left.columns, out), work


def intersect(
    left: DataSet, right: DataSet, all_rows: bool = False
) -> Tuple[DataSet, int]:
    """INTERSECT [ALL]."""
    _check_compatible(left, right)
    work = left.cardinality + right.cardinality
    if all_rows:
        available = Counter(group_key(row) for row in right.rows)
        out_rows: List[Tuple[SqlValue, ...]] = []
        for row in left.rows:
            key = group_key(row)
            if available.get(key, 0) > 0:
                available[key] -= 1
                out_rows.append(row)
        return DataSet(left.columns, out_rows), work
    right_keys = {group_key(row) for row in right.rows}
    out = [
        row for key, row in _representatives(left).items() if key in right_keys
    ]
    return DataSet(left.columns, out), work


def apply_set_operation(
    operator: str, left: DataSet, right: DataSet, all_rows: bool
) -> Tuple[DataSet, int]:
    """Dispatch by operator name ('union' | 'except' | 'intersect')."""
    if operator == "union":
        return union(left, right, all_rows)
    if operator == "except":
        return except_(left, right, all_rows)
    if operator == "intersect":
        return intersect(left, right, all_rows)
    raise ExecutionError(f"unknown set operator {operator!r}")
