"""SQL value domain: NULL, three-valued logic, and data types."""

from repro.sqltypes.datatypes import (
    BOOLEAN,
    CHAR,
    DATE,
    DECIMAL,
    FLOAT,
    INTEGER,
    SMALLINT,
    VARCHAR,
    DataType,
    type_from_name,
)
from repro.sqltypes.truth import (
    FALSE,
    TRUE,
    UNKNOWN,
    Truth,
    ceil_interpret,
    floor_interpret,
    from_bool,
    null_equal,
    null_equal_rows,
    truth_all,
    truth_and,
    truth_any,
    truth_not,
    truth_or,
)
from repro.sqltypes.values import (
    NULL,
    NullsFirstKey,
    SqlValue,
    group_key,
    is_null,
    sort_key,
    sql_compare_eq,
    sql_compare_ge,
    sql_compare_gt,
    sql_compare_le,
    sql_compare_lt,
    sql_compare_ne,
)

__all__ = [
    "BOOLEAN", "CHAR", "DATE", "DECIMAL", "FLOAT", "INTEGER", "SMALLINT",
    "VARCHAR", "DataType", "type_from_name",
    "FALSE", "TRUE", "UNKNOWN", "Truth", "ceil_interpret", "floor_interpret",
    "from_bool", "null_equal", "null_equal_rows", "truth_all", "truth_and",
    "truth_any", "truth_not", "truth_or",
    "NULL", "NullsFirstKey", "SqlValue", "group_key", "is_null", "sort_key",
    "sql_compare_eq", "sql_compare_ge", "sql_compare_gt", "sql_compare_le",
    "sql_compare_lt", "sql_compare_ne",
]
