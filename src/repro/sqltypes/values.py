"""SQL value domain: NULL and comparisons under three-valued logic.

SQL2 represents missing information by the special value NULL.  We model it
with a dedicated singleton :data:`NULL` rather than Python's ``None`` so that
(a) ``None`` coming from ordinary Python code cannot silently leak into query
results and (b) NULL renders distinctly in debug output.

Comparison of SQL values returns a :class:`~repro.sqltypes.truth.Truth`:
any comparison involving NULL yields UNKNOWN.  Equality used by *duplicate*
operations is the separate ``=ⁿ`` (:func:`repro.sqltypes.truth.null_equal`).
"""

from __future__ import annotations

import datetime
import decimal
from typing import Union

from repro.errors import TypeMismatchError
from repro.sqltypes.truth import UNKNOWN, Truth, from_bool


class _Null:
    """The singleton SQL NULL marker."""

    _instance: "_Null | None" = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        raise TypeError("NULL has no Python truth value; use is_null()")

    def __reduce__(self):
        # Keep the singleton property across pickling.
        return (_Null, ())


NULL = _Null()

#: The Python types a (non-NULL) SQL value may take in this engine.
SqlScalar = Union[int, float, str, bool, decimal.Decimal, datetime.date]
SqlValue = Union[SqlScalar, _Null]


def is_null(value: object) -> bool:
    """True when ``value`` is the SQL NULL marker."""
    return value is NULL


_NUMERIC_TYPES = (int, float, decimal.Decimal)


def _comparable(left: object, right: object) -> bool:
    """Whether two non-NULL values live in the same comparison domain."""
    if isinstance(left, bool) != isinstance(right, bool):
        # bool is an int subclass in Python; keep BOOLEAN separate from
        # numerics the way SQL does.
        return False
    if isinstance(left, _NUMERIC_TYPES) and isinstance(right, _NUMERIC_TYPES):
        return True
    return type(left) is type(right) or (
        isinstance(left, str) and isinstance(right, str)
    )


def _require_comparable(left: object, right: object) -> None:
    if not _comparable(left, right):
        raise TypeMismatchError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )


def sql_compare_eq(left: object, right: object) -> Truth:
    """SQL ``=``: UNKNOWN if either side is NULL."""
    if is_null(left) or is_null(right):
        return UNKNOWN
    _require_comparable(left, right)
    return from_bool(left == right)


def sql_compare_ne(left: object, right: object) -> Truth:
    if is_null(left) or is_null(right):
        return UNKNOWN
    _require_comparable(left, right)
    return from_bool(left != right)


def sql_compare_lt(left: object, right: object) -> Truth:
    if is_null(left) or is_null(right):
        return UNKNOWN
    _require_comparable(left, right)
    return from_bool(left < right)


def sql_compare_le(left: object, right: object) -> Truth:
    if is_null(left) or is_null(right):
        return UNKNOWN
    _require_comparable(left, right)
    return from_bool(left <= right)


def sql_compare_gt(left: object, right: object) -> Truth:
    if is_null(left) or is_null(right):
        return UNKNOWN
    _require_comparable(left, right)
    return from_bool(left > right)


def sql_compare_ge(left: object, right: object) -> Truth:
    if is_null(left) or is_null(right):
        return UNKNOWN
    _require_comparable(left, right)
    return from_bool(left >= right)


def sql_add(left: object, right: object) -> SqlValue:
    """SQL ``+``: NULL-propagating arithmetic."""
    if is_null(left) or is_null(right):
        return NULL
    return left + right  # type: ignore[operator]


def sql_sub(left: object, right: object) -> SqlValue:
    if is_null(left) or is_null(right):
        return NULL
    return left - right  # type: ignore[operator]


def sql_mul(left: object, right: object) -> SqlValue:
    if is_null(left) or is_null(right):
        return NULL
    return left * right  # type: ignore[operator]


def sql_div(left: object, right: object) -> SqlValue:
    """SQL ``/``: NULL-propagating; division by zero is an execution error."""
    if is_null(left) or is_null(right):
        return NULL
    if right == 0:
        from repro.errors import ExecutionError

        raise ExecutionError("division by zero")
    if isinstance(left, int) and isinstance(right, int):
        # SQL integer division truncates toward zero.
        quotient = abs(left) // abs(right)
        return quotient if (left >= 0) == (right >= 0) else -quotient
    return left / right  # type: ignore[operator]


def sql_neg(value: object) -> SqlValue:
    if is_null(value):
        return NULL
    return -value  # type: ignore[operator]


class NullsFirstKey:
    """Sort key wrapper ordering NULL before every non-NULL value.

    SQL2 leaves NULL placement implementation-defined; we fix NULLS FIRST so
    sort-based grouping and sort-merge joins are deterministic.  All NULLs
    compare equal to each other here (duplicate semantics), which is exactly
    what grouping by sorting requires.
    """

    __slots__ = ("value",)

    def __init__(self, value: SqlValue) -> None:
        self.value = value

    def __lt__(self, other: "NullsFirstKey") -> bool:
        left_null = is_null(self.value)
        right_null = is_null(other.value)
        if left_null:
            return not right_null
        if right_null:
            return False
        return self.value < other.value  # type: ignore[operator]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NullsFirstKey):
            return NotImplemented
        left_null = is_null(self.value)
        right_null = is_null(other.value)
        if left_null or right_null:
            return left_null and right_null
        return self.value == other.value

    def __hash__(self) -> int:
        if is_null(self.value):
            return hash("<sql-null>")
        return hash(self.value)

    def __repr__(self) -> str:
        return f"NullsFirstKey({self.value!r})"


def sort_key(values: "tuple[SqlValue, ...] | list[SqlValue]") -> "tuple[NullsFirstKey, ...]":
    """Total-order sort key for a row of SQL values (NULLS FIRST)."""
    return tuple(NullsFirstKey(value) for value in values)


def group_key(values: "tuple[SqlValue, ...] | list[SqlValue]") -> "tuple[object, ...]":
    """Hashable duplicate-semantics key: NULLs collide with NULLs.

    Two rows produce the same key exactly when they are row-equivalent under
    ``=ⁿ`` (Definition 1 of the paper), so this key is safe for hash-based
    GROUP BY and DISTINCT.
    """
    return tuple(
        ("<sql-null>",) if is_null(value) else (type(value).__name__ if isinstance(value, bool) else "", value)
        for value in values
    )
