"""SQL data types and value validation/coercion.

The engine supports the data types used in the paper's examples (Figure 5):
SMALLINT, INTEGER, CHARACTER(n), plus the usual companions VARCHAR, DECIMAL,
FLOAT, BOOLEAN and DATE.  A :class:`DataType` validates and lightly coerces
Python values at insert time; NULL is accepted by every type (nullability is
a *constraint*, not part of the type).
"""

from __future__ import annotations

import datetime
import decimal
from dataclasses import dataclass
from typing import Optional

from repro.errors import TypeMismatchError
from repro.sqltypes.values import NULL, SqlValue, is_null

_SMALLINT_MIN = -(2**15)
_SMALLINT_MAX = 2**15 - 1
_INTEGER_MIN = -(2**31)
_INTEGER_MAX = 2**31 - 1


@dataclass(frozen=True)
class DataType:
    """Base class for SQL data types."""

    def validate(self, value: object) -> SqlValue:
        """Check/coerce ``value``; raise :class:`TypeMismatchError` if bad."""
        raise NotImplementedError

    @property
    def type_name(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.type_name


@dataclass(frozen=True)
class SmallIntType(DataType):
    def validate(self, value: object) -> SqlValue:
        if is_null(value):
            return NULL
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(f"SMALLINT got {type(value).__name__}")
        if not _SMALLINT_MIN <= value <= _SMALLINT_MAX:
            raise TypeMismatchError(f"SMALLINT out of range: {value}")
        return value

    @property
    def type_name(self) -> str:
        return "SMALLINT"


@dataclass(frozen=True)
class IntegerType(DataType):
    def validate(self, value: object) -> SqlValue:
        if is_null(value):
            return NULL
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(f"INTEGER got {type(value).__name__}")
        if not _INTEGER_MIN <= value <= _INTEGER_MAX:
            raise TypeMismatchError(f"INTEGER out of range: {value}")
        return value

    @property
    def type_name(self) -> str:
        return "INTEGER"


@dataclass(frozen=True)
class FloatType(DataType):
    def validate(self, value: object) -> SqlValue:
        if is_null(value):
            return NULL
        if isinstance(value, bool):
            raise TypeMismatchError("FLOAT got bool")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, decimal.Decimal):
            return float(value)
        raise TypeMismatchError(f"FLOAT got {type(value).__name__}")

    @property
    def type_name(self) -> str:
        return "FLOAT"


@dataclass(frozen=True)
class DecimalType(DataType):
    precision: int = 18
    scale: int = 0

    def validate(self, value: object) -> SqlValue:
        if is_null(value):
            return NULL
        if isinstance(value, bool):
            raise TypeMismatchError("DECIMAL got bool")
        if isinstance(value, (int, decimal.Decimal)):
            result = decimal.Decimal(value)
        elif isinstance(value, float):
            result = decimal.Decimal(str(value))
        else:
            raise TypeMismatchError(f"DECIMAL got {type(value).__name__}")
        digits = result.as_tuple()
        if len(digits.digits) > self.precision:
            raise TypeMismatchError(
                f"DECIMAL({self.precision},{self.scale}) overflow: {value}"
            )
        return result

    @property
    def type_name(self) -> str:
        return f"DECIMAL({self.precision},{self.scale})"


@dataclass(frozen=True)
class CharType(DataType):
    """CHARACTER(n): fixed length, blank-padded on comparison per SQL.

    We store strings as given but reject over-length values; trailing-blank
    insensitivity is handled by equality on stripped values being out of
    scope for this reproduction (the paper never relies on it).
    """

    length: int = 1

    def validate(self, value: object) -> SqlValue:
        if is_null(value):
            return NULL
        if not isinstance(value, str):
            raise TypeMismatchError(f"CHARACTER got {type(value).__name__}")
        if len(value) > self.length:
            raise TypeMismatchError(
                f"CHARACTER({self.length}) got string of length {len(value)}"
            )
        return value

    @property
    def type_name(self) -> str:
        return f"CHARACTER({self.length})"


@dataclass(frozen=True)
class VarCharType(DataType):
    length: int = 255

    def validate(self, value: object) -> SqlValue:
        if is_null(value):
            return NULL
        if not isinstance(value, str):
            raise TypeMismatchError(f"VARCHAR got {type(value).__name__}")
        if len(value) > self.length:
            raise TypeMismatchError(
                f"VARCHAR({self.length}) got string of length {len(value)}"
            )
        return value

    @property
    def type_name(self) -> str:
        return f"VARCHAR({self.length})"


@dataclass(frozen=True)
class BooleanType(DataType):
    def validate(self, value: object) -> SqlValue:
        if is_null(value):
            return NULL
        if not isinstance(value, bool):
            raise TypeMismatchError(f"BOOLEAN got {type(value).__name__}")
        return value

    @property
    def type_name(self) -> str:
        return "BOOLEAN"


@dataclass(frozen=True)
class DateType(DataType):
    def validate(self, value: object) -> SqlValue:
        if is_null(value):
            return NULL
        if isinstance(value, datetime.datetime):
            raise TypeMismatchError("DATE got datetime (use date)")
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value)
            except ValueError as exc:
                raise TypeMismatchError(f"DATE got unparsable string {value!r}") from exc
        raise TypeMismatchError(f"DATE got {type(value).__name__}")

    @property
    def type_name(self) -> str:
        return "DATE"


SMALLINT = SmallIntType()
INTEGER = IntegerType()
FLOAT = FloatType()
BOOLEAN = BooleanType()
DATE = DateType()


def CHAR(length: int) -> CharType:
    """Construct a CHARACTER(n) type."""
    return CharType(length)


def VARCHAR(length: int) -> VarCharType:
    """Construct a VARCHAR(n) type."""
    return VarCharType(length)


def DECIMAL(precision: int = 18, scale: int = 0) -> DecimalType:
    """Construct a DECIMAL(p, s) type."""
    return DecimalType(precision, scale)


def type_from_name(name: str, *params: int) -> DataType:
    """Resolve a type name (as produced by the parser) to a :class:`DataType`."""
    upper = name.upper()
    if upper == "SMALLINT":
        return SMALLINT
    if upper in ("INTEGER", "INT"):
        return INTEGER
    if upper in ("FLOAT", "REAL", "DOUBLE"):
        return FLOAT
    if upper == "BOOLEAN":
        return BOOLEAN
    if upper == "DATE":
        return DATE
    if upper in ("CHARACTER", "CHAR"):
        return CHAR(params[0] if params else 1)
    if upper in ("VARCHAR", "CHARACTER VARYING"):
        return VARCHAR(params[0] if params else 255)
    if upper in ("DECIMAL", "NUMERIC"):
        if len(params) >= 2:
            return DECIMAL(params[0], params[1])
        if len(params) == 1:
            return DECIMAL(params[0])
        return DECIMAL()
    raise TypeMismatchError(f"unknown SQL type: {name}")
