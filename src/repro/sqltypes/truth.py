"""SQL2 three-valued logic.

Implements Figure 2 of the paper (the AND/OR truth tables), the NOT
connective, and the machinery of Figure 3:

* the *interpretation operators* ``⌊P⌋`` (:func:`floor_interpret`, UNKNOWN
  becomes false) and ``⌈P⌉`` (:func:`ceil_interpret`, UNKNOWN becomes true),
* the *null-aware equality* ``=ⁿ`` (:func:`null_equal`) used by all SQL2
  duplicate operations (GROUP BY, DISTINCT, UNION, ...): two values are
  duplicates when they are equal and both non-NULL, or when both are NULL.

A search condition in a WHERE clause admits a row only when it evaluates to
:data:`TRUE`; :data:`UNKNOWN` is interpreted as false there (``⌊P⌋``).
"""

from __future__ import annotations

import enum
from typing import Iterable


class Truth(enum.Enum):
    """A truth value of SQL2's three-valued logic."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        # Deliberately forbid accidental two-valued use: callers must pick an
        # interpretation operator.  ``if truth_value:`` would silently treat
        # UNKNOWN as... whatever Python decided, which is exactly the class of
        # bug the paper's Figure 3 operators exist to prevent.
        raise TypeError(
            "Truth values are three-valued; use floor_interpret()/"
            "ceil_interpret() (or .is_true()) to collapse to bool"
        )

    def is_true(self) -> bool:
        """``⌊self⌋``: true only when the value is TRUE."""
        return self is Truth.TRUE

    def is_false(self) -> bool:
        return self is Truth.FALSE

    def is_unknown(self) -> bool:
        return self is Truth.UNKNOWN

    def __and__(self, other: "Truth") -> "Truth":
        return truth_and(self, other)

    def __or__(self, other: "Truth") -> "Truth":
        return truth_or(self, other)

    def __invert__(self) -> "Truth":
        return truth_not(self)


TRUE = Truth.TRUE
FALSE = Truth.FALSE
UNKNOWN = Truth.UNKNOWN


def truth_and(left: Truth, right: Truth) -> Truth:
    """SQL2 AND (Figure 2): FALSE dominates, then UNKNOWN."""
    if left is FALSE or right is FALSE:
        return FALSE
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    return TRUE


def truth_or(left: Truth, right: Truth) -> Truth:
    """SQL2 OR (Figure 2): TRUE dominates, then UNKNOWN."""
    if left is TRUE or right is TRUE:
        return TRUE
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    return FALSE


def truth_not(value: Truth) -> Truth:
    """SQL2 NOT: swaps TRUE/FALSE, leaves UNKNOWN fixed."""
    if value is TRUE:
        return FALSE
    if value is FALSE:
        return TRUE
    return UNKNOWN


def truth_all(values: Iterable[Truth]) -> Truth:
    """Fold :func:`truth_and` over ``values`` (empty -> TRUE)."""
    result = TRUE
    for value in values:
        result = truth_and(result, value)
        if result is FALSE:
            return FALSE
    return result


def truth_any(values: Iterable[Truth]) -> Truth:
    """Fold :func:`truth_or` over ``values`` (empty -> FALSE)."""
    result = FALSE
    for value in values:
        result = truth_or(result, value)
        if result is TRUE:
            return TRUE
    return result


def from_bool(value: bool) -> Truth:
    """Lift a Python bool into the three-valued domain."""
    return TRUE if value else FALSE


def floor_interpret(value: Truth) -> bool:
    """``⌊P⌋`` of Figure 3: interpret UNKNOWN as false.

    This is the WHERE-clause interpretation: a row qualifies only if the
    search condition is TRUE.
    """
    return value is TRUE


def ceil_interpret(value: Truth) -> bool:
    """``⌈P⌉`` of Figure 3: interpret UNKNOWN as true."""
    return value is not FALSE


def null_equal(left: object, right: object) -> bool:
    """The ``=ⁿ`` operator of Figure 3 (duplicate semantics).

    Returns a plain bool, per the paper's definition: TRUE when both operands
    are NULL, otherwise ``⌊left = right⌋``.  Used by GROUP BY, DISTINCT and the
    functional-dependency definitions of Section 4.3.
    """
    from repro.sqltypes.values import is_null, sql_compare_eq

    if is_null(left) and is_null(right):
        return True
    return floor_interpret(sql_compare_eq(left, right))


def null_equal_rows(left: Iterable[object], right: Iterable[object]) -> bool:
    """Row equivalence (Definition 1): pairwise ``=ⁿ`` over column values."""
    left_values = tuple(left)
    right_values = tuple(right)
    if len(left_values) != len(right_values):
        return False
    return all(null_equal(lv, rv) for lv, rv in zip(left_values, right_values))
