"""The top-level user API: a SQL session over an in-memory database.

:class:`Session` ties the whole stack together — parse, bind, normalize,
test the transformation, choose a plan cost-based, execute::

    from repro import Session

    session = Session()
    session.execute("CREATE TABLE Department (DeptID INTEGER PRIMARY KEY, "
                    "Name VARCHAR(30))")
    session.execute("INSERT INTO Department VALUES (1, 'Engineering')")
    result = session.query("SELECT D.DeptID, D.Name, COUNT(E.EmpID) "
                           "FROM Employee E, Department D "
                           "WHERE E.DeptID = D.DeptID GROUP BY D.DeptID, D.Name")
    print(result.to_pretty())

``query`` returns a :class:`~repro.engine.dataset.DataSet`; ``explain``
returns the full :class:`QueryReport` (chosen strategy, estimated costs,
TestFD verdict, executed statistics) without hiding anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.algebra.display import render_annotated
from repro.algebra.ops import Apply, Group, PlanNode, Project, fuse_group_apply
from repro.catalog.catalog import Database
from repro.core.partition import FlatQuery, to_group_by_join_query
from repro.core.planbuild import build_join_tree
from repro.core.query_class import GroupByJoinQuery
from repro.core.transform import TransformationDecision
from repro.core.viewmerge import merge_aggregated_view
from repro.engine.aggregation import evaluate_aggregate_expression
from repro.engine.dataset import DataSet
from repro.engine.executor import Executor, ExecutorConfig
from repro.engine.stats import ExecutionStats
from repro.errors import ParseError, TransformationError
from repro.optimizer.planner import PlanChoice, Planner
from repro.parser.ast_nodes import SelectStatement, SetOperationStatement
from repro.parser.binder import bind_select, execute_statement
from repro.parser.parser import parse_statement
from repro.sqltypes.values import SqlValue


@dataclass
class QueryReport:
    """Everything the session knows about one executed query."""

    result: DataSet
    plan: PlanNode
    strategy: str  # "eager" | "standard" | "simple" | "scalar-aggregate"
    stats: ExecutionStats
    choice: Optional[PlanChoice] = None
    rewrites: Tuple = ()  # RuleCertificates of applied certified rewrites
    #: The commit epoch this query's snapshot was pinned at, when the
    #: query ran through the multi-session server (None otherwise).
    snapshot_epoch: Optional[int] = None

    @property
    def certificate(self):
        """The rewrite certificate attached to the executed plan, if any."""
        from repro.analysis.certificates import get_certificate

        return get_certificate(self.plan)

    @property
    def distribution_certificate(self):
        """The R704 shard-exchange certificate, when the plan was sharded."""
        from repro.optimizer.distribute import distribution_certificate

        return distribution_certificate(self.plan)

    def explain(self, certify: bool = False) -> str:
        """The plan-choice story; ``certify=True`` appends the rewrite
        certificate (re-audited first) when the plan carries one."""
        lines = [f"strategy: {self.strategy}"]
        if self.choice is not None:
            lines.append(f"standard cost (est.): {self.choice.standard_cost:.1f}")
            if self.choice.eager_cost is not None:
                lines.append(f"eager cost (est.):    {self.choice.eager_cost:.1f}")
            lines.append(f"transformable: {self.choice.decision.valid} "
                         f"({self.choice.decision.reason})")
        if self.rewrites:
            lines.append(
                "certified rewrites: "
                + ", ".join(certificate.rule for certificate in self.rewrites)
            )
        lines.append(render_annotated(self.plan, self.stats.cardinality_map()))
        pipelines = self.stats.pipelines
        if pipelines is not None:
            lines.append(
                f"pipelines: {pipelines.segments} segments, "
                f"{pipelines.morsels} morsels, max in-flight "
                f"~{pipelines.max_inflight_bytes} bytes"
            )
        for exchange in self.stats.exchanges:
            lines.append(f"exchange: {exchange.describe()}")
        distribution = self.distribution_certificate
        if distribution is not None:
            estimated = distribution.premise_values("estimated-shipped-rows")
            if estimated:
                lines.append(
                    f"exchange estimate: ~{float(estimated[0]):.0f} rows to ship "
                    f"({distribution.premise_values('strategy')[0]})"
                )
        if certify:
            certificate = self.certificate
            if certificate is None and not self.rewrites:
                lines.append(
                    "no rewrite certificate (plan is not a certified eager plan)"
                )
            if certificate is not None:
                lines.append(certificate.render())
            for rule_certificate in self.rewrites:
                lines.append(rule_certificate.render())
        return "\n".join(lines)


class Session:
    """A SQL session: DDL/DML via :meth:`execute`, queries via :meth:`query`."""

    def __init__(
        self,
        database: Optional[Database] = None,
        policy: str = "cost",
        executor_config: ExecutorConfig = ExecutorConfig(),
        params: Optional[Mapping[str, SqlValue]] = None,
    ) -> None:
        self.database = database if database is not None else Database()
        self.policy = policy
        self.executor_config = executor_config
        self.params = params

    # -- statements -------------------------------------------------------------

    def execute(self, sql: str) -> None:
        """Run a DDL or INSERT statement."""
        statement = parse_statement(sql)
        if isinstance(statement, (SelectStatement, SetOperationStatement)):
            raise ParseError("use query() for SELECT statements")
        execute_statement(self.database, statement)

    def query(self, sql: str, params: Optional[Mapping[str, SqlValue]] = None) -> DataSet:
        """Run a SELECT and return its result."""
        return self.report(sql, params).result

    def report(
        self, sql: str, params: Optional[Mapping[str, SqlValue]] = None
    ) -> QueryReport:
        """Run a SELECT and return the result plus plan/cost/stats detail."""
        statement = parse_statement(sql)
        if not isinstance(statement, (SelectStatement, SetOperationStatement)):
            raise ParseError("report()/query() take a SELECT statement")
        return self.report_statement(statement, params)

    def report_statement(
        self,
        statement: "SelectStatement | SetOperationStatement",
        params: Optional[Mapping[str, SqlValue]] = None,
    ) -> QueryReport:
        """Run an already-parsed SELECT or set operation."""
        effective = params if params is not None else self.params
        if isinstance(statement, SetOperationStatement):
            return self._run_set_operation(statement, effective)
        return self._run_select(statement, effective)

    def _run_set_operation(
        self, statement: SetOperationStatement, params: Optional[Mapping[str, SqlValue]]
    ) -> QueryReport:
        """UNION/EXCEPT/INTERSECT: run both sides, combine with =ⁿ
        duplicate semantics (§4.2), apply any trailing ORDER BY."""
        from repro.engine.setops import apply_set_operation
        from repro.engine.sorting import sort_dataset

        left = self.report_statement(statement.left, params)
        right = self.report_statement(statement.right, params)
        combined, __ = apply_set_operation(
            statement.operator, left.result, right.result, statement.all_rows
        )
        stats = ExecutionStats()
        for source in (left.stats, right.stats):
            for node_id in source.order:
                stats.record(node_id, source.nodes[node_id])
        report = QueryReport(
            combined,
            left.plan,
            f"set-{statement.operator}{'-all' if statement.all_rows else ''}",
            stats,
        )
        if statement.order_by:
            columns = [item.column.qualified for item in statement.order_by]
            descending = [item.descending for item in statement.order_by]
            ordered, __ = sort_dataset(report.result, columns, descending)
            report.result = ordered
        return report

    # -- internals -----------------------------------------------------------

    def _run_select(
        self, statement: SelectStatement, params: Optional[Mapping[str, SqlValue]]
    ) -> QueryReport:
        report = self._run_select_unordered(statement, params)
        return self._apply_order_by(report, statement)

    def _run_select_unordered(
        self, statement: SelectStatement, params: Optional[Mapping[str, SqlValue]]
    ) -> QueryReport:
        statement = self._resolve_subqueries(statement, params)
        uses_view = any(
            t.name in self.database.views for t in statement.from_tables
        )
        if uses_view:
            query = merge_aggregated_view(self.database, statement)
            return self._run_group_query(query, params)

        flat = bind_select(self.database, statement)
        if not flat.group_by:
            return self._run_ungrouped(flat, params)
        try:
            query = to_group_by_join_query(flat)
        except TransformationError:
            # No R1/R2 partition (e.g. single-table GROUP BY, or aggregation
            # columns everywhere): run the standard plan directly.
            return self._run_flat_standard(flat, params)
        return self._run_group_query(query, params)

    def _resolve_subqueries(
        self, statement: SelectStatement, params: Optional[Mapping[str, SqlValue]]
    ) -> SelectStatement:
        """Materialize uncorrelated IN-subqueries into value lists.

        ``x IN (SELECT c FROM ...)`` becomes ``x IN (v1, ..., vn)`` over the
        subquery's distinct values.  A NULL in the subquery result stays in
        the list, so the rewritten :class:`InList` reproduces SQL's
        three-valued IN semantics (a non-matching x then yields UNKNOWN).
        An empty result rewrites to constant FALSE (TRUE for NOT IN).
        Correlated subqueries surface as binding errors inside the nested
        run, with a hint appended.
        """
        from repro.errors import BindingError
        from repro.expressions.ast import (
            Expression,
            InList,
            InSubquery,
            Literal,
            transform_expression,
        )
        from repro.sqltypes.values import group_key

        def resolve(node: Expression):
            if not isinstance(node, InSubquery):
                return None
            subquery = node.subquery
            if not isinstance(subquery, SelectStatement):
                raise ParseError("IN-subquery has no parsed SELECT")
            try:
                inner = self._run_select(subquery, params)
            except BindingError as error:
                raise BindingError(
                    f"{error} (note: correlated subqueries are not supported; "
                    "IN-subqueries must be self-contained)"
                ) from error
            if len(inner.result.columns) != 1:
                raise ParseError(
                    "IN-subquery must produce exactly one column, got "
                    f"{len(inner.result.columns)}"
                )
            seen = {}
            for (value,) in inner.result.rows:
                seen.setdefault(group_key((value,)), value)
            values = list(seen.values())
            if not values:
                return Literal(bool(node.negated))
            items = tuple(Literal(value) for value in values)
            return InList(node.operand, items, node.negated)

        def rewrite(expression):
            if expression is None:
                return None
            return transform_expression(expression, resolve)

        new_where = rewrite(statement.where)
        new_having = rewrite(statement.having)
        if new_where is statement.where and new_having is statement.having:
            return statement
        return SelectStatement(
            statement.distinct,
            statement.items,
            statement.from_tables,
            new_where,
            statement.group_by,
            new_having,
            statement.order_by,
        )

    def _apply_order_by(
        self, report: QueryReport, statement: SelectStatement
    ) -> QueryReport:
        """ORDER BY is presentation-level: sort the finished result.

        Keys may be output column names (qualified or bare) or SELECT
        aliases; :meth:`DataSet.index_of` resolves both.
        """
        if not statement.order_by:
            return report
        from repro.engine.sorting import sort_dataset

        columns = [item.column.qualified for item in statement.order_by]
        descending = [item.descending for item in statement.order_by]
        ordered, __ = sort_dataset(report.result, columns, descending)
        report.result = ordered
        return report

    def _executor(self, params: Optional[Mapping[str, SqlValue]]) -> Executor:
        return Executor(self.database, self.executor_config, params)

    def _run_plan(self, plan: PlanNode, params: Optional[Mapping[str, SqlValue]]):
        """Execute ``plan``; returns (result, stats, executed plan).

        The executed plan can differ from ``plan`` when shard distribution
        wrapped it in an Exchange — the report carries the executed form so
        explain() shows the wire.
        """
        executor = self._executor(params)
        result, stats = executor.run(plan)
        executed = executor.executed_plan
        return result, stats, executed if executed is not None else plan

    def _maybe_rewrite(self, plan: PlanNode):
        """Apply configured certified rewrites; (plan, certificates)."""
        if not self.executor_config.rewrites:
            return plan, ()
        from repro.optimizer.rewrites import apply_rewrites

        algorithm = self.executor_config.join_algorithm
        outcome = apply_rewrites(
            fuse_group_apply(plan),
            self.database,
            self.executor_config.rewrites,
            join_algorithm="hash" if algorithm == "auto" else algorithm,
        )
        return outcome.plan, outcome.certificates

    def _run_group_query(
        self, query: GroupByJoinQuery, params: Optional[Mapping[str, SqlValue]]
    ) -> QueryReport:
        planner = Planner(
            self.database,
            policy=self.policy,
            engine=self.executor_config.engine,
            workers=self.executor_config.workers,
        )
        choice = planner.choose(query)
        # Fuse Group/Apply before running so the report's plan nodes carry
        # the executor's per-node statistics (the executor would fuse to
        # fresh nodes otherwise and the annotations would not line up).
        plan = fuse_group_apply(choice.plan)
        if plan is not choice.plan:
            # Fusing rebuilt the root: carry the rewrite certificate over.
            from repro.analysis.certificates import attach_certificate, get_certificate

            certificate = get_certificate(choice.plan)
            if certificate is not None:
                attach_certificate(plan, certificate)
        plan, rewrites = self._maybe_rewrite(plan)
        result, stats, plan = self._run_plan(plan, params)
        return QueryReport(result, plan, choice.strategy, stats, choice, rewrites)

    def _run_flat_standard(
        self, flat: FlatQuery, params: Optional[Mapping[str, SqlValue]]
    ) -> QueryReport:
        from repro.core.having import grouped_plan_with_having

        tree = build_join_tree(flat.bindings, flat.where)
        columns = flat.select_group_columns + tuple(s.name for s in flat.aggregates)
        plan = fuse_group_apply(
            grouped_plan_with_having(
                tree, flat.group_by, flat.aggregates, flat.having,
                columns, flat.distinct,
            )
        )
        plan, rewrites = self._maybe_rewrite(plan)
        result, stats, plan = self._run_plan(plan, params)
        return QueryReport(result, plan, "standard", stats, rewrites=rewrites)

    def _run_ungrouped(
        self, flat: FlatQuery, params: Optional[Mapping[str, SqlValue]]
    ) -> QueryReport:
        tree = build_join_tree(flat.bindings, flat.where)
        if flat.aggregates:
            # Scalar aggregate: SQL yields exactly one row even on empty
            # input (unlike GROUP BY ()); patch the empty case explicitly.
            plan: PlanNode = fuse_group_apply(Apply(Group(tree, ()), flat.aggregates))
            plan, rewrites = self._maybe_rewrite(plan)
            result, stats, plan = self._run_plan(plan, params)
            if result.cardinality == 0:
                empty_input = DataSet((), [])
                row = tuple(
                    evaluate_aggregate_expression(spec.expression, empty_input, [], params)
                    for spec in flat.aggregates
                )
                result = DataSet(result.columns, [row])
            return QueryReport(
                result, plan, "scalar-aggregate", stats, rewrites=rewrites
            )
        plan = Project(tree, flat.select_group_columns, flat.distinct)
        plan, rewrites = self._maybe_rewrite(plan)
        result, stats, plan = self._run_plan(plan, params)
        return QueryReport(result, plan, "simple", stats, rewrites=rewrites)
