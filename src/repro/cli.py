"""The ``repro`` command line: a SQL shell plus analysis subcommands.

``python -m repro`` (or plain ``repro``) opens the interactive shell:

* any SQL statement terminated by ``;`` — DDL/INSERT execute, SELECTs run
  through the cost-based planner and print their result;
* ``.explain [--certify] <select>;`` — show the chosen strategy, estimated
  costs, the TestFD verdict and the annotated plan (and, with
  ``--certify``, the rewrite certificate) instead of rows;
* ``.script <path>`` — run a ``;``-separated SQL file;
* ``.tables`` — list tables and views;
* ``.policy cost|always_eager|never_eager`` — switch the planner policy;
* ``.help`` / ``.quit``.

Subcommands (no REPL):

* ``repro lint <script.sql|dir>...`` — statically verify every query of
  the scripts without executing them (``--workloads`` lints the built-in
  paper workloads, ``--rules`` prints the rule catalogue, ``--info``
  includes INFO-severity notes, ``--rewrites`` additionally runs the
  certified rewrite pass on each query and audits every certificate with
  the plan-equivalence checker, ``--format json`` emits one machine
  readable report per file with stable rule codes and line numbers).
  Directory arguments expand to their ``*.sql`` files.  Exits nonzero on
  ERROR findings.
* ``repro explain [--certify] [--rewrites] <script.sql>...`` — run the
  scripts and print each SELECT's plan-choice report instead of its rows
  (``--rewrites`` enables the certified rewrite pass so reports list the
  rewrite certificates).
* ``repro bench [--quick] [--out path] [--repeat n]`` — time the paper's
  workload scenarios on both execution backends (row vs. vector), check
  result/stats parity, and write ``BENCH_vector.json``; ``--quick`` is
  the CI smoke mode (small data + the differential-equivalence harness);
  ``--server`` runs the concurrent multi-session workload instead and
  writes ``BENCH_server.json``; ``--distributed`` measures the §7
  shard-parallel transfer volumes (eager vs ship-all, planner choice,
  bit-identity audit) and writes ``BENCH_distributed.json``.
* ``repro serve [--port P] [--max-slots N] [script.sql ...]`` — run the
  multi-session TCP server (snapshot reads, serialized writes, admission
  control; see :mod:`repro.server`).
* ``repro shard-worker [--host H] [--port P]`` — serve one shard of the
  socket transport (:mod:`repro.server.transport`); spawned per shard by
  the coordinator's pool, or started by hand on other hosts.  The global
  ``--transport {memory,socket}`` flag picks the session's shard wire.
"""

from __future__ import annotations

import sys
from typing import Iterable, Optional, TextIO

from repro.catalog.catalog import Database
from repro.errors import ReproError, error_exit_code
from repro.optimizer.planner import POLICIES
from repro.parser.ast_nodes import SelectStatement, SetOperationStatement
from repro.parser.binder import execute_statement
from repro.parser.parser import parse_script, parse_statement
from repro.session import Session

PROMPT = "sql> "
CONTINUATION = "...> "

HELP = """\
Enter SQL terminated by ';'.  Dot-commands:
  .explain [--certify] <select>;
                       show plan choice, costs, TestFD verdict (and the
                       rewrite certificate with --certify)
  .script <path>       run a SQL script file
  .dump [path]         write schema + data as a SQL script (stdout if no path)
  .open <path>         replace the session database from a dump script
  .schema [table]      show CREATE TABLE DDL (all tables if none named)
  .tables              list tables and views
  .policy <name>       set planner policy (cost, always_eager, never_eager)
  .engine <name>       set execution backend (row, vector)
  .morsels <n|off>     set the vector engine's morsel size (off = materialize)
  .workers <n|auto>    set the worker count for parallel morsel pipelines
                       (auto = one per core, clamped to os.cpu_count())
  .shards <n|off> [hash|range]
                       run queries shard-parallel through the Exchange
                       operator (off = single-site); the optional method
                       picks the partitioning scheme; bare .shards shows
                       the layout plus per-shard health and RPC counters
  .sessions            list the attached server's open sessions
  .rewrites <spec>     set certified rewrites (all, none, or a comma list of
                       predicate_pushdown, join_reordering, projection_pruning)
  .help                this text
  .quit                exit
"""


class Shell:
    """The REPL's state and command dispatch (testable without a TTY)."""

    def __init__(
        self,
        session: Optional[Session] = None,
        out: TextIO = sys.stdout,
        server: Optional[object] = None,
    ) -> None:
        self.session = session if session is not None else Session()
        self.out = out
        #: The :class:`repro.server.server.Server` this shell is attached
        #: to, if any (set by ``repro serve``); enables ``.sessions``.
        self.server = server
        self.done = False
        #: Exit code of the most recent failed statement, by error family:
        #: parse=2, bind=3, execution=4, resource=5.  Sticky — later
        #: successes do not clear it — so piped and script runs exit
        #: nonzero when anything failed.
        self.exit_code = 0

    def write(self, text: str) -> None:
        self.out.write(text + "\n")

    # -- command handling ---------------------------------------------------

    def handle(self, line: str) -> None:
        """Process one complete input (a dot-command or a SQL statement)."""
        stripped = line.strip()
        if not stripped:
            return
        if stripped.startswith("."):
            self._dot_command(stripped)
            return
        self._run_sql(stripped.rstrip(";"))

    def _dot_command(self, line: str) -> None:
        command, __, argument = line.partition(" ")
        argument = argument.strip()
        if command in (".quit", ".exit"):
            self.done = True
        elif command == ".help":
            self.write(HELP)
        elif command == ".tables":
            names = sorted(self.session.database.tables)
            views = sorted(self.session.database.views)
            self.write("tables: " + (", ".join(names) or "(none)"))
            self.write("views:  " + (", ".join(views) or "(none)"))
        elif command == ".policy":
            if argument not in POLICIES:
                self.write(f"unknown policy {argument!r}; pick one of {POLICIES}")
                return
            self.session.policy = argument
            self.write(f"policy set to {argument}")
        elif command == ".engine":
            self._set_engine(argument)
        elif command == ".morsels":
            self._set_morsels(argument)
        elif command == ".workers":
            self._set_workers(argument)
        elif command == ".shards":
            self._set_shards(argument)
        elif command == ".sessions":
            self._list_sessions()
        elif command == ".rewrites":
            self._set_rewrites(argument)
        elif command == ".script":
            self._run_script(argument)
        elif command == ".explain":
            self._explain(argument.rstrip(";"))
        elif command == ".dump":
            self._dump(argument)
        elif command == ".open":
            self._open(argument)
        elif command == ".schema":
            self._schema(argument)
        else:
            self.write(f"unknown command {command}; try .help")

    def _set_engine(self, name: str) -> None:
        from dataclasses import replace

        if name not in ("row", "vector"):
            self.write(f"unknown engine {name!r}; pick one of ('row', 'vector')")
            return
        self.session.executor_config = replace(
            self.session.executor_config, engine=name
        )
        self.write(f"engine set to {name}")

    def _set_morsels(self, spec: str) -> None:
        from dataclasses import replace

        try:
            size = None if spec in ("off", "none") else int(spec)
            self.session.executor_config = replace(
                self.session.executor_config, morsel_size=size
            )
        except ValueError as error:
            self.write(f"error: bad morsel size {spec!r}: {error}")
            return
        self.write(
            "morsel size set to "
            + ("off (materialize per operator)" if size is None else str(size))
        )

    def _set_workers(self, spec: str) -> None:
        from dataclasses import replace

        try:
            count = parse_workers(spec)
            self.session.executor_config = replace(
                self.session.executor_config, workers=count
            )
        except ValueError as error:
            self.write(f"error: bad workers {spec!r}: {error}")
            return
        if count == 0:
            from repro.engine.vector.parallel import resolve_workers

            self.write(f"workers set to auto ({resolve_workers(0)} on this host)")
        else:
            self.write(f"workers set to {count}")

    def _set_shards(self, spec: str) -> None:
        from dataclasses import replace

        if not spec.strip():
            self._show_shards()
            return
        count_text, __, method = spec.partition(" ")
        method = method.strip()
        try:
            count = 1 if count_text in ("off", "none") else int(count_text)
            if count < 1:
                raise ValueError("shard count must be a positive integer or 'off'")
            overrides = {"shards": count}
            if method:
                overrides["partitioning"] = method
            self.session.executor_config = replace(
                self.session.executor_config, **overrides
            )
        except ValueError as error:
            self.write(f"error: bad shards {spec!r}: {error}")
            return
        if count == 1:
            self.write("shards off (single-site execution)")
        else:
            config = self.session.executor_config
            self.write(
                f"shards set to {count} ({config.partitioning} partitioning, "
                f"{config.transport} transport)"
            )

    def _show_shards(self) -> None:
        """Bare ``.shards``: current layout plus per-shard health."""
        config = self.session.executor_config
        if config.shards == 1:
            self.write("shards off (single-site execution)")
            return
        self.write(
            f"shards: {config.shards} ({config.partitioning} partitioning, "
            f"{config.transport} transport)"
        )
        from repro.engine.shardrpc import active_pool

        pool = active_pool()
        if pool is None:
            self.write("  no worker pool (no socket-transport query yet)")
            return
        pool.heartbeat()  # fresh RTTs, and the ledger notices silent deaths
        for entry in pool.health():
            rtt = f"{entry['rtt'] * 1000:.1f}ms" if entry["rtt"] else "-"
            self.write(
                f"  {entry['shard']}: {entry['health']}  rtt={rtt}  "
                f"respawns={entry['respawns']}  "
                f"failures={entry['failures']}"
            )
        counters = pool.counters.snapshot()
        self.write(
            f"  rpc: calls={counters['calls']} retries={counters['retries']} "
            f"timeouts={counters['timeouts']} "
            f"failovers={counters['failovers']} "
            f"wire_bytes={counters['wire_bytes']}"
        )

    def _list_sessions(self) -> None:
        if self.server is None:
            self.write("no server attached (start one with: repro serve)")
            return
        sessions = self.server.sessions()
        if not sessions:
            self.write("no open sessions")
            return
        for s in sessions:
            self.write(
                f"{s.id}  tenant={s.tenant}  queries={s.queries}  "
                f"writes={s.writes}  epoch={s.last_epoch}"
            )

    def _set_rewrites(self, spec: str) -> None:
        from dataclasses import replace

        try:
            self.session.executor_config = replace(
                self.session.executor_config, rewrites=spec or "none"
            )
        except ValueError as error:
            self.write(f"error: {error}")
            return
        enabled = self.session.executor_config.rewrites
        self.write(
            "certified rewrites: " + (", ".join(enabled) if enabled else "(none)")
        )

    def _schema(self, table_name: str) -> None:
        from repro.catalog.dump import _table_ddl

        db = self.session.database
        names = [table_name] if table_name else sorted(db.tables)
        for name in names:
            try:
                self.write(_table_ddl(db.table(name).schema) + ";")
            except ReproError as error:
                self.write(f"error: {error}")
                return

    def _dump(self, path: str) -> None:
        from repro.catalog.dump import dump_database

        try:
            script = dump_database(self.session.database)
        except ReproError as error:
            self.write(f"error: {error}")
            return
        if not path:
            self.write(script)
            return
        try:
            with open(path, "w") as handle:
                handle.write(script)
        except OSError as error:
            self.write(f"error: {error}")
            return
        self.write(f"dumped to {path}")

    def _open(self, path: str) -> None:
        from repro.catalog.dump import load_database

        if not path:
            self.write("usage: .open <path>")
            return
        try:
            with open(path) as handle:
                script = handle.read()
            database = load_database(script)
        except (OSError, ReproError) as error:
            self.write(f"error: {error}")
            return
        self.session = Session(database, policy=self.session.policy)
        self.write(f"loaded {len(database.tables)} tables from {path}")

    def _run_sql(self, sql: str) -> None:
        try:
            statement = parse_statement(sql)
            if isinstance(statement, (SelectStatement, SetOperationStatement)):
                report = self.session.report(sql)
                self.write(report.result.to_pretty())
                self.write(f"({report.result.cardinality} rows, "
                           f"strategy: {report.strategy})")
            else:
                execute_statement(self.session.database, statement)
                self.write("ok")
        except ReproError as error:
            self.exit_code = error_exit_code(error)
            self.write(f"error: {error}")

    def _explain(self, sql: str) -> None:
        certify = False
        if sql.startswith("--certify"):
            certify = True
            sql = sql[len("--certify"):].strip()
        try:
            report = self.session.report(sql)
            self.write(report.explain(certify=certify))
        except ReproError as error:
            self.exit_code = error_exit_code(error)
            self.write(f"error: {error}")

    def _run_script(self, path: str) -> None:
        if not path:
            self.write("usage: .script <path>")
            return
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as error:
            self.exit_code = 2
            self.write(f"error: {error}")
            return
        try:
            statements = parse_script(text)
        except ReproError as error:
            self.exit_code = error_exit_code(error)
            self.write(f"error: {error}")
            return
        ran = 0
        for statement in statements:
            try:
                if isinstance(statement, (SelectStatement, SetOperationStatement)):
                    report = self.session.report_statement(statement)
                    self.write(report.result.to_pretty(limit=10))
                else:
                    execute_statement(self.session.database, statement)
                ran += 1
            except ReproError as error:
                self.exit_code = error_exit_code(error)
                self.write(f"error in statement {ran + 1}: {error}")
                return
        self.write(f"ran {ran} statements")


def _expand_lint_paths(paths: list) -> list:
    """Expand directory arguments to their ``*.sql`` files (sorted)."""
    import os

    expanded: list = []
    for path in paths:
        if os.path.isdir(path):
            expanded.extend(
                sorted(
                    os.path.join(path, name)
                    for name in os.listdir(path)
                    if name.endswith(".sql")
                )
            )
        else:
            expanded.append(path)
    return expanded


def _lint_command(arguments: list, out: TextIO = sys.stdout) -> int:
    """``repro lint``: statically analyze SQL scripts; nonzero on errors."""
    import json

    from repro.analysis.diagnostics import RULES, Severity
    from repro.analysis.linter import lint_sql, lint_workloads

    def write(text: str) -> None:
        out.write(text + "\n")

    flags = [a for a in arguments if a.startswith("--")]
    as_json = "--format=json" in flags
    if "--format" in flags:
        index = arguments.index("--format")
        if index + 1 >= len(arguments) or arguments[index + 1] != "json":
            write("error: --format takes exactly one value: json")
            return 2
        arguments = arguments[:index] + arguments[index + 2 :]
        as_json = True
    min_severity = Severity.INFO if "--info" in arguments else Severity.WARNING
    rewrites = "--rewrites" in arguments
    if "--rules" in arguments:
        for rule_id in sorted(RULES):
            rule = RULES[rule_id]
            write(f"{rule.rule_id}  {rule.severity}  {rule.description}")
        return 0
    ok = True
    reports: list = []
    if "--workloads" in arguments:
        report = lint_workloads(min_severity=min_severity, rewrites=rewrites)
        reports.append(("workloads", report))
    paths = _expand_lint_paths([a for a in arguments if not a.startswith("--")])
    for path in paths:
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as error:
            write(f"error: {error}")
            return 2
        reports.append(
            (path, lint_sql(text, min_severity=min_severity,
                            rewrites=rewrites, path=path))
        )
    if not reports:
        write("usage: repro lint [--workloads] [--rules] [--info]"
              " [--rewrites] [--format json] <script.sql|dir>...")
        return 2
    for label, report in reports:
        ok = ok and report.ok
        if as_json:
            payload = report.to_payload()
            if not payload.get("file"):
                payload["file"] = label
            write(json.dumps(payload, indent=2, sort_keys=True))
        else:
            write(f"{label}: " + report.render())
    return 0 if ok else 1


def _explain_command(arguments: list, out: TextIO = sys.stdout) -> int:
    """``repro explain``: run scripts, print plan reports instead of rows."""
    from repro.parser.ast_nodes import SelectStatement, SetOperationStatement
    from repro.parser.binder import execute_statement
    from repro.parser.parser import parse_script

    def write(text: str) -> None:
        out.write(text + "\n")

    certify = "--certify" in arguments
    rewrites = "--rewrites" in arguments
    paths = [a for a in arguments if not a.startswith("--")]
    if not paths:
        write("usage: repro explain [--certify] [--rewrites] <script.sql>...")
        return 2
    if rewrites:
        from repro.engine.executor import ExecutorConfig

        session = Session(executor_config=ExecutorConfig(rewrites="all"))
    else:
        session = Session()
    for path in paths:
        try:
            with open(path) as handle:
                statements = parse_script(handle.read())
        except (OSError, ReproError) as error:
            write(f"error: {error}")
            return 2
        for statement in statements:
            try:
                if isinstance(statement, (SelectStatement, SetOperationStatement)):
                    report = session.report_statement(statement)
                    write(report.explain(certify=certify))
                else:
                    execute_statement(session.database, statement)
            except ReproError as error:
                write(f"error: {error}")
                return 1
    return 0


def parse_workers(text: str) -> int:
    """Parse a ``--workers`` / ``.workers`` value; ``auto`` means the
    autotuner sentinel 0 (resolved to ``os.cpu_count()``, clamped, by
    :func:`repro.engine.vector.parallel.resolve_workers`)."""
    if text == "auto":
        return 0
    count = int(text)
    if count < 1:
        raise ValueError("workers must be a positive integer or 'auto'")
    return count


def _serve_command(arguments: list, out: TextIO = sys.stdout) -> int:
    """``repro serve``: run the multi-session TCP server.

    ``repro serve [--host H] [--port P] [--max-slots N] [--max-bytes B]
    [--engine row|vector] [--workers N|auto] [script.sql ...]`` — seed
    scripts load into the database first, then the server accepts
    line-protocol clients (see :mod:`repro.server.net`) until
    interrupted.
    """
    from dataclasses import replace

    from repro.server.net import ReproServer
    from repro.server.server import Server

    def write(text: str) -> None:
        out.write(text + "\n")

    host, port = "127.0.0.1", 7432
    max_slots = max_bytes = None
    config_overrides: dict = {}
    paths: list = []
    option_parsers = {
        "--host": str,
        "--port": int,
        "--max-slots": int,
        "--max-bytes": int,
        "--engine": str,
        "--workers": parse_workers,
    }
    i = 0
    try:
        while i < len(arguments):
            argument = arguments[i]
            name, __, inline = argument.partition("=")
            if name in option_parsers:
                if not inline:
                    i += 1
                    if i >= len(arguments):
                        raise ValueError(f"{name} requires a value")
                    inline = arguments[i]
                value = option_parsers[name](inline)
                if name == "--host":
                    host = value
                elif name == "--port":
                    port = value
                elif name == "--max-slots":
                    max_slots = value
                elif name == "--max-bytes":
                    max_bytes = value
                elif name == "--engine":
                    config_overrides["engine"] = value
                else:
                    config_overrides["workers"] = value
            else:
                paths.append(argument)
            i += 1
    except ValueError as error:
        write(f"error: {error}")
        return 2

    from repro.engine.executor import ExecutorConfig

    try:
        config = (
            replace(ExecutorConfig(), **config_overrides)
            if config_overrides
            else ExecutorConfig()
        )
    except ValueError as error:
        write(f"error: {error}")
        return 2
    database = Database()
    for path in paths:
        try:
            with open(path) as handle:
                statements = parse_script(handle.read())
            for statement in statements:
                execute_statement(database, statement)
        except (OSError, ReproError) as error:
            write(f"error loading {path}: {error}")
            return error_exit_code(error) if isinstance(error, ReproError) else 2
    server = Server(
        database, max_slots=max_slots, max_bytes=max_bytes,
        executor_config=config,
    )
    front = ReproServer(server, host=host, port=port)
    bound_host, bound_port = front.address
    write(
        f"serving on {bound_host}:{bound_port} "
        f"({len(database.tables)} tables; .quit to disconnect clients, "
        "Ctrl-C to stop)"
    )
    try:
        front.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        front.stop()
    return 0


def _shard_worker_command(arguments: list, out: TextIO = sys.stdout) -> int:
    """``repro shard-worker``: serve one shard over the framed socket RPC.

    ``repro shard-worker [--host H] [--port P]`` — binds (port 0 picks an
    ephemeral one), prints a ``SHARD-WORKER READY port=... pid=...`` line,
    then answers framed requests (see :mod:`repro.server.transport`) until
    a ``shutdown`` request arrives.  The coordinator's
    :class:`~repro.engine.shardrpc.ShardPool` spawns these as one OS
    process per shard; they can equally be started by hand on other hosts
    for a multi-host layout.
    """
    from repro.server.transport import run_worker

    host, port = "127.0.0.1", 0
    i = 0
    while i < len(arguments):
        argument = arguments[i]
        name, __, inline = argument.partition("=")
        if name in ("--host", "--port"):
            if not inline:
                i += 1
                if i >= len(arguments):
                    out.write(f"error: {name} requires a value\n")
                    return 2
                inline = arguments[i]
            if name == "--host":
                host = inline
            else:
                try:
                    port = int(inline)
                except ValueError:
                    out.write(f"error: bad --port value: {inline!r}\n")
                    return 2
        else:
            out.write("usage: repro shard-worker [--host H] [--port P]\n")
            return 2
        i += 1
    return run_worker(host, port, out=out)


def _extract_budget_flags(arguments: list):
    """Strip ``--timeout SECONDS``, ``--memory-limit BYTES``,
    ``--morsel-size ROWS|off`` and ``--workers N`` from an argument list;
    returns (remaining, ExecutorConfig or None).

    The flags build the session's resource budget and pipeline shape
    (:class:`~repro.engine.executor.ExecutorConfig` ``timeout_seconds`` /
    ``memory_limit_bytes`` / ``morsel_size`` / ``workers``); a malformed
    value raises ``ValueError`` with a usage message.
    """
    from repro.engine.executor import ExecutorConfig

    remaining: list = []
    overrides: dict = {}
    flags = {
        "--timeout": ("timeout_seconds", float),
        "--memory-limit": ("memory_limit_bytes", int),
        "--morsel-size": (
            "morsel_size",
            lambda text: None if text in ("off", "none") else int(text),
        ),
        "--workers": ("workers", parse_workers),
        "--transport": ("transport", str),
    }
    i = 0
    while i < len(arguments):
        argument = arguments[i]
        name, __, inline = argument.partition("=")
        if name in flags:
            if not inline:
                i += 1
                if i >= len(arguments):
                    raise ValueError(f"{name} requires a value")
                inline = arguments[i]
            field, parse = flags[name]
            try:
                overrides[field] = parse(inline)
            except ValueError:
                raise ValueError(f"bad {name} value: {inline!r}") from None
        else:
            remaining.append(argument)
        i += 1
    if not overrides:
        return remaining, None
    try:
        config = ExecutorConfig(**overrides)
    except ValueError as error:
        raise ValueError(str(error)) from None
    return remaining, config


def main(argv: Optional[Iterable[str]] = None) -> int:
    """Entry point: subcommands (``lint``, ``explain``), or script paths
    followed by a REPL.

    Global ``--timeout`` / ``--memory-limit`` flags set the session's
    resource budget.  Failed statements set distinct exit codes by error
    family — parse=2, bind=3, execution=4, resource=5 — surfaced when
    input comes from scripts or a pipe (the interactive REPL stays 0).
    """
    arguments = list(argv if argv is not None else sys.argv[1:])
    if arguments and arguments[0] == "lint":
        return _lint_command(arguments[1:])
    if arguments and arguments[0] == "explain":
        return _explain_command(arguments[1:])
    if arguments and arguments[0] == "bench":
        from repro.engine.vector.bench import main as bench_main

        return bench_main(arguments[1:])
    if arguments and arguments[0] == "serve":
        return _serve_command(arguments[1:])
    if arguments and arguments[0] == "shard-worker":
        return _shard_worker_command(arguments[1:])
    try:
        arguments, budget = _extract_budget_flags(arguments)
    except ValueError as error:
        sys.stderr.write(f"error: {error}\n")
        return 2
    session = Session(executor_config=budget) if budget is not None else None
    shell = Shell(session)
    for path in arguments:
        shell._run_script(path)
        if shell.exit_code:
            return shell.exit_code
    if not sys.stdin.isatty():
        # Piped input: same accumulation rules as the interactive loop.
        feed_lines(shell, sys.stdin.read().splitlines())
        return shell.exit_code
    shell.write("groupby-pushdown SQL shell — .help for commands")
    buffer = ""
    while not shell.done:
        try:
            prompt = CONTINUATION if buffer else PROMPT
            line = input(prompt)
        except EOFError:
            break
        buffer = f"{buffer}\n{line}" if buffer else line
        stripped = buffer.strip()
        if stripped.startswith(".") or stripped.endswith(";"):
            shell.handle(stripped)
            buffer = ""
    return 0


def feed_lines(shell: Shell, lines: Iterable[str]) -> None:
    """Drive a shell from a line sequence (piped stdin, tests).

    Dot-commands complete at end of line; SQL accumulates until a ``;``.
    """
    buffer = ""
    for line in lines:
        if shell.done:
            return
        buffer = f"{buffer}\n{line}" if buffer else line
        stripped = buffer.strip()
        if stripped.startswith(".") or stripped.endswith(";"):
            shell.handle(stripped)
            buffer = ""
    if buffer.strip() and not shell.done:
        shell.handle(buffer.strip())


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
