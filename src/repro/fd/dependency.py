"""Functional dependencies over qualified column names.

Definition 2 of the paper, with strict SQL2 semantics: ``A → B`` holds in an
instance when any two rows that agree on ``A`` under ``=ⁿ`` (NULL equals
NULL) also agree on ``B`` under ``=ⁿ``.  A *key dependency* is the special
case where ``A`` is a declared candidate key.

:func:`fd_holds_in` checks a dependency against a materialized
:class:`~repro.engine.dataset.DataSet` — this is how the Main Theorem's FD1
and FD2 are verified on concrete instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.engine.dataset import DataSet
from repro.sqltypes.values import group_key


@dataclass(frozen=True)
class FunctionalDependency:
    """``lhs → rhs`` over column names.

    An empty ``lhs`` means the right-hand side is constant across the whole
    instance (the paper's degenerate ``GA2 → ∅`` cases produce these).
    """

    lhs: FrozenSet[str]
    rhs: FrozenSet[str]

    def __init__(self, lhs: Iterable[str], rhs: Iterable[str]) -> None:
        object.__setattr__(self, "lhs", frozenset(lhs))
        object.__setattr__(self, "rhs", frozenset(rhs))

    def __str__(self) -> str:
        left = ", ".join(sorted(self.lhs)) or "∅"
        right = ", ".join(sorted(self.rhs)) or "∅"
        return f"{{{left}}} -> {{{right}}}"

    def trivial(self) -> bool:
        return self.rhs <= self.lhs


def fd_holds_in(
    dataset: DataSet,
    lhs: Sequence[str],
    rhs: Sequence[str],
) -> bool:
    """Instance-level FD check per Definition 2 (``=ⁿ`` on both sides).

    Runs in one hash pass: group rows by the LHS key and demand a single
    RHS key per group.  An empty ``lhs`` demands the RHS be constant.
    """
    lhs_indexes = dataset.indexes_of(lhs)
    rhs_indexes = dataset.indexes_of(rhs)
    seen: Dict[Tuple, Tuple] = {}
    for row in dataset.rows:
        left_key = group_key(tuple(row[i] for i in lhs_indexes))
        right_key = group_key(tuple(row[i] for i in rhs_indexes))
        previous = seen.setdefault(left_key, right_key)
        if previous != right_key:
            return False
    return True


def violating_pair(
    dataset: DataSet,
    lhs: Sequence[str],
    rhs: Sequence[str],
) -> Optional[Tuple[Tuple, Tuple]]:
    """A pair of rows witnessing an FD violation, or ``None`` if it holds.

    Useful in tests and error messages; semantics match :func:`fd_holds_in`.
    """
    lhs_indexes = dataset.indexes_of(lhs)
    rhs_indexes = dataset.indexes_of(rhs)
    seen: Dict[Tuple, Tuple[Tuple, Tuple]] = {}
    for row in dataset.rows:
        left_key = group_key(tuple(row[i] for i in lhs_indexes))
        right_key = group_key(tuple(row[i] for i in rhs_indexes))
        if left_key in seen:
            first_right, first_row = seen[left_key]
            if first_right != right_key:
                return (first_row, row)
        else:
            seen[left_key] = (right_key, row)
    return None
