"""Attribute-set closure under functional dependencies.

The classic fixpoint: grow a set of attributes by firing every FD whose
left-hand side is contained in the set.  TestFD's Step 4(c) is exactly this
computation where the FD set is assembled from (i) type-2 column equalities
(bidirectional), (ii) key constraints (key → all columns of its table), and
(iii) type-1 constant bindings (∅ → column).

The closure is also used by the derived-FD reasoning of Example 2.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.fd.dependency import FunctionalDependency


def closure(
    attributes: Iterable[str],
    dependencies: Sequence[FunctionalDependency],
) -> FrozenSet[str]:
    """The closure of ``attributes`` under ``dependencies``.

    FDs with an empty left-hand side fire unconditionally (constant
    columns).  Runs to fixpoint; cost is O(|FDs| × passes) which is fine for
    query-sized inputs (TestFD's speed bench measures it directly).
    """
    result: Set[str] = set(attributes)
    pending: List[FunctionalDependency] = list(dependencies)
    changed = True
    while changed:
        changed = False
        remaining: List[FunctionalDependency] = []
        for fd in pending:
            if fd.lhs <= result:
                new = fd.rhs - result
                if new:
                    result |= new
                    changed = True
                # fired: no need to revisit
            else:
                remaining.append(fd)
        pending = remaining
    return frozenset(result)


def implies(
    dependencies: Sequence[FunctionalDependency],
    candidate: FunctionalDependency,
) -> bool:
    """Armstrong-style implication test: does the set imply ``candidate``?"""
    return candidate.rhs <= closure(candidate.lhs, dependencies)


def minimal_keys(
    all_columns: Iterable[str],
    dependencies: Sequence[FunctionalDependency],
) -> Tuple[FrozenSet[str], ...]:
    """All minimal keys of a relation schema under ``dependencies``.

    Exponential in the worst case; intended for the small derived-table
    schemas in tests and for Example 2 style reasoning, not for production
    schema mining.
    """
    columns = tuple(sorted(set(all_columns)))
    universe = frozenset(columns)
    keys: List[FrozenSet[str]] = []

    # Breadth-first over subset sizes guarantees minimality by construction.
    from itertools import combinations

    for size in range(0, len(columns) + 1):
        for subset in combinations(columns, size):
            candidate = frozenset(subset)
            if any(key <= candidate for key in keys):
                continue
            if closure(candidate, dependencies) >= universe:
                keys.append(candidate)
    return tuple(keys)
