"""Functional dependencies: definition, closure, derivation from constraints."""

from repro.fd.closure import closure, implies, minimal_keys
from repro.fd.dependency import FunctionalDependency, fd_holds_in, violating_pair
from repro.fd.derivation import (
    KnowledgeBase,
    TableBinding,
    build_knowledge_base,
    derived_keys,
    key_dependencies,
    predicate_dependencies,
)

__all__ = [
    "closure", "implies", "minimal_keys",
    "FunctionalDependency", "fd_holds_in", "violating_pair",
    "KnowledgeBase", "TableBinding", "build_knowledge_base", "derived_keys",
    "key_dependencies", "predicate_dependencies",
]
