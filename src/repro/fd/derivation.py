"""Deriving functional dependencies that hold in a (filtered) join result.

Section 4.3 / Section 6 of the paper: semantic integrity constraints hold in
every valid database state, and the query's own WHERE conjuncts hold in the
join result, so both can be compiled into FDs over the join's columns:

* a candidate key ``K`` of table alias ``a``  ⇒  ``a.K → all columns of a``;
* a conjunct ``v = constant``                 ⇒  ``∅ → v`` (v is constant on
  qualifying rows — every attribute set determines it);
* a conjunct ``v1 = v2``                      ⇒  ``v1 → v2`` and ``v2 → v1``
  (qualifying rows have both non-NULL and equal).

**Soundness note on UNIQUE keys.**  The paper includes candidate keys in the
closure.  Under SQL2, a UNIQUE constraint admits multiple rows whose key
contains NULL, and such rows are ``=ⁿ``-equal on the key while differing
elsewhere — so the formal key dependency of Section 4.3 does *not* follow
from UNIQUE alone.  We therefore use a UNIQUE constraint as a key dependency
only when all its columns are declared NOT NULL; pass
``assume_unique_keys=True`` to get the paper's more liberal (and, on such
instances, unsound) behaviour.  ``tests/fd/test_derivation.py`` exhibits the
counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Database
from repro.expressions.analysis import (
    Type1Condition,
    Type2Condition,
    classify_atomic,
)
from repro.expressions.ast import Expression
from repro.expressions.normalize import split_conjuncts
from repro.fd.dependency import FunctionalDependency


@dataclass(frozen=True)
class TableBinding:
    """One FROM-clause entry: a base table under a correlation name."""

    alias: str
    table_name: str


@dataclass
class KnowledgeBase:
    """Everything TestFD and the derived-FD reasoner know about a query.

    * ``dependencies`` — FDs valid in the filtered join result;
    * ``keys_by_alias`` — the candidate keys (as qualified column sets) of
      each FROM entry, the ``Ki(R)`` of Section 6;
    * ``columns_by_alias`` — all qualified columns of each FROM entry.
    """

    dependencies: List[FunctionalDependency] = field(default_factory=list)
    keys_by_alias: Dict[str, Tuple[FrozenSet[str], ...]] = field(default_factory=dict)
    columns_by_alias: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def all_dependencies(self) -> Tuple[FunctionalDependency, ...]:
        return tuple(self.dependencies)


def key_dependencies(
    database: Database,
    binding: TableBinding,
    assume_unique_keys: bool = False,
) -> Tuple[FunctionalDependency, ...]:
    """Key dependencies of one bound table, qualified by its alias."""
    table = database.table(binding.table_name)
    schema = table.schema
    all_columns = frozenset(f"{binding.alias}.{c}" for c in schema.column_names())
    dependencies: List[FunctionalDependency] = []
    primary = schema.primary_key()
    for key in schema.candidate_keys():
        if key != primary and not assume_unique_keys:
            nullable = [c for c in key if schema.column(c).nullable]
            if nullable:
                continue  # see module docstring: UNIQUE + NULLs is not a key FD
        lhs = frozenset(f"{binding.alias}.{c}" for c in key)
        dependencies.append(FunctionalDependency(lhs, all_columns))
    return tuple(dependencies)


def predicate_dependencies(
    conjuncts: Iterable[Expression],
) -> Tuple[FunctionalDependency, ...]:
    """FDs contributed by equality conjuncts of the WHERE clause."""
    dependencies: List[FunctionalDependency] = []
    for conjunct in conjuncts:
        classified = classify_atomic(conjunct)
        if isinstance(classified, Type1Condition):
            column = classified.column.qualified
            dependencies.append(FunctionalDependency((), (column,)))
        elif isinstance(classified, Type2Condition):
            left = classified.left.qualified
            right = classified.right.qualified
            dependencies.append(FunctionalDependency((left,), (right,)))
            dependencies.append(FunctionalDependency((right,), (left,)))
    return tuple(dependencies)


def build_knowledge_base(
    database: Database,
    bindings: Sequence[TableBinding],
    where: Optional[Expression],
    assume_unique_keys: bool = False,
) -> KnowledgeBase:
    """Assemble the FD knowledge base for a query's join result.

    Only *top-level conjuncts* of ``where`` contribute predicate FDs — a
    disjunction does not guarantee any of its branches.  (TestFD handles
    disjunctions by DNF case analysis instead; see
    :mod:`repro.core.testfd`.)
    """
    kb = KnowledgeBase()
    for binding in bindings:
        table = database.table(binding.table_name)
        schema = table.schema
        kb.columns_by_alias[binding.alias] = frozenset(
            f"{binding.alias}.{c}" for c in schema.column_names()
        )
        qualified_keys = []
        primary = schema.primary_key()
        for key in schema.candidate_keys():
            if key != primary and not assume_unique_keys:
                if any(schema.column(c).nullable for c in key):
                    continue
            qualified_keys.append(
                frozenset(f"{binding.alias}.{c}" for c in key)
            )
        kb.keys_by_alias[binding.alias] = tuple(qualified_keys)
        kb.dependencies.extend(
            key_dependencies(database, binding, assume_unique_keys)
        )
    kb.dependencies.extend(predicate_dependencies(split_conjuncts(where)))
    return kb


def derived_keys(
    kb: KnowledgeBase,
    visible_columns: Iterable[str],
) -> Tuple[FrozenSet[str], ...]:
    """Minimal keys of the derived table projecting ``visible_columns``.

    This mechanizes Example 2's reasoning: ``PartNo`` is a key of the
    Part ⋈ Supplier derived table because the knowledge base's FDs close
    ``{P.PartNo}`` over every visible column.
    """
    from repro.fd.closure import closure

    visible = tuple(sorted(set(visible_columns)))
    universe = frozenset(visible)
    keys: List[FrozenSet[str]] = []
    from itertools import combinations

    for size in range(0, len(visible) + 1):
        for subset in combinations(visible, size):
            candidate = frozenset(subset)
            if any(key <= candidate for key in keys):
                continue
            if universe <= closure(candidate, kb.dependencies):
                keys.append(candidate)
    return tuple(keys)
