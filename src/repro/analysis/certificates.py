"""Rewrite certificates: machine-checkable evidence for the eager rewrite.

A YES from TestFD licenses the group-by pushdown (Theorem 4), but the
verdict alone is a single bit.  A :class:`RewriteCertificate` records the
*evidence* — the candidate keys consulted, the equality classes of every
DNF component, the closure each component reached, and the E1/E2 output
schemas — in a form that :func:`audit_certificate` can re-validate
independently of the code that produced it:

* the closure of each component is recomputed from the recorded atoms via
  :func:`repro.fd.closure.closure` (a different code path from TestFD's
  own fixpoint) and must reproduce the recorded closure;
* FD1 (``GA1+ ⊆ closure``) and FD2 (a key of every R2 member reachable)
  must re-derive (rule C501 on failure);
* the keys recorded must match the catalog's current declarations (a
  schema change invalidates outstanding certificates — C501);
* the E1 and E2 plans are rebuilt and their inferred output schemas must
  agree with each other and with the recorded ones (C502).

:func:`repro.core.transform.transform` issues and audits a certificate on
every rewrite, then attaches it to the returned plan root
(:func:`attach_certificate` / :func:`get_certificate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, DiagnosticSink
from repro.algebra.ops import PlanNode
from repro.catalog.catalog import Database
from repro.errors import CatalogError
from repro.fd.closure import closure as fd_closure
from repro.fd.dependency import FunctionalDependency

#: Attribute name used to stash a certificate on a frozen plan root.
_CERTIFICATE_ATTR = "_rewrite_certificate"


@dataclass(frozen=True)
class ComponentCertificate:
    """The closure evidence for one DNF component of TestFD's step 4."""

    atoms: Tuple[str, ...]
    seed: Tuple[str, ...]
    constants: Tuple[str, ...]
    equalities: Tuple[Tuple[str, str], ...]
    closure: Tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "atoms": list(self.atoms),
            "seed": list(self.seed),
            "constants": list(self.constants),
            "equalities": [list(pair) for pair in self.equalities],
            "closure": list(self.closure),
        }


@dataclass(frozen=True)
class RewriteCertificate:
    """Evidence that E2 (group-by before join) is equivalent to E1."""

    r1: Tuple[Tuple[str, str], ...]  # (alias, table_name)
    r2: Tuple[Tuple[str, str], ...]
    ga1: Tuple[str, ...]
    ga2: Tuple[str, ...]
    ga1_plus: Tuple[str, ...]
    keys_by_alias: Tuple[Tuple[str, Tuple[Tuple[str, ...], ...]], ...]
    components: Tuple[ComponentCertificate, ...]
    e1_columns: Tuple[str, ...]
    e2_columns: Tuple[str, ...]
    reason: str
    assume_unique_keys: bool = False

    @property
    def fd1(self) -> str:
        return (
            f"({', '.join(self.ga1 + self.ga2) or '∅'}) → "
            f"({', '.join(self.ga1_plus) or '∅'})"
        )

    @property
    def fd2(self) -> str:
        aliases = ", ".join(alias for alias, __ in self.r2)
        return (
            f"({', '.join(self.ga1_plus + self.ga2) or '∅'}) → "
            f"RowID({aliases})"
        )

    def keys_for(self, alias: str) -> Tuple[Tuple[str, ...], ...]:
        for candidate, keys in self.keys_by_alias:
            if candidate == alias:
                return keys
        return ()

    def to_dict(self) -> dict:
        return {
            "r1": [list(pair) for pair in self.r1],
            "r2": [list(pair) for pair in self.r2],
            "ga1": list(self.ga1),
            "ga2": list(self.ga2),
            "ga1_plus": list(self.ga1_plus),
            "fd1": self.fd1,
            "fd2": self.fd2,
            "keys_by_alias": {
                alias: [list(key) for key in keys]
                for alias, keys in self.keys_by_alias
            },
            "components": [component.to_dict() for component in self.components],
            "e1_columns": list(self.e1_columns),
            "e2_columns": list(self.e2_columns),
            "reason": self.reason,
            "assume_unique_keys": self.assume_unique_keys,
        }

    def render(self) -> str:
        """Human-readable multi-line rendering for ``explain --certify``."""
        lines = [
            "rewrite certificate (Theorem 4 / TestFD):",
            f"  R1: {', '.join(f'{t} AS {a}' for a, t in self.r1)}",
            f"  R2: {', '.join(f'{t} AS {a}' for a, t in self.r2)}",
            f"  FD1: {self.fd1}",
            f"  FD2: {self.fd2}",
            f"  reason: {self.reason}",
        ]
        for alias, keys in self.keys_by_alias:
            rendered = ", ".join("{" + ", ".join(key) + "}" for key in keys)
            lines.append(f"  keys[{alias}]: {rendered or '(none)'}")
        for i, component in enumerate(self.components):
            lines.append(f"  component {i}: atoms {list(component.atoms) or '[]'}")
            lines.append(f"    seed     {sorted(component.seed)}")
            lines.append(f"    closure  {sorted(component.closure)}")
        lines.append(f"  E1 columns: {', '.join(self.e1_columns)}")
        lines.append(f"  E2 columns: {', '.join(self.e2_columns)}")
        return "\n".join(lines)


def issue_certificate(
    database: Database,
    query: "object",
    testfd: "object",
    assume_unique_keys: bool = False,
) -> RewriteCertificate:
    """Build the certificate for a YES TestFD verdict on ``query``.

    ``testfd`` is the :class:`~repro.core.testfd.TestFDResult` whose
    component traces carry the structured atoms; the E1/E2 output schemas
    are inferred from freshly built plans.
    """
    from repro.analysis.schema import infer_schema
    from repro.core.testfd import _candidate_keys
    from repro.core.transform import build_eager_plan, build_standard_plan

    keys = _candidate_keys(database, query.all_bindings, assume_unique_keys)
    keys_by_alias = tuple(
        (alias, tuple(tuple(sorted(key)) for key in keys[alias]))
        for alias in sorted(keys)
    )
    components = tuple(
        ComponentCertificate(
            atoms=tuple(trace.atoms),
            seed=tuple(sorted(trace.seed)),
            constants=tuple(sorted(trace.constants)),
            equalities=tuple(trace.equalities),
            closure=tuple(sorted(trace.closure)),
        )
        for trace in testfd.components
    )
    e1_columns = infer_schema(build_standard_plan(query), database).names()
    e2_columns = infer_schema(build_eager_plan(query), database).names()
    return RewriteCertificate(
        r1=tuple((b.alias, b.table_name) for b in query.r1),
        r2=tuple((b.alias, b.table_name) for b in query.r2),
        ga1=tuple(query.ga1),
        ga2=tuple(query.ga2),
        ga1_plus=tuple(query.ga1_plus),
        keys_by_alias=keys_by_alias,
        components=components,
        e1_columns=e1_columns,
        e2_columns=e2_columns,
        reason=testfd.reason,
        assume_unique_keys=assume_unique_keys,
    )


def audit_certificate(
    database: Database,
    query: "object",
    certificate: RewriteCertificate,
) -> List[Diagnostic]:
    """Independently re-validate ``certificate`` against ``query``.

    Re-derives FD1/FD2 with :func:`repro.fd.closure.closure` (not TestFD's
    own fixpoint) from the recorded atoms, re-reads the keys from the
    catalog, and rebuilds both plans to compare output schemas.  Returns
    the list of C501/C502 diagnostics (empty = certificate stands).
    """
    sink = DiagnosticSink()
    path = "certificate"

    # -- the certified query must be the query we were handed --------------
    recorded_tables = {alias: table for alias, table in certificate.r1}
    recorded_tables.update({alias: table for alias, table in certificate.r2})
    actual_tables = {b.alias: b.table_name for b in query.all_bindings}
    if recorded_tables != actual_tables:
        sink.report(
            "C501", path,
            f"certificate covers tables {sorted(recorded_tables.items())} but "
            f"the query binds {sorted(actual_tables.items())}",
        )
        return sink.diagnostics
    if (
        tuple(certificate.ga1) != tuple(query.ga1)
        or tuple(certificate.ga2) != tuple(query.ga2)
        or tuple(certificate.ga1_plus) != tuple(query.ga1_plus)
    ):
        sink.report(
            "C501", path,
            "certificate grouping columns do not match the query "
            f"(GA1 {certificate.ga1} vs {query.ga1}, "
            f"GA2 {certificate.ga2} vs {query.ga2}, "
            f"GA1+ {certificate.ga1_plus} vs {query.ga1_plus})",
        )

    # -- keys must match the catalog's current declarations -----------------
    columns_by_alias: Dict[str, frozenset] = {}
    current_keys: Dict[str, Tuple[Tuple[str, ...], ...]] = {}
    from repro.core.testfd import _candidate_keys

    try:
        raw = _candidate_keys(
            database, query.all_bindings, certificate.assume_unique_keys
        )
    except CatalogError as error:
        sink.report("C501", path, f"catalog changed under the certificate: {error}")
        return sink.diagnostics
    for binding in query.all_bindings:
        schema = database.table(binding.table_name).schema
        columns_by_alias[binding.alias] = frozenset(
            f"{binding.alias}.{c}" for c in schema.column_names()
        )
        current_keys[binding.alias] = tuple(
            tuple(sorted(key)) for key in raw[binding.alias]
        )
    for alias, recorded_keys in certificate.keys_by_alias:
        if set(recorded_keys) != set(current_keys.get(alias, ())):
            sink.report(
                "C501", path,
                f"recorded keys for {alias} {list(recorded_keys)} differ from "
                f"the catalog's {list(current_keys.get(alias, ()))} — "
                "certificate is stale",
            )

    # -- re-derive each component's closure, FD1 and FD2 --------------------
    r2_aliases = sorted(alias for alias, __ in certificate.r2)
    ga1_plus = frozenset(certificate.ga1_plus)
    expected_seed = frozenset(query.ga1) | frozenset(query.ga2)
    for i, component in enumerate(certificate.components):
        where = f"{path}.component[{i}]"
        if frozenset(component.seed) != expected_seed:
            sink.report(
                "C501", where,
                f"seed {sorted(component.seed)} is not GA1 ∪ GA2 "
                f"{sorted(expected_seed)}",
            )
        dependencies: List[FunctionalDependency] = []
        for column in component.constants:
            dependencies.append(FunctionalDependency((), (column,)))
        for left, right in component.equalities:
            dependencies.append(FunctionalDependency((left,), (right,)))
            dependencies.append(FunctionalDependency((right,), (left,)))
        for alias, keys in current_keys.items():
            for key in keys:
                dependencies.append(
                    FunctionalDependency(key, columns_by_alias[alias])
                )
        rederived = fd_closure(component.seed, dependencies)
        if rederived != frozenset(component.closure):
            sink.report(
                "C501", where,
                "recorded closure does not re-derive: recorded "
                f"{sorted(component.closure)}, recomputed {sorted(rederived)}",
            )
            continue
        if not ga1_plus <= rederived:
            missing = sorted(ga1_plus - rederived)
            sink.report(
                "C501", where,
                f"FD1 does not re-derive: GA1+ columns {missing} are outside "
                "the recomputed closure",
            )
        for alias in r2_aliases:
            if not any(
                frozenset(key) <= rederived for key in current_keys.get(alias, ())
            ):
                sink.report(
                    "C501", where,
                    f"FD2 does not re-derive: no candidate key of {alias} is "
                    "inside the recomputed closure",
                )

    # -- E1/E2 output schemas must agree ------------------------------------
    from repro.analysis.schema import infer_schema
    from repro.core.transform import build_eager_plan, build_standard_plan

    e1_columns = infer_schema(build_standard_plan(query), database).names()
    e2_columns = infer_schema(build_eager_plan(query), database).names()
    if e1_columns != tuple(certificate.e1_columns) or e2_columns != tuple(
        certificate.e2_columns
    ):
        sink.report(
            "C501", path,
            f"recorded output schemas (E1 {list(certificate.e1_columns)}, "
            f"E2 {list(certificate.e2_columns)}) do not match the rebuilt "
            f"plans (E1 {list(e1_columns)}, E2 {list(e2_columns)})",
        )
    if e1_columns != e2_columns:
        sink.report(
            "C502", path,
            f"E1 output schema {list(e1_columns)} diverges from E2 output "
            f"schema {list(e2_columns)} — the rewrite does not preserve the "
            "SELECT list",
        )
    return sink.diagnostics


# -- attachment on frozen plan roots ---------------------------------------


def attach_certificate(plan: PlanNode, certificate: RewriteCertificate) -> PlanNode:
    """Stash ``certificate`` on the plan root (frozen dataclasses allow
    ``object.__setattr__``; the attribute takes no part in ``==``/``hash``)."""
    object.__setattr__(plan, _CERTIFICATE_ATTR, certificate)
    return plan


def get_certificate(plan: PlanNode) -> Optional[RewriteCertificate]:
    """The certificate attached to ``plan``'s root, if any."""
    return getattr(plan, _CERTIFICATE_ATTR, None)
