"""Independent plan-equivalence checker for certified rewrites.

:func:`verify_rewrite` audits one :class:`~repro.optimizer.rewrites.RuleCertificate`
without trusting the code that produced it.  The checker shares only the
*analysis* libraries with the rewriter (schema inference, 3VL
null-rejection, the cost model) — never its decision logic:

* the **pushdown** check re-decomposes the rewritten site structurally and
  balances the conjunct multisets by *canonical name* (each reference
  replaced by its schema-resolved target), proving the pushed predicate
  reads only grouping keys and survives the move unchanged; recorded 3VL
  verdicts are re-derived from scratch and compared verbatim;
* the **reordering** check re-collects both join regions with its own
  region grammar and compares leaf and conjunct multisets, re-prices both
  regions with a fresh estimator/cost model, and re-establishes the
  order-insulation of the rewritten site from the plan context;
* the **pruning** check strips all non-distinct projections from both
  plans and requires the residues to be *equal* (the skeleton is
  untouched), then walks both trees in lockstep resolving every surviving
  expression against both schemas — a live column pruned away surfaces as
  a resolution divergence.

Every rule also re-infers both root schemas (exact ``ColumnInfo`` match —
names, order, types, nullability) and re-runs the static verifier to prove
the rewrite introduced no new errors.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.algebra.ops import (
    Apply,
    Exchange,
    Group,
    GroupApply,
    Join,
    PlanNode,
    Product,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.analysis.diagnostics import Diagnostic, DiagnosticSink, Severity
from repro.analysis.schema import (
    AmbiguousColumn,
    PlanSchema,
    infer_schema,
    infer_schemas,
)
from repro.catalog.catalog import Database
from repro.expressions.ast import (
    ColumnRef,
    Expression,
    column_refs,
    contains_aggregate,
    transform_expression,
)
from repro.expressions.normalize import split_conjuncts


def verify_rewrite(database: Database, certificate) -> List[Diagnostic]:
    """Re-verify one rewrite certificate; empty list means it checks out."""
    sink = DiagnosticSink()
    rule = certificate.rule
    before = certificate.before
    after = certificate.after
    path = certificate.path

    if not _check_schema_preserved(database, before, after, path, sink):
        return sink.diagnostics
    _check_no_new_findings(database, before, after, path, sink)

    if rule == "predicate_pushdown":
        _check_pushdown(database, certificate, sink)
    elif rule == "join_reordering":
        _check_reorder(database, certificate, sink)
    elif rule == "projection_pruning":
        _check_pruning(database, certificate, sink)
    elif rule == "shard_exchange":
        _check_shard_exchange(database, certificate, sink)
    else:
        sink.report(
            "R700",
            path,
            f"unknown rewrite rule {rule!r} in certificate",
            hint="valid rules: predicate_pushdown, join_reordering, "
            "projection_pruning, shard_exchange",
        )
    return sink.diagnostics


# ---------------------------------------------------------------------------
# shared checks
# ---------------------------------------------------------------------------


def _check_schema_preserved(
    database: Database,
    before: PlanNode,
    after: PlanNode,
    path: str,
    sink: DiagnosticSink,
) -> bool:
    try:
        schema_before = infer_schema(before, database)
        schema_after = infer_schema(after, database)
    except Exception as error:
        sink.report(
            "R700",
            path,
            f"could not infer root schemas to compare: {error}",
        )
        return False
    if schema_before.columns != schema_after.columns:
        sink.report(
            "R700",
            path,
            "root output schema changed: "
            f"[{', '.join(schema_before.names())}] → "
            f"[{', '.join(schema_after.names())}]",
            hint="a semantics-preserving rewrite must keep column names, "
            "order, types, and nullability",
        )
        return False
    return True


def _check_no_new_findings(
    database: Database,
    before: PlanNode,
    after: PlanNode,
    path: str,
    sink: DiagnosticSink,
) -> None:
    from repro.analysis.verifier import analyze_plan

    try:
        old = analyze_plan(before, database, min_severity=Severity.ERROR)
        new = analyze_plan(after, database, min_severity=Severity.ERROR)
    except Exception as error:
        sink.report("R700", path, f"static verification failed: {error}")
        return
    known = {(d.rule_id, d.message) for d in old}
    for diagnostic in new:
        if (diagnostic.rule_id, diagnostic.message) not in known:
            sink.report(
                "R700",
                diagnostic.path or path,
                "rewrite introduced a new verifier error: "
                f"{diagnostic.rule_id}: {diagnostic.message}",
            )


def _divergence(
    before: PlanNode,
    after: PlanNode,
    prefix: str = "$",
    stop=None,
) -> Optional[Tuple[str, PlanNode, PlanNode]]:
    """Locate the unique divergence point between two plans, if isolatable.

    Descends while exactly one child pair differs and the node headers
    (everything but the children) agree; returns ``(path, b, a)`` at the
    first node where that stops holding, or ``None`` for equal plans.
    ``stop(before)`` may force the walk to treat a differing node as the
    divergence unit without descending (used to keep join regions whole).
    """
    from repro.algebra.ops import _with_children

    if before == after:
        return None
    if stop is not None and stop(before):
        return prefix, before, after
    children_before = before.children()
    children_after = after.children()
    headers_match = (
        type(before) is type(after)
        and len(children_before) == len(children_after)
        and _with_children(before, children_after) == after
    )
    if headers_match:
        differing = [
            index
            for index, (one, two) in enumerate(zip(children_before, children_after))
            if one != two
        ]
        if len(differing) == 1:
            index = differing[0]
            return _divergence(
                children_before[index],
                children_after[index],
                f"{prefix}.{index}",
                stop,
            )
    return prefix, before, after


# ---------------------------------------------------------------------------
# predicate pushdown
# ---------------------------------------------------------------------------


def _canonicalize(
    expression: Expression, schema: PlanSchema
) -> Optional[Expression]:
    """Replace every reference with its schema-resolved target name."""
    mapping: Dict[ColumnRef, ColumnRef] = {}
    for ref in column_refs(expression):
        try:
            info = schema.resolve(ref.qualified)
        except AmbiguousColumn:
            return None
        if info is None:
            return None
        if "." in info.name:
            table, column = info.name.rsplit(".", 1)
            mapping[ref] = ColumnRef(table, column)
        else:
            mapping[ref] = ColumnRef("", info.name)

    def visit(node: Expression) -> Optional[Expression]:
        if isinstance(node, ColumnRef):
            return mapping.get(node)
        return None

    return transform_expression(expression, visit)


def _check_pushdown(database: Database, certificate, sink: DiagnosticSink) -> None:
    path = certificate.path
    located = _divergence(certificate.before, certificate.after)
    if located is None:
        sink.report("R701", path, "certificate rewrites nothing: plans are equal")
        return
    where, site_before, site_after = located

    # -- decompose the claimed shape -------------------------------------
    def peel(node: PlanNode):
        chain = []
        while isinstance(node, Project) and not node.distinct:
            chain.append((node.columns, node.distinct))
            node = node.child
        return chain, node

    if not isinstance(site_before, Select):
        sink.report(
            "R701",
            where,
            "rewritten site is not a filter above F[AA] G[GA]",
        )
        return
    chain_before, group_before = peel(site_before.child)
    if not isinstance(group_before, GroupApply):
        sink.report(
            "R701",
            where,
            "rewritten site's filter is not above F[AA] G[GA] (modulo "
            "non-distinct projections)",
        )
        return
    residual_node = site_after
    residual: Tuple[Expression, ...] = ()
    if isinstance(site_after, Select):
        residual = split_conjuncts(site_after.condition)
        residual_node = site_after.child
    chain_after, group_node = peel(residual_node)
    if chain_after != chain_before:
        sink.report(
            "R701",
            where,
            "pushdown altered the projection chain between the filter and "
            "the group-by",
        )
        return
    if not isinstance(group_node, GroupApply):
        sink.report(
            "R701", where, "rewritten site does not keep the group-by on top"
        )
        return
    group_after = group_node
    if (
        group_after.grouping_columns != group_before.grouping_columns
        or group_after.aggregates != group_before.aggregates
    ):
        sink.report(
            "R701", where, "pushdown altered the grouping keys or aggregates"
        )
        return
    if not isinstance(group_after.child, Select):
        sink.report(
            "R701", where, "no pushed filter found below the group-by"
        )
        return
    pushed_node = group_after.child
    if pushed_node.child != group_before.child:
        sink.report(
            "R701",
            where,
            "pushdown changed the subtree below the pushed filter",
        )
        return
    pushed = split_conjuncts(pushed_node.condition)

    # -- conjunct accounting by canonical name ---------------------------
    try:
        out_schema = infer_schema(site_before.child, database)
        child_schema = infer_schema(group_before.child, database)
    except Exception as error:
        sink.report("R701", where, f"cannot infer schemas at the site: {error}")
        return

    originals = split_conjuncts(site_before.condition)
    canon_original: List[Expression] = []
    for conjunct in originals:
        canonical = _canonicalize(conjunct, out_schema)
        if canonical is None:
            sink.report(
                "R701",
                where,
                f"original conjunct {conjunct} does not resolve against the "
                "group output schema",
            )
            return
        canon_original.append(canonical)
    canon_pushed: List[Expression] = []
    for conjunct in pushed:
        canonical = _canonicalize(conjunct, child_schema)
        if canonical is None:
            sink.report(
                "R701",
                where,
                f"pushed conjunct {conjunct} does not resolve against the "
                "group input schema",
            )
            return
        canon_pushed.append(canonical)
    canon_residual: List[Expression] = []
    for conjunct in residual:
        canonical = _canonicalize(conjunct, out_schema)
        if canonical is None:
            sink.report(
                "R701",
                where,
                f"residual conjunct {conjunct} does not resolve against the "
                "group output schema",
            )
            return
        canon_residual.append(canonical)
    if Counter(canon_original) != Counter(canon_pushed) + Counter(canon_residual):
        sink.report(
            "R701",
            where,
            "conjunct accounting does not balance: pushed + residual ≠ "
            "original (compared by canonical column names)",
        )
        return

    # -- key-only and aggregate guards on every pushed conjunct ----------
    canonical_keys = set()
    for key in group_before.grouping_columns:
        try:
            info = child_schema.resolve(key)
        except AmbiguousColumn:
            info = None
        canonical_keys.add(info.name if info is not None else key)
    grouping_set = set(group_before.grouping_columns)
    for conjunct, canonical in zip(pushed, canon_pushed):
        if contains_aggregate(conjunct):
            sink.report(
                "R701",
                where,
                f"pushed conjunct {conjunct} contains an aggregate",
                hint="the count guard: aggregates must stay above F[AA]",
            )
            return
        names = {ref.qualified for ref in column_refs(canonical)}
        if not names <= canonical_keys:
            sink.report(
                "R701",
                where,
                f"pushed conjunct {conjunct} references non-grouping columns "
                f"[{', '.join(sorted(names - canonical_keys))}]",
                hint="the alias guard: only grouping keys may cross F[AA] G[GA]",
            )
            return
        # The same conjunct must also be a key-only predicate when read
        # against the group *output* — i.e. it must correspond to one of
        # the original conjuncts whose references land on grouping keys.
        matching = [
            original
            for original, canon in zip(originals, canon_original)
            if canon == canonical
        ]
        if not matching:
            continue  # accounted for above by the multiset balance
        for original in matching:
            for ref in column_refs(original):
                try:
                    info = out_schema.resolve(ref.qualified)
                except AmbiguousColumn:
                    info = None
                if info is None or info.name not in grouping_set:
                    sink.report(
                        "R701",
                        where,
                        f"original conjunct {original} reads {ref.qualified}, "
                        "which is not a grouping key of the group output",
                    )
                    return

    # -- 3VL premises must re-derive exactly -----------------------------
    from repro.optimizer.rewrites import null_rejection_premises

    recorded = Counter(certificate.premise_values("null-rejection"))
    rederived = Counter(
        value
        for _, value in null_rejection_premises(
            list(pushed), sorted(canonical_keys)
        )
    )
    if recorded != rederived:
        missing = rederived - recorded
        forged = recorded - rederived
        details = []
        if missing:
            details.append("missing: " + "; ".join(sorted(missing)))
        if forged:
            details.append("not derivable: " + "; ".join(sorted(forged)))
        sink.report(
            "R701",
            where,
            "recorded 3VL null-rejection premises do not re-derive ("
            + " | ".join(details)
            + ")",
        )


# ---------------------------------------------------------------------------
# join reordering
# ---------------------------------------------------------------------------


def _check_reorder(database: Database, certificate, sink: DiagnosticSink) -> None:
    from repro.optimizer.rewrites import collect_join_region

    path = certificate.path
    located = _divergence(
        certificate.before,
        certificate.after,
        stop=lambda node: isinstance(node, (Join, Product)),
    )
    if located is None:
        sink.report("R703", path, "certificate rewrites nothing: plans are equal")
        return
    where, region_before, region_after = located

    # -- order insulation: the divergent region must sit below a π/F G ---
    if not _is_insulated(certificate.after, region_after):
        sink.report(
            "R703",
            where,
            "reordered region's output order is observable at the root "
            "(no π or F[AA] G[GA] ancestor insulates it)",
            hint="reordering a join changes row order; a consumer that "
            "exposes order must not sit directly above",
        )
        return

    leaves_before, conjuncts_before = collect_join_region(region_before)
    leaves_after, conjuncts_after = collect_join_region(region_after)
    if Counter(leaves_before) != Counter(leaves_after):
        sink.report(
            "R703",
            where,
            "leaf multiset changed: the reordered region does not join the "
            "same inputs",
        )
        return
    if Counter(conjuncts_before) != Counter(conjuncts_after):
        sink.report(
            "R703",
            where,
            "conjunct multiset changed: a predicate was dropped, duplicated, "
            "or invented during reordering",
        )
        return

    # -- recorded costs must re-derive with a fresh estimator ------------
    recorded_before = certificate.premise_values("cost-before")
    recorded_after = certificate.premise_values("cost-after")
    if len(recorded_before) != 1 or len(recorded_after) != 1:
        sink.report(
            "R703", where, "certificate must record exactly one cost pair"
        )
        return
    algorithms = certificate.premise_values("join-algorithm")
    algorithm = algorithms[0] if algorithms else "hash"
    try:
        from repro.optimizer.cardinality import CardinalityEstimator
        from repro.optimizer.cost import CostModel

        estimator = CardinalityEstimator(database)
        model = CostModel(estimator, join_algorithm=algorithm)
        cost_before = model.cost(region_before).total
        cost_after = model.cost(region_after).total
    except Exception as error:
        sink.report("R703", where, f"cannot re-price the regions: {error}")
        return
    tolerance = 1e-6 * max(1.0, cost_before, cost_after)
    if abs(cost_before - float(recorded_before[0])) > tolerance or abs(
        cost_after - float(recorded_after[0])
    ) > tolerance:
        sink.report(
            "R703",
            where,
            "recorded costs do not re-derive: certificate says "
            f"{recorded_before[0]} → {recorded_after[0]}, checker derives "
            f"{cost_before:.6f} → {cost_after:.6f}",
        )
        return
    if not cost_after < cost_before:
        sink.report(
            "R703",
            where,
            f"reordering is not an improvement: {cost_before:.6f} → "
            f"{cost_after:.6f}",
        )


def _is_insulated(root: PlanNode, target: PlanNode) -> bool:
    """True when every path from ``root`` to ``target`` (by identity or
    equality) crosses an order-insulating operator (π, F G, F)."""

    def search(node: PlanNode, insulated: bool) -> Optional[bool]:
        if node is target or node == target:
            return insulated
        child_insulated = insulated or isinstance(
            node, (Project, GroupApply, Apply)
        )
        for child in node.children():
            verdict = search(child, child_insulated)
            if verdict is not None:
                return verdict
        return None

    return bool(search(root, False))


# ---------------------------------------------------------------------------
# projection pruning
# ---------------------------------------------------------------------------


def _strip_projections(plan: PlanNode) -> PlanNode:
    """Remove every non-distinct π, the only operator pruning may touch."""
    from repro.algebra.ops import _with_children

    if isinstance(plan, Project) and not plan.distinct:
        return _strip_projections(plan.child)
    children = plan.children()
    if not children:
        return plan
    rebuilt = tuple(_strip_projections(child) for child in children)
    if all(new is old for new, old in zip(rebuilt, children)):
        return plan
    return _with_children(plan, rebuilt)


def _skip_projections(plan: PlanNode) -> PlanNode:
    node = plan
    while isinstance(node, Project) and not node.distinct:
        node = node.child
    return node


def _check_pruning(database: Database, certificate, sink: DiagnosticSink) -> None:
    path = certificate.path
    before = certificate.before
    after = certificate.after

    if _strip_projections(before) != _strip_projections(after):
        sink.report(
            "R702",
            path,
            "pruning changed the plan skeleton: stripping non-distinct "
            "projections from both plans does not yield the same tree",
            hint="projection pruning may only insert, narrow, or remove "
            "non-distinct π operators",
        )
        return

    try:
        schemas_before = infer_schemas(before, database)
        schemas_after = infer_schemas(after, database)
    except Exception as error:
        sink.report("R702", path, f"cannot infer schemas to compare: {error}")
        return

    def resolve(name: str, schema: PlanSchema) -> Optional[str]:
        try:
            info = schema.resolve(name)
        except AmbiguousColumn:
            return "<ambiguous>"
        return info.name if info is not None else None

    def check_names(
        names,
        schema_b: PlanSchema,
        schema_a: PlanSchema,
        prefix: str,
        what: str,
    ) -> bool:
        for name in names:
            target_b = resolve(name, schema_b)
            target_a = resolve(name, schema_a)
            if target_b != target_a:
                sink.report(
                    "R702",
                    prefix,
                    f"{what} {name} resolves to {target_b!r} before pruning "
                    f"but {target_a!r} after",
                    hint="a live column was dropped or shadowed by an "
                    "inserted projection",
                )
                return False
        return True

    def walk(node_b: PlanNode, node_a: PlanNode, prefix: str) -> bool:
        node_b = _skip_projections(node_b)
        node_a = _skip_projections(node_a)
        if type(node_b) is not type(node_a):
            sink.report(
                "R702",
                prefix,
                f"skeleton mismatch during lockstep walk: "
                f"{type(node_b).__name__} vs {type(node_a).__name__}",
            )
            return False
        refs_b: List[str] = []
        schema_b: Optional[PlanSchema] = None
        schema_a: Optional[PlanSchema] = None
        what = "column"
        if isinstance(node_b, Select):
            refs_b = [ref.qualified for ref in column_refs(node_b.condition)]
            schema_b = schemas_before[id(node_b.child)]
            schema_a = schemas_after[id(node_a.child)]
            what = "filter column"
        elif isinstance(node_b, Join) and node_b.condition is not None:
            refs_b = [ref.qualified for ref in column_refs(node_b.condition)]
            schema_b = schemas_before[id(node_b)]
            schema_a = schemas_after[id(node_a)]
            what = "join column"
        elif isinstance(node_b, GroupApply):
            refs_b = list(node_b.grouping_columns)
            for spec in node_b.aggregates:
                refs_b.extend(
                    ref.qualified for ref in column_refs(spec.expression)
                )
            schema_b = schemas_before[id(node_b.child)]
            schema_a = schemas_after[id(node_a.child)]
            what = "grouping/aggregate column"
        elif isinstance(node_b, Group):
            refs_b = list(node_b.grouping_columns)
            schema_b = schemas_before[id(node_b.child)]
            schema_a = schemas_after[id(node_a.child)]
            what = "grouping column"
        elif isinstance(node_b, Sort):
            refs_b = list(node_b.columns)
            schema_b = schemas_before[id(node_b.child)]
            schema_a = schemas_after[id(node_a.child)]
            what = "sort column"
        elif isinstance(node_b, Project) and node_b.distinct:
            refs_b = list(node_b.columns)
            schema_b = schemas_before[id(node_b.child)]
            schema_a = schemas_after[id(node_a.child)]
            what = "distinct column"
        if refs_b and schema_b is not None and schema_a is not None:
            if not check_names(refs_b, schema_b, schema_a, prefix, what):
                return False
        children_b = node_b.children()
        children_a = node_a.children()
        if len(children_b) != len(children_a):
            sink.report(
                "R702", prefix, "lockstep walk found differing child counts"
            )
            return False
        for index, (child_b, child_a) in enumerate(
            zip(children_b, children_a)
        ):
            if not walk(child_b, child_a, f"{prefix}.{index}"):
                return False
        return True

    walk(before, after, "$")


# ---------------------------------------------------------------------------
# shard exchange (R704)
# ---------------------------------------------------------------------------


def exact_decomposition_reason(
    group: GroupApply, database: Database
) -> Optional[str]:
    """Why a two-phase split of ``group`` would NOT be bit-exact, or None.

    Re-derives (from the plan alone) the proof obligations of the
    partial+merge rewrite: every aggregate must be decomposable, and
    SUM/AVG — whose merged fold reassociates additions — must run over a
    column of an exact integer type, so the regrouped sums are the very
    same values the one-phase fold produces.  MIN/MAX/COUNT need no type
    guard: they merge by the same comparator / by exact integer addition.
    """
    from repro.engine.exchange import decompose_aggregates
    from repro.expressions.ast import Aggregate
    from repro.sqltypes.datatypes import IntegerType, SmallIntType

    if decompose_aggregates(group.aggregates) is None:
        return "aggregates are not decomposable into mergeable partials"
    try:
        schema = infer_schema(group.child, database)
    except Exception as error:
        return f"cannot infer the group input schema: {error}"
    for spec in group.aggregates:
        expression = spec.expression
        if not isinstance(expression, Aggregate):
            return f"{spec.name}: not a bare aggregate"
        if expression.function not in ("SUM", "AVG"):
            continue
        argument = expression.argument
        if not isinstance(argument, ColumnRef):
            return (
                f"{spec.name}: {expression.function} over a computed "
                "expression; partial sums may reassociate inexactly"
            )
        try:
            info = schema.resolve(argument.qualified)
        except AmbiguousColumn:
            info = None
        if info is None:
            return f"{spec.name}: argument {argument.qualified} does not resolve"
        if not isinstance(info.datatype, (IntegerType, SmallIntType)):
            return (
                f"{spec.name}: {expression.function}({argument.qualified}) is "
                f"not over an exact integer column ({info.datatype}); "
                "re-associated partial sums would not be bit-identical"
            )
    return None


def _scan_chain_base(plan: PlanNode) -> Optional[Relation]:
    """The single Relation under a Select* chain, or None if not a chain."""
    cursor = plan
    while isinstance(cursor, Select):
        cursor = cursor.child
    return cursor if isinstance(cursor, Relation) else None


def _check_shard_exchange(
    database: Database, certificate, sink: DiagnosticSink
) -> None:
    """R704: shard-union and partial+merge obligations of an Exchange wrap.

    * **shard union** — the subtree below the wire must be a linear
      Relation/Select* region over exactly one base table.  Partitioning
      splits that table into disjoint, exhaustive shards, and Select is
      row-local, so the multiset union of the shard runs equals the
      unpartitioned run — regardless of hash vs range placement.
    * **partial + merge** (``merge=True`` only) — the replaced subtree must
      be a GroupApply over such a region whose aggregates re-derive as
      exactly decomposable (:func:`exact_decomposition_reason`): merging
      per-shard partials reproduces the one-phase aggregate bit for bit.
    * the recorded topology premises (shards/mode/partitioning) must match
      the Exchange node, and the recorded shipped-row estimate must
      re-derive from a fresh estimator.
    """
    path = certificate.path
    located = _divergence(certificate.before, certificate.after)
    if located is None:
        sink.report("R704", path, "certificate rewrites nothing: plans are equal")
        return
    where, site_before, site_after = located

    if not isinstance(site_after, Exchange):
        sink.report(
            "R704", where, "rewritten site is not an Exchange operator"
        )
        return
    if site_after.child != site_before:
        sink.report(
            "R704",
            where,
            "Exchange child differs from the subtree it replaced: the wire "
            "must wrap the original computation unchanged",
        )
        return

    if site_after.merge:
        if not isinstance(site_before, GroupApply):
            sink.report(
                "R704",
                where,
                "Exchange(merge) must replace a GroupApply (the one-phase "
                "aggregate being split)",
            )
            return
        reason = exact_decomposition_reason(site_before, database)
        if reason is not None:
            sink.report(
                "R704",
                where,
                f"partial+merge is not exact: {reason}",
                hint="only decomposable aggregates with integer-typed "
                "SUM/AVG may be pushed below the wire",
            )
            return
        region = site_before.child
    else:
        region = site_before
    if _scan_chain_base(region) is None:
        sink.report(
            "R704",
            where,
            "subtree below the wire is not a Relation/Select* chain over "
            "one base table; the shard union premise does not hold",
        )
        return

    for name, expected in (
        ("shards", str(site_after.shards)),
        ("mode", site_after.mode),
        ("partitioning", site_after.partitioning),
    ):
        recorded = certificate.premise_values(name)
        if tuple(recorded) != (expected,):
            sink.report(
                "R704",
                where,
                f"recorded premise {name}={recorded or '(missing)'} does not "
                f"match the Exchange node ({expected})",
            )
            return

    recorded_rows = certificate.premise_values("estimated-shipped-rows")
    if len(recorded_rows) != 1:
        sink.report(
            "R704", where, "certificate must record one shipped-row estimate"
        )
        return
    try:
        from repro.optimizer.cardinality import CardinalityEstimator
        from repro.optimizer.cost import exchange_mode_factor

        estimator = CardinalityEstimator(database)
        derived = estimator.rows(site_after.child) * exchange_mode_factor(
            site_after.mode, site_after.shards
        )
    except Exception as error:
        sink.report(
            "R704", where, f"cannot re-derive the shipped-row estimate: {error}"
        )
        return
    tolerance = 1e-6 * max(1.0, derived)
    if abs(derived - float(recorded_rows[0])) > tolerance:
        sink.report(
            "R704",
            where,
            "recorded shipped-row estimate does not re-derive: certificate "
            f"says {recorded_rows[0]}, checker derives {derived:.6f}",
        )
