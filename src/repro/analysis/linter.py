"""``repro lint``: static analysis of SQL scripts without executing queries.

:func:`lint_sql` runs a script's DDL/DML into a scratch database to build
the catalog, then *statically* analyzes every SELECT: the standard (E1)
plan always, and — when TestFD proves the rewrite valid — the eager (E2)
plan together with its freshly issued and audited certificate.  No query
is executed; INSERTs do run (the linter needs the catalog, and constraint
violations in the script's own data are worth surfacing).

Statements that fail to parse or bind are reported as rule ``L601`` with
the statement index, and linting continues with the next statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, DiagnosticSink, Severity
from repro.catalog.catalog import Database
from repro.errors import ReproError, TransformationError


@dataclass
class LintReport:
    """The outcome of linting one SQL script."""

    statements: int = 0
    selects: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Source file the script came from ("" for inline/stdin text).
    path: str = ""
    #: 1-based start line of each statement, keyed by statement index.
    statement_lines: dict = field(default_factory=dict)
    #: Certified rewrites applied and re-verified during ``--rewrites`` lint.
    rewrites_certified: int = 0
    rewrites_checked: bool = False

    @property
    def ok(self) -> bool:
        """No ERROR-severity diagnostics (warnings do not fail a lint)."""
        return not any(
            d.severity >= Severity.ERROR for d in self.diagnostics
        )

    def _statement_line(self, diagnostic_path: str) -> Optional[int]:
        if diagnostic_path.startswith("statement["):
            closing = diagnostic_path.find("]")
            if closing > 0:
                try:
                    index = int(diagnostic_path[len("statement["):closing])
                except ValueError:
                    return None
                return self.statement_lines.get(index)
        return None

    def to_payload(self) -> dict:
        """A JSON-ready dict with stable codes and file/position fields."""
        payload = {
            "ok": self.ok,
            "file": self.path or None,
            "statements": self.statements,
            "selects": self.selects,
            "diagnostics": [
                {
                    "rule": d.rule_id,
                    "severity": str(d.severity),
                    "path": d.path,
                    "message": d.message,
                    "hint": d.hint or None,
                    "file": self.path or None,
                    "line": self._statement_line(d.path),
                }
                for d in self.diagnostics
            ],
        }
        if self.rewrites_checked:
            payload["rewrites_certified"] = self.rewrites_certified
        return payload

    def render(self) -> str:
        from repro.analysis.diagnostics import render_diagnostics

        summary = (
            f"{self.statements} statements, {self.selects} queries analyzed: "
        )
        if self.rewrites_checked:
            summary = (
                f"{self.statements} statements, {self.selects} queries, "
                f"{self.rewrites_certified} certified rewrites analyzed: "
            )
        if not self.diagnostics:
            return summary + "clean"
        counts: dict = {}
        for diagnostic in self.diagnostics:
            counts[str(diagnostic.severity)] = (
                counts.get(str(diagnostic.severity), 0) + 1
            )
        breakdown = ", ".join(
            f"{count} {name}" for name, count in sorted(counts.items())
        )
        return summary + breakdown + "\n" + render_diagnostics(self.diagnostics)


def _lint_plan_rewrites(database: Database, plan: "object", emit) -> int:
    """Apply the certified rewrites to ``plan`` and re-verify every
    certificate with the independent checker, emitting any R7xx findings.

    Returns the number of certificates that were issued (each one is
    audited; a failed audit shows up as ERROR diagnostics, so an
    uncertified rewrite can never lint clean)."""
    from repro.algebra.ops import fuse_group_apply
    from repro.analysis.equivalence import verify_rewrite
    from repro.optimizer.rewrites import apply_rewrites

    try:
        outcome = apply_rewrites(fuse_group_apply(plan), database, verify=False)
    except Exception as error:  # a crash in the rewriter is a finding, not a lint crash
        emit(
            Diagnostic(
                "R700",
                Severity.ERROR,
                "rewrites",
                f"certified rewrite pass failed: {error}",
            )
        )
        return 0
    for certificate in outcome.certificates:
        for diagnostic in verify_rewrite(database, certificate):
            emit(
                Diagnostic(
                    diagnostic.rule_id,
                    diagnostic.severity,
                    f"rewrites/{certificate.rule}@{diagnostic.path}",
                    diagnostic.message,
                    diagnostic.hint,
                )
            )
    return len(outcome.certificates)


def _analyze_select(
    database: Database,
    statement: "object",
    sink: DiagnosticSink,
    where: str,
    min_severity: Severity,
    rewrites: bool = False,
) -> int:
    """Statically analyze one bound SELECT (E1 always, E2 when valid).

    With ``rewrites=True`` the certified rewrite pass also runs over the
    executed-shape plan and every certificate is independently re-verified;
    returns the number of certificates issued (0 otherwise)."""
    from repro.analysis.verifier import analyze_plan, analyze_query
    from repro.core.partition import to_group_by_join_query
    from repro.core.planbuild import build_join_tree
    from repro.parser.binder import bind_select

    def emit(diagnostic: Diagnostic) -> None:
        sink.add(
            Diagnostic(
                diagnostic.rule_id,
                diagnostic.severity,
                f"{where}/{diagnostic.path}",
                diagnostic.message,
                diagnostic.hint,
            )
        )

    if any(t.name in database.views for t in statement.from_tables):
        # A view in FROM: merge it back into one grouped query, the same
        # normalization the session applies before planning (§8).
        from repro.core.transform import build_standard_plan
        from repro.core.viewmerge import merge_aggregated_view

        merged = merge_aggregated_view(database, statement)
        for diagnostic in analyze_query(
            database, merged, min_severity=min_severity
        ):
            emit(diagnostic)
        if rewrites:
            return _lint_plan_rewrites(
                database, build_standard_plan(merged), emit
            )
        return 0

    flat = bind_select(database, statement)
    if flat.group_by:
        try:
            query = to_group_by_join_query(flat)
        except TransformationError:
            query = None
        if query is not None:
            from repro.core.transform import build_standard_plan

            for diagnostic in analyze_query(
                database, query, min_severity=min_severity
            ):
                emit(diagnostic)
            if rewrites:
                return _lint_plan_rewrites(
                    database, build_standard_plan(query), emit
                )
            return 0
    # Ungrouped (or unpartitionable grouped) query: analyze the plan the
    # session would run, built the same way but never executed.
    from repro.algebra.ops import Project
    from repro.core.having import grouped_plan_with_having

    tree = build_join_tree(flat.bindings, flat.where)
    if flat.group_by or flat.aggregates:
        columns = flat.select_group_columns + tuple(
            spec.name for spec in flat.aggregates
        )
        from repro.algebra.ops import Apply, Group

        if flat.group_by:
            plan = grouped_plan_with_having(
                tree, flat.group_by, flat.aggregates, flat.having,
                columns, flat.distinct,
            )
        else:
            plan = Apply(Group(tree, ()), flat.aggregates)
    else:
        plan = Project(tree, flat.select_group_columns, flat.distinct)
    for diagnostic in analyze_plan(plan, database, min_severity=min_severity):
        emit(diagnostic)
    if rewrites:
        return _lint_plan_rewrites(database, plan, emit)
    return 0


def _split_statements(text: str) -> List[Tuple[str, int]]:
    """Split a script on top-level ``;`` into (statement, start line).

    String literals and ``--`` comments are respected, so one malformed
    statement does not hide the rest of the script from the linter; the
    1-based start line points at the first non-blank character of each
    statement (for editor-friendly ``--format json`` output)."""
    pieces: List[Tuple[str, int]] = []
    current: List[str] = []
    piece_start = 1
    has_content = False
    i, n = 0, len(text)
    line = 1
    in_string = False
    in_comment = False
    while i < n:
        ch = text[i]
        if not has_content and not ch.isspace():
            has_content = True
        if in_comment:
            current.append(ch)
            if ch == "\n":
                in_comment = False
        elif in_string:
            current.append(ch)
            if ch == "'":
                # '' escapes a quote inside the literal
                if i + 1 < n and text[i + 1] == "'":
                    current.append("'")
                    i += 1
                else:
                    in_string = False
        elif ch == "'":
            in_string = True
            current.append(ch)
        elif ch == "-" and i + 1 < n and text[i + 1] == "-":
            in_comment = True
            current.append(ch)
        elif ch == ";":
            pieces.append(("".join(current), piece_start))
            current = []
            piece_start = line
            has_content = False
        else:
            current.append(ch)
        if ch == "\n":
            line += 1
            if not has_content:
                # statement has not started yet: advance its anchor
                piece_start = line
        i += 1
    pieces.append(("".join(current), piece_start))
    return [(piece, start) for piece, start in pieces if piece.strip()]


def lint_sql(
    text: str,
    database: Optional[Database] = None,
    min_severity: Severity = Severity.WARNING,
    rewrites: bool = False,
    path: str = "",
) -> LintReport:
    """Lint a ``;``-separated SQL script.

    DDL/INSERT statements execute into ``database`` (a scratch one by
    default) so later SELECTs can resolve the catalog; SELECTs are
    analyzed statically and never executed.  A statement that fails to
    parse or bind yields an ``L601`` diagnostic and linting continues with
    the next statement.  With ``rewrites=True`` the certified rewrite pass
    additionally runs over every query plan and each certificate is
    re-verified by the independent equivalence checker (rule ids R7xx).
    """
    from repro.parser.ast_nodes import SelectStatement, SetOperationStatement
    from repro.parser.binder import execute_statement
    from repro.parser.parser import parse_statement

    report = LintReport(path=path, rewrites_checked=rewrites)
    sink = DiagnosticSink()
    db = database if database is not None else Database()

    def selects_of(statement: "object") -> List[SelectStatement]:
        if isinstance(statement, SetOperationStatement):
            return selects_of(statement.left) + selects_of(statement.right)
        assert isinstance(statement, SelectStatement)
        return [statement]

    for index, (sql, start_line) in enumerate(_split_statements(text)):
        report.statements += 1
        report.statement_lines[index] = start_line
        where = f"statement[{index}]"
        try:
            statement = parse_statement(sql)
            if isinstance(statement, (SelectStatement, SetOperationStatement)):
                for select in selects_of(statement):
                    report.selects += 1
                    report.rewrites_certified += _analyze_select(
                        db, select, sink, where, min_severity, rewrites
                    )
            else:
                execute_statement(db, statement)
        except ReproError as error:
            sink.report(
                "L601", where, str(error),
                hint="fix this statement; later statements were still linted",
            )
    report.diagnostics = list(sink.at_least(min_severity))
    return report


#: name -> (schema builder, representative paper queries).  These are the
#: ``repro lint --workloads`` targets: the paper's example schemas with
#: their canonical queries, which must always lint clean.
def _workload_registry() -> "dict":
    from repro.workloads.schemas import (
        make_employee_department,
        make_part_supplier,
        make_printer_schema,
    )

    return {
        "example1": (
            make_employee_department,
            (
                "SELECT D.DeptID, D.Name, COUNT(E.EmpID) AS headcount "
                "FROM Employee E, Department D "
                "WHERE E.DeptID = D.DeptID GROUP BY D.DeptID, D.Name",
            ),
        ),
        "example2": (
            make_part_supplier,
            (
                "SELECT P.ClassCode, S.SupplierNo, S.Name, "
                "COUNT(P.PartNo) AS parts "
                "FROM Part P, Supplier S "
                "WHERE P.SupplierNo = S.SupplierNo "
                "GROUP BY P.ClassCode, S.SupplierNo, S.Name",
            ),
        ),
        "example3": (
            make_printer_schema,
            (
                "SELECT U.UserName, SUM(A.Usage) AS pages "
                "FROM UserAccount U, PrinterAuth A "
                "WHERE U.UserId = A.UserId AND U.Machine = A.Machine "
                "AND U.Machine = 'dragon' "
                "GROUP BY A.UserId, A.Machine, U.UserName",
            ),
        ),
    }


def lint_workloads(
    min_severity: Severity = Severity.WARNING, rewrites: bool = False
) -> LintReport:
    """Lint every built-in workload query (the CI smoke target).

    Loads each paper example schema into a scratch database and statically
    analyzes its canonical queries; the seed workloads must come back
    clean, so this doubles as a self-check of the analyzer.
    """
    report = LintReport(rewrites_checked=rewrites)
    sink = DiagnosticSink()
    for name, (builder, queries) in sorted(_workload_registry().items()):
        database = builder()
        for qi, sql in enumerate(queries):
            report.statements += 1
            report.selects += 1
            where = f"{name}.query[{qi}]"
            sub = lint_sql(
                sql,
                database=database,
                min_severity=min_severity,
                rewrites=rewrites,
            )
            report.rewrites_certified += sub.rewrites_certified
            for diagnostic in sub.diagnostics:
                sink.add(
                    Diagnostic(
                        diagnostic.rule_id,
                        diagnostic.severity,
                        f"{where}/{diagnostic.path}",
                        diagnostic.message,
                        diagnostic.hint,
                    )
                )
    report.diagnostics = list(sink.at_least(min_severity))
    return report
