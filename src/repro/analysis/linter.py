"""``repro lint``: static analysis of SQL scripts without executing queries.

:func:`lint_sql` runs a script's DDL/DML into a scratch database to build
the catalog, then *statically* analyzes every SELECT: the standard (E1)
plan always, and — when TestFD proves the rewrite valid — the eager (E2)
plan together with its freshly issued and audited certificate.  No query
is executed; INSERTs do run (the linter needs the catalog, and constraint
violations in the script's own data are worth surfacing).

Statements that fail to parse or bind are reported as rule ``L601`` with
the statement index, and linting continues with the next statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, DiagnosticSink, Severity
from repro.catalog.catalog import Database
from repro.errors import ReproError, TransformationError


@dataclass
class LintReport:
    """The outcome of linting one SQL script."""

    statements: int = 0
    selects: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No ERROR-severity diagnostics (warnings do not fail a lint)."""
        return not any(
            d.severity >= Severity.ERROR for d in self.diagnostics
        )

    def render(self) -> str:
        from repro.analysis.diagnostics import render_diagnostics

        summary = (
            f"{self.statements} statements, {self.selects} queries analyzed: "
        )
        if not self.diagnostics:
            return summary + "clean"
        counts: dict = {}
        for diagnostic in self.diagnostics:
            counts[str(diagnostic.severity)] = (
                counts.get(str(diagnostic.severity), 0) + 1
            )
        breakdown = ", ".join(
            f"{count} {name}" for name, count in sorted(counts.items())
        )
        return summary + breakdown + "\n" + render_diagnostics(self.diagnostics)


def _analyze_select(
    database: Database,
    statement: "object",
    sink: DiagnosticSink,
    where: str,
    min_severity: Severity,
) -> None:
    """Statically analyze one bound SELECT (E1 always, E2 when valid)."""
    from repro.analysis.verifier import analyze_plan, analyze_query
    from repro.core.partition import to_group_by_join_query
    from repro.core.planbuild import build_join_tree
    from repro.parser.binder import bind_select

    def emit(diagnostic: Diagnostic) -> None:
        sink.add(
            Diagnostic(
                diagnostic.rule_id,
                diagnostic.severity,
                f"{where}/{diagnostic.path}",
                diagnostic.message,
                diagnostic.hint,
            )
        )

    if any(t.name in database.views for t in statement.from_tables):
        # A view in FROM: merge it back into one grouped query, the same
        # normalization the session applies before planning (§8).
        from repro.core.viewmerge import merge_aggregated_view

        merged = merge_aggregated_view(database, statement)
        for diagnostic in analyze_query(
            database, merged, min_severity=min_severity
        ):
            emit(diagnostic)
        return

    flat = bind_select(database, statement)
    if flat.group_by:
        try:
            query = to_group_by_join_query(flat)
        except TransformationError:
            query = None
        if query is not None:
            for diagnostic in analyze_query(
                database, query, min_severity=min_severity
            ):
                emit(diagnostic)
            return
    # Ungrouped (or unpartitionable grouped) query: analyze the plan the
    # session would run, built the same way but never executed.
    from repro.algebra.ops import Project
    from repro.core.having import grouped_plan_with_having

    tree = build_join_tree(flat.bindings, flat.where)
    if flat.group_by or flat.aggregates:
        columns = flat.select_group_columns + tuple(
            spec.name for spec in flat.aggregates
        )
        from repro.algebra.ops import Apply, Group

        if flat.group_by:
            plan = grouped_plan_with_having(
                tree, flat.group_by, flat.aggregates, flat.having,
                columns, flat.distinct,
            )
        else:
            plan = Apply(Group(tree, ()), flat.aggregates)
    else:
        plan = Project(tree, flat.select_group_columns, flat.distinct)
    for diagnostic in analyze_plan(plan, database, min_severity=min_severity):
        emit(diagnostic)


def _split_statements(text: str) -> List[str]:
    """Split a script on top-level ``;`` (string literals and ``--``
    comments respected), so one malformed statement does not hide the rest
    of the script from the linter."""
    pieces: List[str] = []
    current: List[str] = []
    i, n = 0, len(text)
    in_string = False
    in_comment = False
    while i < n:
        ch = text[i]
        if in_comment:
            current.append(ch)
            if ch == "\n":
                in_comment = False
        elif in_string:
            current.append(ch)
            if ch == "'":
                # '' escapes a quote inside the literal
                if i + 1 < n and text[i + 1] == "'":
                    current.append("'")
                    i += 1
                else:
                    in_string = False
        elif ch == "'":
            in_string = True
            current.append(ch)
        elif ch == "-" and i + 1 < n and text[i + 1] == "-":
            in_comment = True
            current.append(ch)
        elif ch == ";":
            pieces.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    pieces.append("".join(current))
    return [piece for piece in pieces if piece.strip()]


def lint_sql(
    text: str,
    database: Optional[Database] = None,
    min_severity: Severity = Severity.WARNING,
) -> LintReport:
    """Lint a ``;``-separated SQL script.

    DDL/INSERT statements execute into ``database`` (a scratch one by
    default) so later SELECTs can resolve the catalog; SELECTs are
    analyzed statically and never executed.  A statement that fails to
    parse or bind yields an ``L601`` diagnostic and linting continues with
    the next statement.
    """
    from repro.parser.ast_nodes import SelectStatement, SetOperationStatement
    from repro.parser.binder import execute_statement
    from repro.parser.parser import parse_statement

    report = LintReport()
    sink = DiagnosticSink()
    db = database if database is not None else Database()

    def selects_of(statement: "object") -> List[SelectStatement]:
        if isinstance(statement, SetOperationStatement):
            return selects_of(statement.left) + selects_of(statement.right)
        assert isinstance(statement, SelectStatement)
        return [statement]

    for index, sql in enumerate(_split_statements(text)):
        report.statements += 1
        where = f"statement[{index}]"
        try:
            statement = parse_statement(sql)
            if isinstance(statement, (SelectStatement, SetOperationStatement)):
                for select in selects_of(statement):
                    report.selects += 1
                    _analyze_select(db, select, sink, where, min_severity)
            else:
                execute_statement(db, statement)
        except ReproError as error:
            sink.report(
                "L601", where, str(error),
                hint="fix this statement; later statements were still linted",
            )
    report.diagnostics = list(sink.at_least(min_severity))
    return report


#: name -> (schema builder, representative paper queries).  These are the
#: ``repro lint --workloads`` targets: the paper's example schemas with
#: their canonical queries, which must always lint clean.
def _workload_registry() -> "dict":
    from repro.workloads.schemas import (
        make_employee_department,
        make_part_supplier,
        make_printer_schema,
    )

    return {
        "example1": (
            make_employee_department,
            (
                "SELECT D.DeptID, D.Name, COUNT(E.EmpID) AS headcount "
                "FROM Employee E, Department D "
                "WHERE E.DeptID = D.DeptID GROUP BY D.DeptID, D.Name",
            ),
        ),
        "example2": (
            make_part_supplier,
            (
                "SELECT P.ClassCode, S.SupplierNo, S.Name, "
                "COUNT(P.PartNo) AS parts "
                "FROM Part P, Supplier S "
                "WHERE P.SupplierNo = S.SupplierNo "
                "GROUP BY P.ClassCode, S.SupplierNo, S.Name",
            ),
        ),
        "example3": (
            make_printer_schema,
            (
                "SELECT U.UserName, SUM(A.Usage) AS pages "
                "FROM UserAccount U, PrinterAuth A "
                "WHERE U.UserId = A.UserId AND U.Machine = A.Machine "
                "AND U.Machine = 'dragon' "
                "GROUP BY A.UserId, A.Machine, U.UserName",
            ),
        ),
    }


def lint_workloads(min_severity: Severity = Severity.WARNING) -> LintReport:
    """Lint every built-in workload query (the CI smoke target).

    Loads each paper example schema into a scratch database and statically
    analyzes its canonical queries; the seed workloads must come back
    clean, so this doubles as a self-check of the analyzer.
    """
    report = LintReport()
    sink = DiagnosticSink()
    for name, (builder, queries) in sorted(_workload_registry().items()):
        database = builder()
        for qi, sql in enumerate(queries):
            report.statements += 1
            report.selects += 1
            where = f"{name}.query[{qi}]"
            sub = lint_sql(sql, database=database, min_severity=min_severity)
            for diagnostic in sub.diagnostics:
                sink.add(
                    Diagnostic(
                        diagnostic.rule_id,
                        diagnostic.severity,
                        f"{where}/{diagnostic.path}",
                        diagnostic.message,
                        diagnostic.hint,
                    )
                )
    report.diagnostics = list(sink.at_least(min_severity))
    return report
