"""Output-schema inference for every operator of the SQL2 algebra.

Each :class:`~repro.algebra.ops.PlanNode` gets a typed, nullability-aware
output schema inferred bottom-up from the catalog — without executing the
plan.  This is the foundation the verifier's scope-resolution pass stands
on: a column reference is *bound* iff the child's inferred schema resolves
it.

Name resolution follows the executor's :meth:`DataSet.index_of` rules
exactly (an exact qualified match wins, otherwise a unique bare-name
suffix match), so "statically bound" and "resolvable at runtime" coincide.
Structural problems found during inference (unknown tables, unbound
projection/grouping columns, Apply over a non-grouped input) are reported
into an optional :class:`~repro.analysis.diagnostics.DiagnosticSink`; the
inference itself is total — a best-effort schema is always produced so one
defect does not mask every defect above it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.ops import (
    AggregateSpec,
    Apply,
    Exchange,
    Group,
    GroupApply,
    Join,
    PlanNode,
    Product,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.analysis.diagnostics import DiagnosticSink
from repro.catalog.catalog import Database
from repro.errors import CatalogError
from repro.sqltypes.datatypes import DataType


@dataclass(frozen=True)
class ColumnInfo:
    """One inferred output column: name, SQL type (when known), nullability.

    ``datatype`` is ``None`` for columns whose type cannot be derived
    statically (e.g. outputs of an aggregate over an unbound column); the
    type checker treats unknown types as unconstrained rather than wrong.
    """

    name: str
    datatype: Optional[DataType] = None
    nullable: bool = True

    @property
    def bare(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    def __str__(self) -> str:
        typename = str(self.datatype) if self.datatype is not None else "?"
        suffix = "" if self.nullable else " NOT NULL"
        return f"{self.name} {typename}{suffix}"


class AmbiguousColumn(Exception):
    """A bare name matched more than one column (resolution must fail)."""


@dataclass(frozen=True)
class PlanSchema:
    """The ordered output columns of one operator."""

    columns: Tuple[ColumnInfo, ...]

    def names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def resolve(self, name: str) -> Optional[ColumnInfo]:
        """Resolve ``name`` like the executor would; ``None`` if unbound.

        Raises :class:`AmbiguousColumn` when a bare name matches several
        qualified columns — callers report that as its own rule (A004).
        """
        for column in self.columns:
            if column.name == name:
                return column
        matches = [column for column in self.columns if column.bare == name]
        if len(matches) > 1:
            raise AmbiguousColumn(name)
        return matches[0] if matches else None

    def duplicate_names(self) -> Tuple[str, ...]:
        seen: Dict[str, int] = {}
        for column in self.columns:
            seen[column.name] = seen.get(column.name, 0) + 1
        return tuple(sorted(name for name, count in seen.items() if count > 1))

    def describe(self) -> str:
        return ", ".join(str(column) for column in self.columns)


def relation_schema(node: Relation, database: Database) -> PlanSchema:
    """Schema of a base-table scan, columns qualified by correlation name.

    Raises :class:`~repro.errors.CatalogError` for an unknown table.
    """
    table = database.table(node.table_name)
    correlation = node.correlation
    return PlanSchema(
        tuple(
            ColumnInfo(
                f"{correlation}.{column.name}", column.datatype, column.nullable
            )
            for column in table.schema.columns
        )
    )


def _node_path(prefix: str, node: PlanNode) -> str:
    label = node.label()
    if len(label) > 60:
        label = label[:57] + "..."
    return f"{prefix}:{label}"


def _aggregate_columns(
    specs: Sequence[AggregateSpec], input_schema: PlanSchema
) -> Tuple[ColumnInfo, ...]:
    """Output columns contributed by F[AA], typed via the type checker."""
    from repro.analysis.typecheck import aggregate_output

    return tuple(aggregate_output(spec, input_schema) for spec in specs)


def _grouping_columns(
    names: Sequence[str],
    input_schema: PlanSchema,
    sink: Optional[DiagnosticSink],
    path: str,
) -> Tuple[ColumnInfo, ...]:
    resolved: List[ColumnInfo] = []
    for name in names:
        try:
            info = input_schema.resolve(name)
        except AmbiguousColumn:
            info = None
            if sink is not None:
                sink.report(
                    "A004", path, f"grouping column {name!r} is ambiguous in "
                    f"[{', '.join(input_schema.names())}]"
                )
        if info is None:
            resolved.append(ColumnInfo(name))
            if sink is not None:
                sink.report(
                    "G102",
                    path,
                    f"grouping column {name!r} is not produced by the input "
                    f"(columns: {', '.join(input_schema.names()) or '(none)'})",
                    hint="group on columns of the operator's input schema",
                )
        else:
            resolved.append(ColumnInfo(name, info.datatype, info.nullable))
    return tuple(resolved)


def infer_schemas(
    plan: PlanNode,
    database: Database,
    sink: Optional[DiagnosticSink] = None,
) -> Dict[int, PlanSchema]:
    """Infer the output schema of every node in ``plan``.

    Returns a map from ``id(node)`` to its :class:`PlanSchema` (the same
    keying the executor's statistics use).  Structural schema defects are
    reported into ``sink`` when one is given.
    """
    schemas: Dict[int, PlanSchema] = {}

    def recurse(node: PlanNode, prefix: str) -> PlanSchema:
        path = _node_path(prefix, node)
        child_schemas = [
            recurse(child, f"{prefix}.{i}")
            for i, child in enumerate(node.children())
        ]
        schema = _infer_one(node, child_schemas, path)
        schemas[id(node)] = schema
        duplicates = schema.duplicate_names()
        if duplicates and sink is not None:
            sink.report(
                "A003",
                path,
                f"duplicate output columns: {', '.join(duplicates)}",
                hint="alias one side of the join or project the duplicates away",
            )
        return schema

    def _infer_one(
        node: PlanNode, child_schemas: List[PlanSchema], path: str
    ) -> PlanSchema:
        if isinstance(node, Relation):
            try:
                return relation_schema(node, database)
            except CatalogError as error:
                if sink is not None:
                    sink.report(
                        "A002", path, str(error),
                        hint="create the table or fix the Relation leaf",
                    )
                return PlanSchema(())
        if isinstance(node, (Select, Sort, Exchange)):
            # Exchange is schema-transparent: the merged stream has exactly
            # the child's columns (partials are an execution detail).
            return child_schemas[0]
        if isinstance(node, Project):
            resolved: List[ColumnInfo] = []
            for name in node.columns:
                try:
                    info = child_schemas[0].resolve(name)
                except AmbiguousColumn:
                    info = None
                    if sink is not None:
                        sink.report(
                            "A004", path,
                            f"projected column {name!r} is ambiguous in "
                            f"[{', '.join(child_schemas[0].names())}]",
                        )
                if info is None:
                    resolved.append(ColumnInfo(name))
                    if sink is not None:
                        sink.report(
                            "A001",
                            path,
                            f"projected column {name!r} is not produced by the "
                            "input "
                            f"(columns: {', '.join(child_schemas[0].names()) or '(none)'})",
                            hint="project only columns of the input schema",
                        )
                else:
                    resolved.append(info)
            return PlanSchema(tuple(resolved))
        if isinstance(node, (Product, Join)):
            return PlanSchema(child_schemas[0].columns + child_schemas[1].columns)
        if isinstance(node, Group):
            _grouping_columns(node.grouping_columns, child_schemas[0], sink, path)
            # A grouped table carries all input columns (G only orders them).
            return child_schemas[0]
        if isinstance(node, Apply):
            if isinstance(node.child, Group):
                # The Group node already reported unbound grouping columns;
                # resolve silently here to build the output schema.
                grouping = _grouping_columns(
                    node.child.grouping_columns, child_schemas[0], None, path
                )
            else:
                grouping = ()
                if sink is not None:
                    sink.report(
                        "G101",
                        path,
                        f"Apply over {type(node.child).__name__}: F[AA] is only "
                        "defined on a grouped table",
                        hint="insert a Group (G[GA]) beneath the Apply, or use "
                        "GroupApply",
                    )
            return PlanSchema(
                grouping + _aggregate_columns(node.aggregates, child_schemas[0])
            )
        if isinstance(node, GroupApply):
            grouping = _grouping_columns(
                node.grouping_columns, child_schemas[0], sink, path
            )
            return PlanSchema(
                grouping + _aggregate_columns(node.aggregates, child_schemas[0])
            )
        raise TypeError(f"cannot infer a schema for {type(node).__name__}")

    recurse(plan, "$")
    return schemas


def infer_schema(plan: PlanNode, database: Database) -> PlanSchema:
    """The root output schema of ``plan`` (best effort, never raises on
    semantic defects — pair with the verifier to get the diagnostics)."""
    return infer_schemas(plan, database)[id(plan)]
