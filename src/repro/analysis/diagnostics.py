"""Typed diagnostics: rule ids, severities, plan paths, fix hints.

Every finding of the plan verifier is a :class:`Diagnostic` carrying a rule
id from the :data:`RULES` registry.  Rule ids are stable identifiers (tests
and CI grep for them); the registry maps each id to its default severity
and a one-line description, so ``repro lint --rules`` can print the whole
catalogue.

Rule id namespaces:

* ``A0xx`` — schema/scope resolution (unbound columns, unknown tables);
* ``G1xx`` — grouped-table discipline (Apply/Group shape, aggregate
  pushdown below joins);
* ``N3xx`` — three-valued-logic / null-safety hazards;
* ``T4xx`` — expression type checking;
* ``C5xx`` — rewrite-certificate auditing;
* ``L6xx`` — SQL-level lint findings (parse/binding failures);
* ``R7xx`` — certified-rewrite (pushdown/pruning/reordering) equivalence
  checking.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple


class Severity(enum.IntEnum):
    """Finding severity; ordering is meaningful (ERROR > WARNING > INFO)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One registered analysis rule."""

    rule_id: str
    severity: Severity
    description: str


def _registry(rules: Sequence[Rule]) -> Dict[str, Rule]:
    return {rule.rule_id: rule for rule in rules}


#: The rule catalogue.  Ids are stable; add, never renumber.
RULES: Dict[str, Rule] = _registry(
    [
        Rule(
            "A001",
            Severity.ERROR,
            "unbound column: a column reference is not produced by the "
            "operator's input schema",
        ),
        Rule(
            "A002",
            Severity.ERROR,
            "unknown table: a Relation leaf names a table missing from the catalog",
        ),
        Rule(
            "A003",
            Severity.WARNING,
            "duplicate output column: an operator produces the same column "
            "name more than once",
        ),
        Rule(
            "A004",
            Severity.ERROR,
            "ambiguous column: a bare column name matches more than one "
            "input column",
        ),
        Rule(
            "G101",
            Severity.ERROR,
            "Apply (F[AA]) over a non-grouped input: its child must be a "
            "Group (grouped table)",
        ),
        Rule(
            "G102",
            Severity.ERROR,
            "grouping column not produced by the grouped operator's input",
        ),
        Rule(
            "G103",
            Severity.WARNING,
            "duplicate-sensitive aggregate (SUM/COUNT/AVG) computed below a "
            "join without a rewrite certificate — join fan-out would scale "
            "the aggregate (the paper requires FD1/FD2 or count-multiplication)",
        ),
        Rule(
            "G104",
            Severity.ERROR,
            "aggregate expression references a grouping output that does not exist",
        ),
        Rule(
            "N301",
            Severity.WARNING,
            "comparison with a NULL literal is always UNKNOWN under 3VL; use "
            "IS [NOT] NULL (or the null-aware =ⁿ duplicate semantics of "
            "Figure 3)",
        ),
        Rule(
            "N302",
            Severity.INFO,
            "equality between two nullable columns silently drops NULL "
            "pairs: '=' yields UNKNOWN where the null-aware =ⁿ of "
            "Figure 3 would match",
        ),
        Rule(
            "T401",
            Severity.ERROR,
            "type mismatch: comparison between incomparable SQL types",
        ),
        Rule(
            "T402",
            Severity.ERROR,
            "arithmetic over a non-numeric operand",
        ),
        Rule(
            "T403",
            Severity.ERROR,
            "SUM/AVG over a non-numeric argument",
        ),
        Rule(
            "T404",
            Severity.ERROR,
            "LIKE over a non-string operand",
        ),
        Rule(
            "C501",
            Severity.ERROR,
            "rewrite certificate failed independent re-validation (closure, "
            "keys or FD1/FD2 do not re-derive)",
        ),
        Rule(
            "C502",
            Severity.ERROR,
            "E1/E2 output schemas diverge: the rewritten plan does not "
            "produce the standard plan's columns",
        ),
        Rule(
            "L601",
            Severity.ERROR,
            "SQL statement failed to parse or bind",
        ),
        Rule(
            "R700",
            Severity.ERROR,
            "rewrite did not preserve the plan's output schema (columns, "
            "order, types, or nullability changed)",
        ),
        Rule(
            "R701",
            Severity.ERROR,
            "predicate-pushdown premise failure: a pushed conjunct is not a "
            "pure grouping-key predicate, its conjunct accounting does not "
            "balance, or a recorded 3VL verdict does not re-derive",
        ),
        Rule(
            "R702",
            Severity.ERROR,
            "projection pruning altered the plan skeleton or dropped a "
            "column some surviving expression still resolves to",
        ),
        Rule(
            "R703",
            Severity.ERROR,
            "join-reordering premise failure: leaf or conjunct multisets "
            "changed, the region is not order-insulated, or recorded costs "
            "do not re-derive",
        ),
    ]
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule id, where in the plan, what, and how to fix it."""

    rule_id: str
    severity: Severity
    path: str
    message: str
    hint: str = ""

    def __str__(self) -> str:
        suffix = f" (hint: {self.hint})" if self.hint else ""
        where = f" at {self.path}" if self.path else ""
        return f"{self.rule_id} {self.severity}{where}: {self.message}{suffix}"


@dataclass
class DiagnosticSink:
    """Collects diagnostics during an analysis walk."""

    diagnostics: list = field(default_factory=list)

    def report(
        self,
        rule_id: str,
        path: str,
        message: str,
        hint: str = "",
        severity: "Severity | None" = None,
    ) -> None:
        rule = RULES[rule_id]
        self.diagnostics.append(
            Diagnostic(
                rule_id,
                severity if severity is not None else rule.severity,
                path,
                message,
                hint or "",
            )
        )

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity >= Severity.ERROR)

    def at_least(self, severity: Severity) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity >= severity)


def render_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """Multi-line rendering, most severe first (stable within a severity)."""
    ordered = sorted(
        enumerate(diagnostics), key=lambda pair: (-pair[1].severity, pair[0])
    )
    return "\n".join(str(d) for __, d in ordered)
