"""Static semantic analysis over the SQL2 algebra (the *plan verifier*).

The transformation theory of the paper only pays off if the rewritten plan
E2 is provably equivalent to E1 — so this package checks plans *without
executing them* and reports typed :class:`~repro.analysis.diagnostics.Diagnostic`
records (rule id, severity, plan path, message, fix hint).

Layers:

* :mod:`repro.analysis.schema` — output-schema inference for every
  operator of :mod:`repro.algebra.ops` (typed, nullability-aware);
* :mod:`repro.analysis.typecheck` — expression type checking against an
  inferred schema, including 3VL/null-literal hazards;
* :mod:`repro.analysis.verifier` — the analysis passes over a plan tree
  (scope resolution, grouped-table discipline, duplicate-sensitive
  aggregate pushdown, null-safety, typing);
* :mod:`repro.analysis.certificates` — machine-checkable *rewrite
  certificates* issued by :func:`repro.core.transform.transform` and
  independently re-validated by :func:`audit_certificate`;
* :mod:`repro.analysis.nullability` — a three-valued-logic abstract
  interpreter over predicates (which truth values are reachable when a
  column is NULL), shared by the rewriter and the checker;
* :mod:`repro.analysis.equivalence` — the *plan-equivalence checker*:
  independently re-verifies every :class:`~repro.optimizer.rewrites.RuleCertificate`
  issued by the certified rewrite pass (R700–R703 diagnostics);
* :mod:`repro.analysis.linter` — drives the analyzer over SQL scripts and
  the built-in workloads (the ``repro lint`` CLI).
"""

from repro.analysis.certificates import (
    RewriteCertificate,
    attach_certificate,
    audit_certificate,
    get_certificate,
    issue_certificate,
)
from repro.analysis.diagnostics import RULES, Diagnostic, Severity
from repro.analysis.equivalence import verify_rewrite
from repro.analysis.linter import LintReport, lint_sql, lint_workloads
from repro.analysis.nullability import (
    null_rejected_columns,
    possible_truth_values,
    rejects_null,
)
from repro.analysis.schema import ColumnInfo, PlanSchema, infer_schema
from repro.analysis.verifier import analyze_plan, analyze_query

__all__ = [
    "RULES",
    "ColumnInfo",
    "Diagnostic",
    "LintReport",
    "PlanSchema",
    "RewriteCertificate",
    "Severity",
    "analyze_plan",
    "analyze_query",
    "attach_certificate",
    "audit_certificate",
    "get_certificate",
    "infer_schema",
    "issue_certificate",
    "lint_sql",
    "lint_workloads",
    "null_rejected_columns",
    "possible_truth_values",
    "rejects_null",
    "verify_rewrite",
]
