"""Static type checking of expressions against an inferred plan schema.

Infers the SQL type of every expression node via
:mod:`repro.sqltypes.datatypes` and reports:

* ``T401`` — comparisons between incomparable type categories;
* ``T402`` — arithmetic over non-numeric operands;
* ``T403`` — SUM/AVG over non-numeric arguments;
* ``T404`` — LIKE over non-string operands;
* ``N301`` — comparisons against a NULL literal (always UNKNOWN in 3VL —
  the classic conflation of ``=`` with the null-aware ``=ⁿ`` of Figure 3);
* ``N302`` (info) — ``=`` between two nullable columns, where NULL pairs
  silently fail to match.

Unknown types (unbound columns, opaque subqueries) are *unconstrained*:
they type-check against anything, so one scope error does not cascade into
a wall of type errors.
"""

from __future__ import annotations

import datetime
import decimal
from typing import Optional

from repro.algebra.ops import AggregateSpec
from repro.analysis.diagnostics import DiagnosticSink
from repro.analysis.schema import AmbiguousColumn, ColumnInfo, PlanSchema
from repro.expressions.ast import (
    Aggregate,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    HostVariable,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Negate,
)
from repro.sqltypes.datatypes import (
    BOOLEAN,
    DATE,
    FLOAT,
    INTEGER,
    BooleanType,
    CharType,
    DataType,
    DateType,
    DecimalType,
    FloatType,
    IntegerType,
    SmallIntType,
    VarCharType,
)
from repro.sqltypes.values import is_null

#: Coarse type categories; comparison is defined within a category only.
NUMERIC = "numeric"
STRING = "string"
BOOL = "boolean"
TEMPORAL = "date"


def category(datatype: Optional[DataType]) -> Optional[str]:
    """The comparison category of a type (``None`` = unconstrained)."""
    if datatype is None:
        return None
    if isinstance(datatype, (SmallIntType, IntegerType, FloatType, DecimalType)):
        return NUMERIC
    if isinstance(datatype, (CharType, VarCharType)):
        return STRING
    if isinstance(datatype, BooleanType):
        return BOOL
    if isinstance(datatype, DateType):
        return TEMPORAL
    return None


def literal_type(value: object) -> Optional[DataType]:
    if is_null(value):
        return None
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, decimal.Decimal):
        return DecimalType()
    if isinstance(value, str):
        return VarCharType(max(len(value), 1))
    if isinstance(value, datetime.date):
        return DATE
    return None


def _numeric_join(left: Optional[DataType], right: Optional[DataType]) -> DataType:
    """The result type of arithmetic over two numeric operands."""
    for side in (left, right):
        if isinstance(side, FloatType):
            return FLOAT
    for side in (left, right):
        if isinstance(side, DecimalType):
            return side
    return INTEGER


class TypeChecker:
    """Checks one expression tree against one input schema."""

    def __init__(self, schema: PlanSchema, sink: DiagnosticSink, path: str) -> None:
        self.schema = schema
        self.sink = sink
        self.path = path

    # -- scope -----------------------------------------------------------

    def _resolve(self, ref: ColumnRef) -> Optional[ColumnInfo]:
        try:
            info = self.schema.resolve(ref.qualified)
        except AmbiguousColumn:
            self.sink.report(
                "A004",
                self.path,
                f"column {ref.qualified!r} is ambiguous in "
                f"[{', '.join(self.schema.names())}]",
            )
            return None
        if info is None:
            self.sink.report(
                "A001",
                self.path,
                f"column {ref.qualified!r} is not produced by the input "
                f"(columns: {', '.join(self.schema.names()) or '(none)'})",
                hint="check correlation names and the operator's placement "
                "in the plan",
            )
        return info

    # -- inference -------------------------------------------------------

    def infer(self, expression: Expression) -> Optional[DataType]:
        """Infer ``expression``'s type, reporting any defects found."""
        if isinstance(expression, Literal):
            return literal_type(expression.value)
        if isinstance(expression, ColumnRef):
            info = self._resolve(expression)
            return info.datatype if info is not None else None
        if isinstance(expression, HostVariable):
            return None  # value (and type) fixed at evaluation time
        if isinstance(expression, Comparison):
            return self._comparison(expression)
        if isinstance(expression, Arithmetic):
            return self._arithmetic(expression)
        if isinstance(expression, Negate):
            operand = self.infer(expression.operand)
            if category(operand) not in (None, NUMERIC):
                self.sink.report(
                    "T402", self.path,
                    f"negation of non-numeric operand {expression.operand} "
                    f"({operand})",
                )
            return operand
        if isinstance(expression, IsNull):
            self.infer(expression.operand)
            return BOOLEAN
        if isinstance(expression, InList):
            operand = self.infer(expression.operand)
            for item in expression.items:
                item_type = self.infer(item)
                self._check_comparable(expression, operand, item_type, "IN item")
                if isinstance(item, Literal) and is_null(item.value):
                    self.sink.report(
                        "N301",
                        self.path,
                        f"NULL literal in IN list of {expression}: it can "
                        "never make the predicate TRUE, only UNKNOWN",
                        hint="drop the NULL item or test IS NULL separately",
                    )
            return BOOLEAN
        if isinstance(expression, InSubquery):
            self.infer(expression.operand)
            return BOOLEAN
        if isinstance(expression, Between):
            operand = self.infer(expression.operand)
            for bound in (expression.low, expression.high):
                self._check_comparable(
                    expression, operand, self.infer(bound), "BETWEEN bound"
                )
            return BOOLEAN
        if isinstance(expression, Like):
            operand = self.infer(expression.operand)
            if category(operand) not in (None, STRING):
                self.sink.report(
                    "T404", self.path,
                    f"LIKE over non-string operand {expression.operand} "
                    f"({operand})",
                )
            return BOOLEAN
        if isinstance(expression, Aggregate):
            return self._aggregate(expression)
        # And/Or/Not and anything boolean-shaped: check children, type BOOLEAN.
        for child in expression.children():
            self.infer(child)
        return BOOLEAN

    # -- node kinds ------------------------------------------------------

    def _comparison(self, node: Comparison) -> DataType:
        left = self.infer(node.left)
        right = self.infer(node.right)
        for side in (node.left, node.right):
            if isinstance(side, Literal) and is_null(side.value):
                self.sink.report(
                    "N301",
                    self.path,
                    f"comparison {node} is always UNKNOWN: {side} is the "
                    "NULL literal",
                    hint="use IS [NOT] NULL for null tests",
                )
        self._check_comparable(node, left, right, "comparison")
        if node.op == "=":
            self._note_nullable_equality(node)
        return BOOLEAN

    def _note_nullable_equality(self, node: Comparison) -> None:
        sides = (node.left, node.right)
        if not all(isinstance(side, ColumnRef) for side in sides):
            return
        infos = []
        for side in sides:
            assert isinstance(side, ColumnRef)
            try:
                infos.append(self.schema.resolve(side.qualified))
            except AmbiguousColumn:
                return
        if all(info is not None and info.nullable for info in infos):
            self.sink.report(
                "N302",
                self.path,
                f"{node}: both columns are nullable, so NULL pairs never "
                "match under '=' (they would under the =ⁿ of Figure 3)",
                hint="intended for grouping/duplicate semantics? the engine "
                "uses =ⁿ there automatically",
            )

    def _check_comparable(
        self,
        node: Expression,
        left: Optional[DataType],
        right: Optional[DataType],
        what: str,
    ) -> None:
        left_category = category(left)
        right_category = category(right)
        if left_category is None or right_category is None:
            return
        if left_category != right_category:
            self.sink.report(
                "T401",
                self.path,
                f"{what} {node} mixes {left} ({left_category}) with "
                f"{right} ({right_category})",
                hint="comparisons are defined within one type category only",
            )

    def _arithmetic(self, node: Arithmetic) -> Optional[DataType]:
        left = self.infer(node.left)
        right = self.infer(node.right)
        bad = [
            (side, side_type)
            for side, side_type in ((node.left, left), (node.right, right))
            if category(side_type) not in (None, NUMERIC)
        ]
        for side, side_type in bad:
            self.sink.report(
                "T402", self.path,
                f"arithmetic {node}: operand {side} has non-numeric type "
                f"{side_type}",
            )
        if bad:
            return None
        return _numeric_join(left, right)

    def _aggregate(self, node: Aggregate) -> Optional[DataType]:
        if node.argument is None:  # COUNT(*)
            return INTEGER
        argument = self.infer(node.argument)
        if node.function == "COUNT":
            return INTEGER
        if node.function in ("SUM", "AVG"):
            if category(argument) not in (None, NUMERIC):
                self.sink.report(
                    "T403", self.path,
                    f"{node.function} over non-numeric argument "
                    f"{node.argument} ({argument})",
                )
                return None
            if node.function == "AVG":
                return FLOAT
            return argument
        # MIN/MAX: any comparable type, result is the argument's type.
        return argument


def check_expression(
    expression: Expression,
    schema: PlanSchema,
    sink: DiagnosticSink,
    path: str,
) -> Optional[DataType]:
    """Type-check ``expression`` against ``schema``; returns its type."""
    return TypeChecker(schema, sink, path).infer(expression)


def aggregate_output(spec: AggregateSpec, input_schema: PlanSchema) -> ColumnInfo:
    """The output column one :class:`AggregateSpec` contributes to F[AA].

    Inference only — defects in the aggregate expression are reported by
    the verifier's own pass, not here (this runs with a throwaway sink).
    """
    from repro.expressions.ast import aggregates as collect_aggregates

    checker = TypeChecker(input_schema, DiagnosticSink(), "")
    datatype = checker.infer(spec.expression)
    # COUNT never yields NULL; every other aggregate does on an empty group
    # (and the engine's group inputs are never empty, but NULL inputs can
    # still surface a NULL SUM/MIN/MAX).
    all_counts = all(
        aggregate.function == "COUNT"
        for aggregate in collect_aggregates(spec.expression)
    )
    has_aggregate = bool(collect_aggregates(spec.expression))
    nullable = not (has_aggregate and all_counts)
    return ColumnInfo(spec.name, datatype, nullable)
