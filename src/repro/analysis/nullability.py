"""Three-valued-logic null-rejection analysis of predicates.

A predicate *rejects NULLs on column c* when it cannot evaluate to TRUE on
any row whose ``c`` is NULL.  This is the classic soundness premise for
moving filters across operators that treat NULLs asymmetrically (outer
joins, grouping on nullable keys): Franconi & Tessaris formalize why naive
pushdown goes wrong exactly when this property is assumed but absent.

The analysis is a small abstract interpreter over Kleene logic.  Scalar
subexpressions are abstracted to three states — definitely NULL, definitely
not NULL, or unknown — and boolean subexpressions to the *set* of truth
values they may take (a subset of {TRUE, FALSE, UNKNOWN}).  The abstraction
only ever over-approximates the possible truth values, so the exported
verdict is sound in one direction: :func:`rejects_null` answers ``True``
only when TRUE is provably unreachable.

Certificates record these verdicts as premises; the plan-equivalence
checker re-derives them here rather than trusting the rewriter.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.expressions.ast import (
    Aggregate,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    HostVariable,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
)
from repro.sqltypes.values import is_null as _value_is_null

#: Kleene truth values.
TRUE = "T"
FALSE = "F"
UNKNOWN = "U"

ALL_TRUTHS: FrozenSet[str] = frozenset((TRUE, FALSE, UNKNOWN))
TWO_VALUED: FrozenSet[str] = frozenset((TRUE, FALSE))

#: Abstract scalar states.
_NULL = "null"          # the value is certainly NULL
_NOT_NULL = "not-null"  # the value is certainly not NULL
_ANY = "any"            # no information


def _scalar(expression: Expression, null_columns: FrozenSet[str]) -> str:
    """Abstract state of a scalar subexpression given NULL columns.

    Only an *exactly matching* qualified name is treated as the NULL
    column; a bare or differently-qualified reference stays ``any`` — the
    over-approximation that keeps :func:`rejects_null` sound.
    """
    if isinstance(expression, Literal):
        # The engine's NULL literal is the sqltypes sentinel, not None.
        return _NULL if _value_is_null(expression.value) else _NOT_NULL
    if isinstance(expression, ColumnRef):
        return _NULL if expression.qualified in null_columns else _ANY
    if isinstance(expression, HostVariable):
        return _ANY
    if isinstance(expression, Negate):
        return _scalar(expression.operand, null_columns)
    if isinstance(expression, Arithmetic):
        states = (
            _scalar(expression.left, null_columns),
            _scalar(expression.right, null_columns),
        )
        if _NULL in states:
            return _NULL  # arithmetic propagates NULL
        if all(state == _NOT_NULL for state in states):
            return _NOT_NULL
        return _ANY
    if isinstance(expression, Aggregate):
        return _ANY
    return _ANY


def _not3(truths: FrozenSet[str]) -> FrozenSet[str]:
    flip = {TRUE: FALSE, FALSE: TRUE, UNKNOWN: UNKNOWN}
    return frozenset(flip[t] for t in truths)


def _and3(left: FrozenSet[str], right: FrozenSet[str]) -> FrozenSet[str]:
    out = set()
    for a in left:
        for b in right:
            if a == FALSE or b == FALSE:
                out.add(FALSE)
            elif a == UNKNOWN or b == UNKNOWN:
                out.add(UNKNOWN)
            else:
                out.add(TRUE)
    return frozenset(out)


def _or3(left: FrozenSet[str], right: FrozenSet[str]) -> FrozenSet[str]:
    out = set()
    for a in left:
        for b in right:
            if a == TRUE or b == TRUE:
                out.add(TRUE)
            elif a == UNKNOWN or b == UNKNOWN:
                out.add(UNKNOWN)
            else:
                out.add(FALSE)
    return frozenset(out)


def possible_truth_values(
    predicate: Expression, null_columns: Iterable[str] = ()
) -> FrozenSet[str]:
    """Over-approximate the truth values ``predicate`` can take when every
    column in ``null_columns`` (exact qualified names) is NULL."""
    nulls = frozenset(null_columns)

    def recurse(node: Expression) -> FrozenSet[str]:
        if isinstance(node, Literal):
            if node.value is True:
                return frozenset((TRUE,))
            if node.value is False:
                return frozenset((FALSE,))
            if _value_is_null(node.value):
                return frozenset((UNKNOWN,))
            return ALL_TRUTHS
        if isinstance(node, And):
            return _and3(recurse(node.left), recurse(node.right))
        if isinstance(node, Or):
            return _or3(recurse(node.left), recurse(node.right))
        if isinstance(node, Not):
            return _not3(recurse(node.operand))
        if isinstance(node, Comparison):
            states = (_scalar(node.left, nulls), _scalar(node.right, nulls))
            if _NULL in states:
                return frozenset((UNKNOWN,))  # Figure 2: NULL compares UNKNOWN
            if all(state == _NOT_NULL for state in states):
                return TWO_VALUED
            return ALL_TRUTHS
        if isinstance(node, IsNull):
            state = _scalar(node.operand, nulls)
            if state == _NULL:
                base: FrozenSet[str] = frozenset((TRUE,))
            elif state == _NOT_NULL:
                base = frozenset((FALSE,))
            else:
                base = TWO_VALUED  # IS NULL is always two-valued
            return _not3(base) if node.negated else base
        if isinstance(node, InList):
            state = _scalar(node.operand, nulls)
            if state == _NULL:
                base = frozenset((UNKNOWN,))
            elif state == _NOT_NULL and all(
                _scalar(item, nulls) == _NOT_NULL for item in node.items
            ):
                base = TWO_VALUED
            else:
                base = ALL_TRUTHS
            return _not3(base) if node.negated else base
        if isinstance(node, Between):
            states = (
                _scalar(node.operand, nulls),
                _scalar(node.low, nulls),
                _scalar(node.high, nulls),
            )
            if states[0] == _NULL:
                # NULL operand: both bound comparisons are UNKNOWN.
                base = frozenset((UNKNOWN,))
            elif _NULL in states[1:]:
                # A NULL bound makes one conjunct UNKNOWN, so the
                # conjunction can never reach TRUE.
                base = frozenset((FALSE, UNKNOWN))
            elif all(state == _NOT_NULL for state in states):
                base = TWO_VALUED
            else:
                base = ALL_TRUTHS
            return _not3(base) if node.negated else base
        if isinstance(node, Like):
            state = _scalar(node.operand, nulls)
            if state == _NULL:
                base = frozenset((UNKNOWN,))
            elif state == _NOT_NULL:
                base = TWO_VALUED
            else:
                base = ALL_TRUTHS
            return _not3(base) if node.negated else base
        if isinstance(node, InSubquery):
            return ALL_TRUTHS  # opaque until the session resolves it
        return ALL_TRUTHS

    return recurse(predicate)


def rejects_null(predicate: Expression, column: str) -> bool:
    """``True`` iff ``predicate`` provably cannot be TRUE when ``column``
    (an exact qualified name) is NULL."""
    return TRUE not in possible_truth_values(predicate, (column,))


def null_rejected_columns(
    predicate: Expression, columns: Iterable[str]
) -> Tuple[str, ...]:
    """The subset of ``columns`` on which ``predicate`` rejects NULLs."""
    return tuple(c for c in columns if rejects_null(predicate, c))
