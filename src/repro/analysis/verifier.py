"""The plan verifier: semantic analysis passes over a plan tree.

:func:`analyze_plan` walks a :class:`~repro.algebra.ops.PlanNode` tree
without executing it and returns typed diagnostics from five passes:

1. **Schema/scope resolution** — every column reference in every
   ``Select``/``Project``/``Join``/``Group``/``Apply``/``Sort`` must be
   bound by its child's inferred output schema (rules A001–A004, G102);
2. **Grouped-table discipline** — ``Apply`` only over ``Group`` (G101),
   grouping columns present, and duplicate-sensitive aggregates
   (SUM/COUNT/AVG) flagged when they sit below a join *without* a rewrite
   certificate proving the paper's FD conditions (G103);
3. **3VL/null-safety** — comparisons that conflate ``=`` with the
   null-aware ``=ⁿ`` of Figure 3 (N301, N302);
4. **Type checking** of all expressions (T401–T404);
5. **Certificate audit** — when the plan carries a rewrite certificate,
   it is independently re-validated (C501, C502) via
   :func:`repro.analysis.certificates.audit_certificate`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.algebra.ops import (
    Apply,
    Group,
    GroupApply,
    Join,
    PlanNode,
    Product,
    Select,
    Sort,
)
from repro.analysis.diagnostics import Diagnostic, DiagnosticSink, Severity
from repro.analysis.schema import PlanSchema, _node_path, infer_schemas
from repro.analysis.typecheck import check_expression
from repro.catalog.catalog import Database
from repro.expressions.ast import Expression, walk as walk_expression

#: Aggregate functions whose value changes under join-induced duplication.
DUPLICATE_SENSITIVE = ("SUM", "COUNT", "AVG")


def _has_duplicate_sensitive(expression: Expression) -> bool:
    from repro.expressions.ast import Aggregate

    return any(
        isinstance(node, Aggregate)
        and node.function in DUPLICATE_SENSITIVE
        and not node.distinct
        for node in walk_expression(expression)
    )


def analyze_plan(
    plan: PlanNode,
    database: Database,
    certificate: "object | None" = None,
    min_severity: Severity = Severity.WARNING,
) -> List[Diagnostic]:
    """Statically verify ``plan`` against ``database``'s catalog.

    ``certificate`` is the :class:`~repro.analysis.certificates.RewriteCertificate`
    covering the plan, if any; when omitted, one attached to the plan root
    by :func:`repro.core.transform.transform` is picked up automatically.
    A (valid) certificate licenses aggregation below a join, so rule G103
    is suppressed for certified plans.

    Returns diagnostics of at least ``min_severity`` (default WARNING —
    pass ``Severity.INFO`` for the pedantic notes as well).
    """
    from repro.analysis.certificates import get_certificate

    if certificate is None:
        certificate = get_certificate(plan)

    sink = DiagnosticSink()
    schemas = infer_schemas(plan, database, sink)
    _check_expressions(plan, schemas, sink, "$")
    _check_pushdown(plan, sink, certificate, "$")
    return list(sink.at_least(min_severity))


def analyze_query(
    database: Database,
    query: "object",
    min_severity: Severity = Severity.WARNING,
) -> List[Diagnostic]:
    """Analyze both access plans (E1, and E2 when valid) of one query.

    ``query`` is a :class:`~repro.core.query_class.GroupByJoinQuery`.  The
    eager plan is only built — and analyzed — when TestFD proves the
    rewrite valid, in which case its certificate is issued and audited as
    part of the analysis.
    """
    from repro.analysis.certificates import audit_certificate, issue_certificate
    from repro.core.transform import (
        build_eager_plan,
        build_standard_plan,
        check_transformable,
    )

    diagnostics: List[Diagnostic] = []
    standard = build_standard_plan(query)
    diagnostics.extend(analyze_plan(standard, database, min_severity=min_severity))
    decision = check_transformable(database, query)
    if decision.valid:
        eager = build_eager_plan(query)
        certificate = issue_certificate(database, query, decision.testfd)
        diagnostics.extend(
            analyze_plan(
                eager, database, certificate=certificate, min_severity=min_severity
            )
        )
        audit = audit_certificate(database, query, certificate)
        diagnostics.extend(d for d in audit if d.severity >= min_severity)
    return diagnostics


# -- pass: expression scope / types / null-safety ---------------------------


def _check_expressions(
    plan: PlanNode,
    schemas: dict,
    sink: DiagnosticSink,
    prefix: str,
) -> None:
    path = _node_path(prefix, plan)
    if isinstance(plan, Select) and plan.condition is not None:
        child_schema = schemas[id(plan.child)]
        check_expression(plan.condition, child_schema, sink, path)
    elif isinstance(plan, Join) and plan.condition is not None:
        joined = PlanSchema(
            schemas[id(plan.left)].columns + schemas[id(plan.right)].columns
        )
        check_expression(plan.condition, joined, sink, path)
    elif isinstance(plan, (Apply, GroupApply)):
        input_schema = schemas[id(plan.child)]
        for spec in plan.aggregates:
            check_expression(spec.expression, input_schema, sink, path)
    elif isinstance(plan, Sort):
        child_schema = schemas[id(plan.child)]
        for column in plan.columns:
            _resolve_or_report(column, child_schema, sink, path)
    for i, child in enumerate(plan.children()):
        _check_expressions(child, schemas, sink, f"{prefix}.{i}")


def _resolve_or_report(
    name: str, schema: PlanSchema, sink: DiagnosticSink, path: str
) -> None:
    from repro.analysis.schema import AmbiguousColumn

    try:
        info = schema.resolve(name)
    except AmbiguousColumn:
        sink.report(
            "A004", path,
            f"column {name!r} is ambiguous in [{', '.join(schema.names())}]",
        )
        return
    if info is None:
        sink.report(
            "A001",
            path,
            f"column {name!r} is not produced by the input "
            f"(columns: {', '.join(schema.names()) or '(none)'})",
        )


# -- pass: duplicate-sensitive aggregate pushdown ---------------------------


def _check_pushdown(
    plan: PlanNode,
    sink: DiagnosticSink,
    certificate: "object | None",
    prefix: str,
    below_join: bool = False,
) -> None:
    if isinstance(plan, (Apply, GroupApply)) and below_join:
        sensitive = [
            spec
            for spec in plan.aggregates
            if _has_duplicate_sensitive(spec.expression)
        ]
        if sensitive and certificate is None:
            path = _node_path(prefix, plan)
            names = ", ".join(spec.name for spec in sensitive)
            sink.report(
                "G103",
                path,
                f"duplicate-sensitive aggregate(s) {names} computed below a "
                "join without a rewrite certificate",
                hint="obtain the plan via transform() so TestFD issues an "
                "FD1/FD2 certificate, or multiply by the join fan-out count",
            )
    below = below_join or isinstance(plan, (Join, Product))
    for i, child in enumerate(plan.children()):
        _check_pushdown(child, sink, certificate, f"{prefix}.{i}", below)
