"""Table → columnar-batch adapters for the vector backend.

A stored :class:`~repro.storage.table.Table` is row-major (a list of
:class:`Row` objects); the vector engine wants one list per column.  The
transpose happens once per scan, at C speed via ``zip(*rows)``, and the
resulting :class:`~repro.engine.vector.batch.ColumnBatch` carries the same
qualified column names (and optional ``<corr>.#rowid`` column) the row
executor's scan produces.

The adapter memoizes the batch on the table itself (a column-store cache):
repeated scans of an unmodified table — self-joins, repeated queries —
reuse the transposed columns *and* their cached numpy array views.  The
cache is invalidated by the table's mutation :attr:`~Table.version`.
Cached batches are safe to share because the vector kernels never mutate
column data in place.
"""

from __future__ import annotations

from repro.engine.vector.batch import ColumnBatch
from repro.storage.table import Table


def table_to_batch(
    table: Table, correlation: str, expose_rowids: bool = False
) -> ColumnBatch:
    """Scan ``table`` under ``correlation`` into a columnar batch."""
    from repro.engine.executor import rowid_column

    cache = getattr(table, "_columnar_cache", None)
    key = (correlation, expose_rowids)
    if cache is not None and cache["version"] == table.version:
        batch = cache["batches"].get(key)
        if batch is not None:
            return batch
    else:
        cache = {"version": table.version, "batches": {}}
        table._columnar_cache = cache

    names = [f"{correlation}.{c}" for c in table.column_names()]
    stored = table.rows()
    if stored:
        columns = [list(column) for column in zip(*(row.values for row in stored))]
    else:
        columns = [[] for __ in names]
    if expose_rowids:
        names.append(rowid_column(correlation))
        columns.append([row.rowid for row in stored])
    batch = ColumnBatch(names, columns, length=len(stored))
    cache["batches"][key] = batch
    return batch
