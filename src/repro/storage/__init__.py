"""Storage: rows with RowIDs and constraint-checked multiset tables."""

from repro.storage.row import Row
from repro.storage.table import Table

__all__ = ["Row", "Table"]
