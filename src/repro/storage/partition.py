"""Hash/range partitioning of stored tables into read-only shard twins.

Section 7 of the paper argues eager aggregation pays off most in
distributed settings; this module supplies the "distributed" part: a
:class:`PartitionSpec` describes how one table's rows are split across
``shards`` partitions, and :func:`partition_table` materializes the
partitions as frozen :class:`~repro.storage.table.Table` twins sharing the
parent's ``Row`` objects (no copying of values, rowids preserved — so a
sharded scan's union is bit-identical, row for row and rowid for rowid, to
the unpartitioned scan).

Determinism rules:

* Hash partitioning uses a **stable** hash (blake2b over the canonical
  ``group_key`` repr), never Python's seeded ``hash()``, so shard
  assignment is identical across processes and ``PYTHONHASHSEED``
  settings.  SQL NULL keys land in shard 0.
* Range partitioning derives its bounds deterministically from the
  current table contents (equi-count quantiles over the sorted distinct
  key values) unless the spec pins explicit ``bounds``.
* With no key column the table is split on rowid — hash shards take
  ``stable_shard(rowid)``, range shards take contiguous rowid runs — so
  *any* table can be sharded, keys or not.

Partitioning composes with MVCC: partitions are keyed by
``(Table.version, spec)`` in a per-table cache, so a mutation (version
bump) invalidates them and snapshot readers of a frozen version keep
getting the partitions of *that* version.
"""

from __future__ import annotations

import decimal
import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sqltypes.values import group_key, is_null, sort_key
from repro.storage.table import Table


@dataclass(frozen=True)
class PartitionSpec:
    """How to split one table: ``method`` ∈ {"hash", "range"}, ``column``
    (bare column name; ``None`` = partition by rowid), ``shards``, and for
    range partitioning optional explicit ``bounds`` (upper-exclusive split
    points; ``len(bounds) == shards - 1``)."""

    method: str = "hash"
    column: Optional[str] = None
    shards: int = 2
    bounds: Tuple = ()

    def __init__(
        self,
        method: str = "hash",
        column: Optional[str] = None,
        shards: int = 2,
        bounds: Tuple = (),
    ) -> None:
        if method not in ("hash", "range"):
            raise ValueError(f"unknown partitioning method {method!r}")
        if shards < 1:
            raise ValueError("a partitioning needs at least one shard")
        object.__setattr__(self, "method", method)
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "shards", shards)
        object.__setattr__(self, "bounds", tuple(bounds))

    def describe(self) -> str:
        key = self.column if self.column is not None else "#rowid"
        return f"{self.method}({key}) x {self.shards}"


def _canonical_repr(value: object) -> str:
    """A repr that is identical for group-equal values.

    ``group_key`` equates numerics across types (1 == 1.0 ==
    Decimal('1') under =ⁿ), so their hash input must coincide too —
    otherwise one group would straddle shards.  Integral numerics
    canonicalize through ``int`` (exact at any magnitude), the rest
    through ``float``; collisions *across* distinct groups are harmless
    (a shard holds many groups), only split groups would hurt.
    """
    if not isinstance(value, (int, float, decimal.Decimal)) or isinstance(
        value, bool
    ):
        return repr(group_key((value,)))
    try:
        if value == int(value):
            return repr(int(value))
    except (OverflowError, ValueError, decimal.InvalidOperation):
        pass
    return repr(float(value))


def stable_shard(value: object, shards: int) -> int:
    """Deterministic shard index for one key value (NULL → shard 0).

    Uses blake2b over a canonical repr: identical across processes and
    immune to ``PYTHONHASHSEED``, unlike built-in ``hash``, and identical
    for group-equal values so no =ⁿ group ever straddles shards.
    """
    if is_null(value):
        return 0
    digest = hashlib.blake2b(
        _canonical_repr(value).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % shards


def range_bounds(values: List[object], shards: int) -> Tuple:
    """Equi-count split points over the sorted distinct non-NULL values."""
    distinct = {group_key((v,)): v for v in values if not is_null(v)}
    ordered = sorted(distinct.values(), key=lambda v: sort_key((v,)))
    if not ordered or shards <= 1:
        return ()
    bounds = []
    for i in range(1, shards):
        cut = (i * len(ordered)) // shards
        bound = ordered[min(cut, len(ordered) - 1)]
        if not bounds or sort_key((bound,)) > sort_key((bounds[-1],)):
            bounds.append(bound)
    return tuple(bounds)


def _range_shard(value: object, bounds: Tuple, shards: int) -> int:
    """Shard index of ``value`` under upper-exclusive ``bounds`` (NULL → 0)."""
    if is_null(value):
        return 0
    key = sort_key((value,))
    for i, bound in enumerate(bounds):
        if key < sort_key((bound,)):
            return i
    return min(len(bounds), shards - 1)


def _shard_twin(parent: Table, rows) -> Table:
    """A frozen read-only twin of ``parent`` holding only ``rows``.

    Shares the parent's ``Row`` objects and preserves rowids and version,
    so shard scans are indistinguishable from a filtered parent scan.
    """
    twin = Table(parent.schema)
    twin._rows = list(rows)
    twin._next_rowid = parent._next_rowid
    twin.version = parent.version
    for row in twin._rows:
        twin._register_keys(row)
    twin._frozen = True
    return twin


_CACHE_ATTR = "_partition_cache"


def partition_table(table: Table, spec: PartitionSpec) -> Tuple[Table, ...]:
    """Split ``table`` into ``spec.shards`` frozen twins (cached per version).

    Every row lands in exactly one shard; the concatenation of the shards
    in shard order, re-sorted by rowid, is exactly the parent's row list.
    """
    cache = getattr(table, _CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(table, _CACHE_ATTR, cache)
    cache_key = (table.version, spec)
    cached = cache.get(cache_key)
    if cached is not None:
        return cached

    shards = spec.shards
    buckets: List[List] = [[] for __ in range(shards)]
    if spec.column is None:
        if spec.method == "hash":
            for row in table:
                buckets[stable_shard(row.rowid, shards)].append(row)
        else:
            rows = list(table)
            for i, row in enumerate(rows):
                buckets[(i * shards) // max(1, len(rows))].append(row)
    else:
        index = table.schema.column_names().index(spec.column)
        if spec.method == "hash":
            for row in table:
                buckets[stable_shard(row.values[index], shards)].append(row)
        else:
            bounds = spec.bounds or range_bounds(
                [row.values[index] for row in table], shards
            )
            for row in table:
                buckets[_range_shard(row.values[index], bounds, shards)].append(
                    row
                )
    partitions = tuple(_shard_twin(table, bucket) for bucket in buckets)
    cache.clear()  # one live version per table; stale entries are dead weight
    cache[cache_key] = partitions
    return partitions


@dataclass
class PartitionCatalog:
    """Per-database map from table name to its declared :class:`PartitionSpec`.

    Declared specs steer the planner's choice of partitioning keys; tables
    without a declared spec are partitioned on demand by rowid.
    """

    specs: dict = field(default_factory=dict)

    def declare(self, table_name: str, spec: PartitionSpec) -> None:
        self.specs[table_name] = spec

    def get(self, table_name: str) -> Optional[PartitionSpec]:
        return self.specs.get(table_name)

    def copy(self) -> "PartitionCatalog":
        return PartitionCatalog(dict(self.specs))
