"""Rows: tuples of SQL values plus the implicit RowID of Section 4.3.

The paper assumes "there always exists a column in each table called RowID,
which can uniquely identify a row", purely to let the analysis distinguish
duplicates.  We honor that: every stored row carries a ``rowid`` that never
appears in query results but is available to the FD checker (FD2 talks about
``RowID(R2)``).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.sqltypes.values import SqlValue


class Row:
    """An immutable stored row: values plus a table-unique rowid."""

    __slots__ = ("values", "rowid")

    def __init__(self, values: Sequence[SqlValue], rowid: int) -> None:
        self.values: Tuple[SqlValue, ...] = tuple(values)
        self.rowid = rowid

    def __iter__(self) -> Iterator[SqlValue]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> SqlValue:
        return self.values[index]

    def __repr__(self) -> str:
        return f"Row(rowid={self.rowid}, {self.values!r})"
